#include "sim/stream_feed.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace rejecto::sim {

stream::MutationLog ToMutationLog(const RequestLog& log) {
  stream::MutationLog out(log.NumNodes());
  for (const FriendRequest& r : log.Requests()) {
    if (r.response == Response::kAccepted) {
      out.Accept(r.sender, r.receiver);
    } else {
      out.Reject(r.sender, r.receiver);
    }
  }
  return out;
}

stream::MutationLog GenerateChurnLog(const RequestLog& log,
                                     const ChurnConfig& config) {
  util::Rng rng(config.seed);
  const stream::MutationLog base = ToMutationLog(log);
  std::vector<stream::Event> events(base.Events().begin(),
                                    base.Events().end());

  // Local reordering: swap adjacent pairs. Requests between distinct pairs
  // commute, so this exercises out-of-order delivery without changing the
  // final edge set (the harness checks the perturbed log against its own
  // oracle, so even non-commuting swaps would stay consistent).
  for (std::size_t i = 0; i + 1 < events.size(); ++i) {
    if (rng.NextBool(config.swap_fraction)) {
      std::swap(events[i], events[i + 1]);
    }
  }

  // Duplicates: re-deliver a copy of an event at a random later position.
  const std::size_t original = events.size();
  for (std::size_t i = 0; i < original; ++i) {
    if (rng.NextBool(config.duplicate_fraction)) {
      const std::size_t pos =
          i + 1 + static_cast<std::size_t>(
                      rng.NextUInt(static_cast<std::uint64_t>(
                          events.size() - i)));
      events.insert(events.begin() + static_cast<std::ptrdiff_t>(pos),
                    events[i]);
    }
  }

  // Response flips: a rejected pair later becomes friends anyway. Appended
  // after the rejection so the stream carries both the arc and the edge.
  std::vector<stream::Event> flips;
  for (const stream::Event& e : events) {
    if (e.type == stream::EventType::kReject &&
        rng.NextBool(config.flip_fraction)) {
      flips.push_back({stream::EventType::kAccept, e.u, e.v});
    }
  }
  for (const stream::Event& f : flips) {
    const std::size_t pos = static_cast<std::size_t>(
        rng.NextUInt(static_cast<std::uint64_t>(events.size() + 1)));
    // Only insert at/after the first occurrence of the matching reject so
    // the accept really lands after it.
    const auto it = std::find_if(
        events.begin(), events.end(), [&](const stream::Event& e) {
          return e.type == stream::EventType::kReject && e.u == f.u &&
                 e.v == f.v;
        });
    const std::size_t lo =
        static_cast<std::size_t>(it - events.begin()) + 1;
    events.insert(events.begin() +
                      static_cast<std::ptrdiff_t>(std::max(pos, lo)),
                  f);
  }

  // Node removals at random positions. Later events may re-populate the
  // node — exactly the churn shape the DeltaGraph must absorb.
  if (base.NumNodes() > 0) {
    for (int i = 0; i < config.num_removals; ++i) {
      const graph::NodeId victim = static_cast<graph::NodeId>(
          rng.NextUInt(static_cast<std::uint64_t>(base.NumNodes())));
      const std::size_t pos = static_cast<std::size_t>(
          rng.NextUInt(static_cast<std::uint64_t>(events.size() + 1)));
      events.insert(
          events.begin() + static_cast<std::ptrdiff_t>(pos),
          {stream::EventType::kRemoveNode, victim, graph::kInvalidNode});
    }
  }

  stream::MutationLog out(base.NumNodes());
  for (const stream::Event& e : events) out.Append(e);
  return out;
}

}  // namespace rejecto::sim
