// Time-sharded deployment model (paper §VII).
//
// Compromised accounts behave organically until hijacked, then send friend
// spam; running Rejecto over the whole history dilutes the signal, so the
// paper's deployment note shards requests and rejections by time interval
// and runs detection per interval. TemporalScenario generates a sequence
// of per-interval request logs over a fixed user population, compromising
// a chosen block before `compromise_interval`, so per-interval pipelines
// (examples/interval_detection) can be built and tested against ground
// truth.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/social_graph.h"
#include "sim/request_log.h"
#include "util/rng.h"

namespace rejecto::sim {

struct TemporalConfig {
  std::uint64_t seed = 42;
  graph::NodeId num_users = 4'000;
  int num_intervals = 3;

  // Organic churn per interval (fresh Holme–Kim links + background
  // rejections at legit_rejection_rate).
  double organic_edges_per_user = 3.0;
  double organic_triad_probability = 0.4;
  double legit_rejection_rate = 0.15;

  // The attack: `num_compromised` random accounts start spamming from
  // `compromise_interval` (0-based) onward.
  graph::NodeId num_compromised = 200;
  int compromise_interval = 2;
  std::uint32_t requests_per_compromised = 50;
  double spam_rejection_rate = 0.7;
};

struct TemporalScenario {
  std::vector<RequestLog> intervals;        // one log per interval
  std::vector<graph::NodeId> compromised;   // ground truth
  std::vector<char> is_compromised;         // per node

  bool IntervalIsPostCompromise(int interval, const TemporalConfig& cfg) const {
    return interval >= cfg.compromise_interval;
  }
};

// Deterministic given config.seed. Throws std::invalid_argument on
// inconsistent parameters (no intervals, more compromised than users, ...).
TemporalScenario BuildTemporalScenario(const TemporalConfig& config);

}  // namespace rejecto::sim
