#include "sim/spam_simulator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rejecto::sim {
namespace {

std::uint32_t RoundCount(double fraction, std::uint32_t total) {
  return static_cast<std::uint32_t>(
      std::llround(fraction * static_cast<double>(total)));
}

}  // namespace

void OrientOrganicFriendships(RequestLog& log,
                              const graph::SocialGraph& legit_graph,
                              util::Rng& rng) {
  for (const graph::Edge& e : legit_graph.Edges()) {
    if (rng.NextBool(0.5)) {
      log.Add(e.u, e.v, Response::kAccepted);
    } else {
      log.Add(e.v, e.u, Response::kAccepted);
    }
  }
}

void AddLegitimateRejections(RequestLog& log,
                             const graph::SocialGraph& legit_graph,
                             double rate, util::Rng& rng) {
  if (rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument("AddLegitimateRejections: rate in [0, 1)");
  }
  const graph::NodeId n = legit_graph.NumNodes();
  if (n < 2 || rate == 0.0) return;
  for (graph::NodeId u = 0; u < n; ++u) {
    const double deg = legit_graph.Degree(u);
    const auto rejections = static_cast<std::uint64_t>(
        std::llround(deg * rate / (1.0 - rate)));
    for (std::uint64_t i = 0; i < rejections; ++i) {
      // Rejector: a random non-friend legitimate user. Rejection sampling
      // terminates fast because social degrees are << n.
      graph::NodeId v;
      int attempts = 0;
      do {
        v = static_cast<graph::NodeId>(rng.NextUInt(n));
        if (++attempts > 64) break;  // pathological near-clique node
      } while (v == u || legit_graph.HasEdge(u, v));
      if (v == u || legit_graph.HasEdge(u, v)) continue;
      log.Add(u, v, Response::kRejected);
    }
  }
}

void AddFakeArrivals(RequestLog& log, graph::NodeId first_fake,
                     graph::NodeId num_fakes,
                     std::uint32_t links_per_account, util::Rng& rng) {
  for (graph::NodeId j = 0; j < num_fakes; ++j) {
    const graph::NodeId f = first_fake + j;
    const std::uint64_t budget = std::min<std::uint64_t>(j, links_per_account);
    if (budget == 0) continue;
    for (std::uint64_t t : rng.SampleWithoutReplacement(j, budget)) {
      log.Add(f, first_fake + static_cast<graph::NodeId>(t),
              Response::kAccepted);
    }
  }
}

void AddSpamCampaign(RequestLog& log,
                     std::span<const graph::NodeId> spammers,
                     graph::NodeId num_legit,
                     std::uint32_t requests_per_spammer,
                     double rejection_rate, util::Rng& rng) {
  if (rejection_rate < 0.0 || rejection_rate > 1.0) {
    throw std::invalid_argument("AddSpamCampaign: rejection_rate in [0, 1]");
  }
  if (requests_per_spammer > num_legit) {
    throw std::invalid_argument(
        "AddSpamCampaign: more requests than legitimate users");
  }
  const std::uint32_t rejected =
      RoundCount(rejection_rate, requests_per_spammer);
  for (graph::NodeId s : spammers) {
    // A compromised account (paper §VII) spams from *inside* the legitimate
    // id range; over-sample by one so the sender can be dropped from its
    // own target set.
    const std::uint64_t want =
        std::min<std::uint64_t>(num_legit,
                                std::uint64_t{requests_per_spammer} + 1);
    auto targets = rng.SampleWithoutReplacement(num_legit, want);
    std::erase(targets, s);
    targets.resize(
        std::min<std::size_t>(targets.size(), requests_per_spammer));
    rng.Shuffle(targets);
    for (std::uint32_t i = 0; i < targets.size(); ++i) {
      log.Add(s, static_cast<graph::NodeId>(targets[i]),
              i < rejected ? Response::kRejected : Response::kAccepted);
    }
  }
}

void AddCarelessAccepts(RequestLog& log, graph::NodeId num_legit,
                        graph::NodeId first_fake, graph::NodeId num_fakes,
                        double fraction, util::Rng& rng) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("AddCarelessAccepts: fraction in [0, 1]");
  }
  if (num_fakes == 0 || fraction == 0.0) return;
  const auto count = static_cast<std::uint64_t>(
      std::llround(fraction * static_cast<double>(num_legit)));
  for (std::uint64_t u : rng.SampleWithoutReplacement(num_legit, count)) {
    const auto f =
        first_fake + static_cast<graph::NodeId>(rng.NextUInt(num_fakes));
    log.Add(static_cast<graph::NodeId>(u), f, Response::kAccepted);
  }
}

void AddSelfRejectionCampaign(RequestLog& log,
                              std::span<const graph::NodeId> senders,
                              graph::NodeId whitewashed_first,
                              graph::NodeId whitewashed_count,
                              std::uint32_t requests_per_sender, double rate,
                              util::Rng& rng) {
  if (rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument("AddSelfRejectionCampaign: rate in [0, 1]");
  }
  if (whitewashed_count == 0) return;
  const std::uint32_t budget =
      std::min<std::uint32_t>(requests_per_sender, whitewashed_count);
  const std::uint32_t rejected = RoundCount(rate, budget);
  for (graph::NodeId s : senders) {
    auto targets = rng.SampleWithoutReplacement(whitewashed_count, budget);
    rng.Shuffle(targets);
    std::uint32_t i = 0;
    for (std::uint64_t t : targets) {
      const auto w = whitewashed_first + static_cast<graph::NodeId>(t);
      if (w == s) continue;  // sender happens to be whitewashed itself
      log.Add(s, w, i < rejected ? Response::kRejected : Response::kAccepted);
      ++i;
    }
  }
}

void AddLegitRequestsRejectedByFakes(RequestLog& log, graph::NodeId num_legit,
                                     graph::NodeId first_fake,
                                     graph::NodeId num_fakes,
                                     std::uint64_t count, util::Rng& rng) {
  if (num_fakes == 0 && count > 0) {
    throw std::invalid_argument(
        "AddLegitRequestsRejectedByFakes: no fakes to reject");
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto u = static_cast<graph::NodeId>(rng.NextUInt(num_legit));
    const auto f =
        first_fake + static_cast<graph::NodeId>(rng.NextUInt(num_fakes));
    log.Add(u, f, Response::kRejected);
  }
}

}  // namespace rejecto::sim
