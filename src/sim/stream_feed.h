// Bridges the batch simulator and the streaming subsystem.
//
// Scenarios produce a sim::RequestLog (every friend request with its
// response); the streaming engine consumes a stream::MutationLog.
// ToMutationLog is the lossless translation: accepted requests become
// kAccept events, rejected requests become kReject events, in request
// order, over the same node count — so replaying the translated log yields
// exactly RequestLog::BuildAugmentedGraph()'s graph.
//
// GenerateChurnLog produces adversarial event streams for the differential
// and property harnesses: it perturbs a translated request log with
// duplicated events, out-of-order re-insertions, response flips
// (reject-then-accept pairs), and node removals — the messy shapes a real
// OSN feed has and the batch pipeline never sees.
#pragma once

#include <cstdint>

#include "sim/request_log.h"
#include "stream/mutation_log.h"

namespace rejecto::sim {

// Translates a request log into the equivalent mutation stream (kAccept /
// kReject per request, in order). The result has the same NumNodes().
stream::MutationLog ToMutationLog(const RequestLog& log);

struct ChurnConfig {
  // Fraction of events duplicated verbatim at a random later position.
  double duplicate_fraction = 0.1;
  // Fraction of adjacent event pairs swapped (local reordering).
  double swap_fraction = 0.1;
  // Fraction of kReject events followed (later) by a kAccept of the same
  // pair — the accept-after-reject shape that must keep BOTH the edge and
  // the arc.
  double flip_fraction = 0.05;
  // Expected number of kRemoveNode events injected, each targeting a
  // uniformly random node at a uniformly random position.
  int num_removals = 4;

  std::uint64_t seed = 1;
};

// Applies ChurnConfig's perturbations to ToMutationLog(log). Deterministic
// given the seed; the output is a valid MutationLog over the same node set.
stream::MutationLog GenerateChurnLog(const RequestLog& log,
                                     const ChurnConfig& config);

}  // namespace rejecto::sim
