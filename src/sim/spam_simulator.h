// Workload primitives composing a friend-spam attack (paper §VI-A).
//
// Each primitive appends requests to a RequestLog; BuildScenario composes
// them. They are exposed individually so tests can pin down each behaviour
// and so custom scenarios (examples/, ablations) can mix their own attacks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/social_graph.h"
#include "sim/request_log.h"
#include "util/rng.h"

namespace rejecto::sim {

// Replays the organic friendships of `legit_graph` as accepted requests
// with uniformly random sender/receiver orientation.
void OrientOrganicFriendships(RequestLog& log,
                              const graph::SocialGraph& legit_graph,
                              util::Rng& rng);

// Gives each legitimate user u rejections from random non-friend
// legitimate users so that u's per-sender rejection rate is `rate`:
// R(u) = round(deg(u) · rate / (1 − rate)) rejected requests from u
// (paper §VI-A "simulating rejections"). Precondition: rate in [0, 1).
void AddLegitimateRejections(RequestLog& log,
                             const graph::SocialGraph& legit_graph,
                             double rate, util::Rng& rng);

// Fake accounts [first_fake, first_fake + num_fakes) arrive in id order;
// each befriends min(arrived, links_per_account) distinct earlier fakes via
// accepted requests. Turning links_per_account up is the collusion strategy
// (Fig 13).
void AddFakeArrivals(RequestLog& log, graph::NodeId first_fake,
                     graph::NodeId num_fakes,
                     std::uint32_t links_per_account, util::Rng& rng);

// Each spammer sends `requests_per_spammer` requests to distinct random
// legitimate users [0, num_legit); exactly
// round(rejection_rate · requests_per_spammer) of them are rejected, the
// rest accepted (attack edges).
void AddSpamCampaign(RequestLog& log,
                     std::span<const graph::NodeId> spammers,
                     graph::NodeId num_legit,
                     std::uint32_t requests_per_spammer,
                     double rejection_rate, util::Rng& rng);

// round(fraction · num_legit) random legitimate users each send one
// *accepted* request to a uniformly random fake — the careless users of the
// paper's stress setup.
void AddCarelessAccepts(RequestLog& log, graph::NodeId num_legit,
                        graph::NodeId first_fake, graph::NodeId num_fakes,
                        double fraction, util::Rng& rng);

// Self-rejection (Fig 14): each sender directs
// `requests_per_sender` requests at random whitewashed accounts
// [whitewashed_first, whitewashed_first + whitewashed_count); a
// round(rate · requests_per_sender) share is rejected by the whitewashed
// receivers, the rest accepted.
void AddSelfRejectionCampaign(RequestLog& log,
                              std::span<const graph::NodeId> senders,
                              graph::NodeId whitewashed_first,
                              graph::NodeId whitewashed_count,
                              std::uint32_t requests_per_sender, double rate,
                              util::Rng& rng);

// Fig 15: `count` requests from random legitimate users to random fakes,
// every one rejected by the fake.
void AddLegitRequestsRejectedByFakes(RequestLog& log, graph::NodeId num_legit,
                                     graph::NodeId first_fake,
                                     graph::NodeId num_fakes,
                                     std::uint64_t count, util::Rng& rng);

}  // namespace rejecto::sim
