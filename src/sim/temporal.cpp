#include "sim/temporal.h"

#include <stdexcept>

#include "gen/holme_kim.h"
#include "sim/spam_simulator.h"

namespace rejecto::sim {

TemporalScenario BuildTemporalScenario(const TemporalConfig& config) {
  if (config.num_intervals <= 0) {
    throw std::invalid_argument("BuildTemporalScenario: need >= 1 interval");
  }
  if (config.num_compromised > config.num_users) {
    throw std::invalid_argument(
        "BuildTemporalScenario: more compromised accounts than users");
  }
  if (config.compromise_interval < 0) {
    throw std::invalid_argument(
        "BuildTemporalScenario: negative compromise interval");
  }

  util::Rng rng(config.seed);
  TemporalScenario scenario;
  scenario.is_compromised.assign(config.num_users, 0);
  for (std::uint64_t v :
       rng.SampleWithoutReplacement(config.num_users,
                                    config.num_compromised)) {
    scenario.compromised.push_back(static_cast<graph::NodeId>(v));
    scenario.is_compromised[static_cast<std::size_t>(v)] = 1;
  }

  for (int interval = 0; interval < config.num_intervals; ++interval) {
    util::Rng interval_rng = rng.Fork();
    // Each interval sees a fresh slice of organic link formation.
    const auto organic = gen::HolmeKim(
        {.num_nodes = config.num_users,
         .edges_per_node = config.organic_edges_per_user,
         .triad_probability = config.organic_triad_probability},
        interval_rng);

    RequestLog log(config.num_users);
    OrientOrganicFriendships(log, organic, interval_rng);
    AddLegitimateRejections(log, organic, config.legit_rejection_rate,
                            interval_rng);
    if (interval >= config.compromise_interval &&
        !scenario.compromised.empty()) {
      AddSpamCampaign(log, scenario.compromised, config.num_users,
                      config.requests_per_compromised,
                      config.spam_rejection_rate, interval_rng);
    }
    scenario.intervals.push_back(std::move(log));
  }
  return scenario;
}

}  // namespace rejecto::sim
