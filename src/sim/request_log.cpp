#include "sim/request_log.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "graph/builder.h"
#include "util/parse.h"

namespace rejecto::sim {

void RequestLog::GrowTo(graph::NodeId num_nodes) {
  if (num_nodes < num_nodes_) {
    throw std::invalid_argument("RequestLog::GrowTo: cannot shrink");
  }
  num_nodes_ = num_nodes;
}

void RequestLog::Add(graph::NodeId sender, graph::NodeId receiver,
                     Response response, std::int64_t timestamp) {
  if (sender == receiver) {
    throw std::invalid_argument("RequestLog::Add: self-request");
  }
  if (sender >= num_nodes_ || receiver >= num_nodes_) {
    throw std::out_of_range("RequestLog::Add: node id out of range");
  }
  if (timestamp < 0) {
    throw std::invalid_argument("RequestLog::Add: negative timestamp");
  }
  requests_.push_back({sender, receiver, response, timestamp});
  if (response == Response::kAccepted) {
    ++num_accepted_;
  } else {
    ++num_rejected_;
  }
}

void RequestLog::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("RequestLog::Save: cannot open " + path);
  }
  out << "# rejecto request log: nodes=" << num_nodes_
      << " requests=" << requests_.size() << '\n';
  const bool timed = std::any_of(
      requests_.begin(), requests_.end(),
      [](const FriendRequest& r) { return r.timestamp != 0; });
  for (const FriendRequest& r : requests_) {
    out << r.sender << ' ' << r.receiver << ' '
        << (r.response == Response::kAccepted ? 'A' : 'R');
    if (timed) out << ' ' << r.timestamp;
    out << '\n';
  }
  if (!out) {
    throw std::runtime_error("RequestLog::Save: write failure on " + path);
  }
}

RequestLog RequestLog::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("RequestLog::Load: cannot open " + path);
  }
  RequestLog log;
  std::string line;
  std::size_t lineno = 0;
  // Each ordered (sender, receiver) pair may carry at most ONE record —
  // repeats would silently collapse in the derived graph, so they are
  // rejected as corruption, with the line that repeats the pair named.
  std::unordered_set<std::uint64_t> seen_pairs;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string context = path + " line " + std::to_string(lineno);
    std::string_view rest(line);
    std::string_view first = util::NextToken(rest);
    if (first.empty()) continue;
    if (first.front() == '#') {
      // Honor the node-count header so isolated trailing nodes survive a
      // round trip.
      const auto pos = line.find("nodes=");
      if (pos != std::string::npos) {
        std::string_view count_rest(line);
        count_rest.remove_prefix(pos + 6);
        log.GrowTo(static_cast<graph::NodeId>(util::ParseU64Checked(
            util::NextToken(count_rest), context, graph::kInvalidNode - 1)));
      }
      continue;
    }
    const graph::NodeId sender = util::ParseNodeIdChecked(first, context);
    const graph::NodeId receiver =
        util::ParseNodeIdChecked(util::NextToken(rest), context);
    const std::string_view resp = util::NextToken(rest);
    if (resp != "A" && resp != "R") {
      throw std::runtime_error(context + ": response must be 'A' or 'R', got '" +
                               std::string(resp) + "'");
    }
    std::int64_t timestamp = 0;
    const std::string_view ts = util::NextToken(rest);
    if (!ts.empty()) {
      timestamp = static_cast<std::int64_t>(util::ParseU64Checked(
          ts, context + ": timestamp",
          static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())));
    }
    if (!util::NextToken(rest).empty()) {
      throw std::runtime_error(context + ": trailing tokens after record");
    }
    if (sender == receiver) {
      throw std::runtime_error(context + ": self-request (sender == receiver)");
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(sender) << 32) | receiver;
    if (!seen_pairs.insert(key).second) {
      throw std::runtime_error(context + ": duplicate request " +
                               std::to_string(sender) + " -> " +
                               std::to_string(receiver));
    }
    log.GrowTo(std::max({log.NumNodes(), sender + 1, receiver + 1}));
    log.Add(sender, receiver,
            resp == "A" ? Response::kAccepted : Response::kRejected,
            timestamp);
  }
  return log;
}

graph::AugmentedGraph RequestLog::BuildAugmentedGraph() const {
  graph::GraphBuilder builder(num_nodes_);
  for (const FriendRequest& r : requests_) {
    if (r.response == Response::kAccepted) {
      builder.AddFriendship(r.sender, r.receiver);
    } else {
      builder.AddRejection(r.receiver, r.sender);
    }
  }
  return builder.BuildAugmented();
}

}  // namespace rejecto::sim
