#include "sim/request_log.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/builder.h"

namespace rejecto::sim {

void RequestLog::GrowTo(graph::NodeId num_nodes) {
  if (num_nodes < num_nodes_) {
    throw std::invalid_argument("RequestLog::GrowTo: cannot shrink");
  }
  num_nodes_ = num_nodes;
}

void RequestLog::Add(graph::NodeId sender, graph::NodeId receiver,
                     Response response) {
  if (sender == receiver) {
    throw std::invalid_argument("RequestLog::Add: self-request");
  }
  if (sender >= num_nodes_ || receiver >= num_nodes_) {
    throw std::out_of_range("RequestLog::Add: node id out of range");
  }
  requests_.push_back({sender, receiver, response});
  if (response == Response::kAccepted) {
    ++num_accepted_;
  } else {
    ++num_rejected_;
  }
}

void RequestLog::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("RequestLog::Save: cannot open " + path);
  }
  out << "# rejecto request log: nodes=" << num_nodes_
      << " requests=" << requests_.size() << '\n';
  for (const FriendRequest& r : requests_) {
    out << r.sender << ' ' << r.receiver << ' '
        << (r.response == Response::kAccepted ? 'A' : 'R') << '\n';
  }
  if (!out) {
    throw std::runtime_error("RequestLog::Save: write failure on " + path);
  }
}

RequestLog RequestLog::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("RequestLog::Load: cannot open " + path);
  }
  RequestLog log;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Honor the node-count header so isolated trailing nodes survive a
      // round trip.
      const auto pos = line.find("nodes=");
      if (pos != std::string::npos) {
        log.GrowTo(static_cast<graph::NodeId>(
            std::stoull(line.substr(pos + 6))));
      }
      continue;
    }
    std::istringstream ls(line);
    graph::NodeId sender = 0, receiver = 0;
    char resp = 0;
    if (!(ls >> sender >> receiver >> resp) || (resp != 'A' && resp != 'R')) {
      throw std::runtime_error("RequestLog::Load: malformed line " +
                               std::to_string(lineno) + " in " + path);
    }
    log.GrowTo(std::max({log.NumNodes(), sender + 1, receiver + 1}));
    log.Add(sender, receiver,
            resp == 'A' ? Response::kAccepted : Response::kRejected);
  }
  return log;
}

graph::AugmentedGraph RequestLog::BuildAugmentedGraph() const {
  graph::GraphBuilder builder(num_nodes_);
  for (const FriendRequest& r : requests_) {
    if (r.response == Response::kAccepted) {
      builder.AddFriendship(r.sender, r.receiver);
    } else {
      builder.AddRejection(r.receiver, r.sender);
    }
  }
  return builder.BuildAugmented();
}

}  // namespace rejecto::sim
