// Friend-request history: the single source of truth a scenario generates.
//
// Every friendship and rejection in a simulated OSN originates from a
// directed friend request that was either accepted (creating an undirected
// OSN link) or rejected (creating a rejection arc receiver→sender). Rejecto
// consumes the derived AugmentedGraph; VoteTrust consumes the raw directed
// request log.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/augmented_graph.h"
#include "graph/types.h"

namespace rejecto::sim {

enum class Response : std::uint8_t {
  kAccepted,
  kRejected,
};

struct FriendRequest {
  graph::NodeId sender = graph::kInvalidNode;
  graph::NodeId receiver = graph::kInvalidNode;
  Response response = Response::kRejected;
  // Arrival time (arbitrary non-negative units; 0 = unknown/untimed). The
  // temporal harness replays logs in record order, so the timestamp is
  // carried metadata, not a sort key.
  std::int64_t timestamp = 0;

  friend bool operator==(const FriendRequest&, const FriendRequest&) = default;
};

class RequestLog {
 public:
  explicit RequestLog(graph::NodeId num_nodes = 0) : num_nodes_(num_nodes) {}

  graph::NodeId NumNodes() const noexcept { return num_nodes_; }
  void GrowTo(graph::NodeId num_nodes);

  // Precondition: sender != receiver, both < NumNodes(), timestamp >= 0.
  void Add(graph::NodeId sender, graph::NodeId receiver, Response response,
           std::int64_t timestamp = 0);

  std::span<const FriendRequest> Requests() const noexcept {
    return requests_;
  }
  std::size_t NumRequests() const noexcept { return requests_.size(); }

  std::uint64_t NumAccepted() const noexcept { return num_accepted_; }
  std::uint64_t NumRejected() const noexcept { return num_rejected_; }

  // Accepted requests become undirected friendships; rejected requests
  // become rejection arcs receiver→sender (the receiver rejected the
  // sender's request, paper §III-A).
  graph::AugmentedGraph BuildAugmentedGraph() const;

  // Text persistence: "<sender> <receiver> <A|R>[ <timestamp>]" per line
  // with a header comment carrying the node count; '#' comments ignored on
  // load; the timestamp column is written only when some request carries a
  // nonzero timestamp. Lets simulated workloads feed the file-driven
  // tooling and external logs enter the pipeline.
  //
  // Load is hardened like the graph/io loaders (util/parse.h): malformed
  // ids, signed/garbage/overflowing numbers, trailing junk, self-requests,
  // DUPLICATE ordered (sender, receiver) records, and timestamps outside
  // [0, INT64_MAX] are all rejected with a "<path> line N: ..."
  // std::runtime_error — a repeated pair would silently collapse in the
  // derived graph, so it is upstream corruption, not data.
  void Save(const std::string& path) const;
  static RequestLog Load(const std::string& path);

 private:
  graph::NodeId num_nodes_ = 0;
  std::vector<FriendRequest> requests_;
  std::uint64_t num_accepted_ = 0;
  std::uint64_t num_rejected_ = 0;
};

}  // namespace rejecto::sim
