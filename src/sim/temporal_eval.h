// Temporal attack worlds with adaptive adversaries (ROADMAP "Early
// detection and adaptive adversaries").
//
// The batch scenarios (sim/scenario.h) materialize an attack's END STATE;
// this module generates the attack as it UNFOLDS, one interval at a time,
// against an adversary that observes the evolving rejection and detection
// state and adapts:
//
//   * kStaticCampaign    — the paper's §VI-A campaign replayed in
//                          intervals: every spammer sends its per-interval
//                          budget to uniformly random untried victims. The
//                          baseline every adaptive strategy is measured
//                          against.
//   * kProbeThenFlood    — cheap probes first: a few requests per interval
//                          to random victims, pooling every accepter the
//                          colluding spammers discover. After the probe
//                          phase, the full budget floods the accepters and
//                          their graph neighborhoods — the careless corner
//                          of the OSN — so far fewer rejections accumulate.
//   * kRejectionRetarget — per-spammer victim selection: victims who
//                          reject are abandoned (never retried, never
//                          expanded); each accepted victim's neighborhood
//                          joins the spammer's target frontier. Spam walks
//                          outward from wherever it lands.
//   * kSlowDripCollusion — stay under a per-interval rate threshold: at
//                          most `drip_max_requests_per_interval` requests
//                          per spammer per interval, a full cool-down
//                          interval after any rejection, plus a steady
//                          drip of intra-fake collusion links to keep the
//                          region well-embedded while evidence accrues
//                          slowly.
//
// Legitimate behaviour is heterogeneous (arXiv 2501.16624): every legit
// user draws a REJECTION PROPENSITY — the probability it rejects an
// unsolicited request — from a configurable band, with a careless minority
// assigned a near-zero propensity in graph PATCHES (a random user plus its
// neighborhood), because carelessness clusters socially; the patches are
// exactly what probe-then-flood and retargeting exploit. Responses to
// every unsolicited request (organic or spam) are drawn per-receiver from
// these propensities.
//
// Everything is deterministic given TemporalEvalConfig::seed plus the
// flagged masks fed back by the harness (which are themselves
// thread-invariant — see engine/epoch_detector.h), so golden tests can pin
// whole adaptive runs. Flagged accounts are suspended: the OSN acts on a
// detection, so a flagged spammer emits nothing further — evading the
// detector longer is precisely what the adaptive strategies buy.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "detect/seeds.h"
#include "graph/social_graph.h"
#include "sim/request_log.h"
#include "util/rng.h"

namespace rejecto::sim {

enum class AdversaryKind : std::uint8_t {
  kStaticCampaign,
  kProbeThenFlood,
  kRejectionRetarget,
  kSlowDripCollusion,
};

// Stable lowercase identifier ("static_campaign", ...) used by benches,
// golden files, and BENCH_maar.json records.
std::string_view AdversaryName(AdversaryKind kind);

struct PropensityConfig {
  // Non-careless users draw uniformly from
  // [mean - spread, mean + spread], clamped to [min, max].
  double mean = 0.7;
  double spread = 0.2;
  double min_propensity = 0.02;
  double max_propensity = 0.98;

  // ~careless_fraction of legit users sit in careless patches (random
  // center + its whole neighborhood) at careless_propensity.
  double careless_fraction = 0.12;
  double careless_propensity = 0.05;
};

struct TemporalEvalConfig {
  std::uint64_t seed = 42;

  // --- fake region (ids [num_legit, num_legit + num_fakes)) ---
  graph::NodeId num_fakes = 400;
  std::uint32_t intra_fake_links_per_account = 6;
  double spamming_fraction = 1.0;

  // --- campaign shape ---
  AdversaryKind adversary = AdversaryKind::kStaticCampaign;
  int num_intervals = 8;
  std::uint32_t requests_per_spammer_per_interval = 6;

  // --- organic background (the prelude before the attack) ---
  // Each legit user u sends round(deg(u) · organic_request_fraction)
  // unsolicited requests to random non-friends, answered per the
  // receiver's propensity — the heterogeneous analogue of
  // AddLegitimateRejections.
  double organic_request_fraction = 0.3;

  // --- probe-then-flood ---
  int probe_intervals = 2;
  std::uint32_t probe_requests_per_interval = 2;

  // --- slow-drip collusion ---
  std::uint32_t drip_max_requests_per_interval = 2;
  std::uint32_t drip_collusion_links_per_interval = 1;

  PropensityConfig propensity;
};

// The evolving attack state: the request log grown so far (arrival order IS
// the replay order), ground truth, per-victim propensities, and the
// dedup/outcome bookkeeping the adversaries adapt on. The legit graph must
// outlive the world.
class TemporalWorld {
 public:
  TemporalWorld(const graph::SocialGraph& legit_graph,
                const TemporalEvalConfig& config);

  graph::NodeId NumLegit() const noexcept { return num_legit_; }
  graph::NodeId NumFakes() const noexcept { return config_.num_fakes; }
  graph::NodeId NumNodes() const noexcept {
    return num_legit_ + config_.num_fakes;
  }
  const TemporalEvalConfig& Config() const noexcept { return config_; }
  const graph::SocialGraph& LegitGraph() const noexcept { return *legit_; }

  // The full request history in arrival order; grows as adversaries emit.
  const RequestLog& Log() const noexcept { return log_; }
  const std::vector<char>& IsFake() const noexcept { return is_fake_; }
  const std::vector<graph::NodeId>& Spammers() const noexcept {
    return spammers_;
  }
  // Per-node rejection propensity (legit ids; fakes hold 0).
  const std::vector<double>& Propensities() const noexcept {
    return propensity_;
  }

  // Same sampling contract as Scenario::SampleSeeds: random legit users and
  // random spam-sending fakes.
  detect::Seeds SampleSeeds(graph::NodeId num_legit_seeds,
                            graph::NodeId num_spammer_seeds, util::Rng& rng);

  // True when the ordered pair sender→receiver already carries a request
  // (each pair gets at most one — repeats collapse in the graph anyway).
  bool Tried(graph::NodeId sender, graph::NodeId receiver) const;

  // Appends the spam request f→victim, drawing the response from the
  // victim's propensity. Returns true when accepted (an attack edge).
  // Preconditions: f a fake, victim legit, pair untried.
  bool SendSpamRequest(graph::NodeId f, graph::NodeId victim);

  // Appends an accepted intra-fake link f→g (collusion). No-op when the
  // pair was already tried in either direction.
  void AddCollusionLink(graph::NodeId f, graph::NodeId g);

  // Spam accounting (fake→legit requests only; collusion excluded).
  std::uint64_t SpamRequestsSent(graph::NodeId f) const;
  std::uint64_t SpamAccepted(graph::NodeId f) const;

  util::Rng& Rng() noexcept { return rng_; }

 private:
  void MarkTried(graph::NodeId sender, graph::NodeId receiver);

  const graph::SocialGraph* legit_;
  TemporalEvalConfig config_;
  graph::NodeId num_legit_ = 0;
  RequestLog log_;
  std::vector<char> is_fake_;
  std::vector<double> propensity_;
  std::vector<graph::NodeId> spammers_;
  std::vector<std::unordered_set<graph::NodeId>> tried_;
  std::vector<std::uint64_t> spam_sent_;
  std::vector<std::uint64_t> spam_accepted_;
  util::Rng rng_;
};

// Per-node propensity draw (exposed for tests and custom worlds): careless
// patches first, uniform band for the rest. Returns one entry per node of
// `legit_graph`.
std::vector<double> DrawPropensities(const graph::SocialGraph& legit_graph,
                                     const PropensityConfig& config,
                                     util::Rng& rng);

// The attacker. One instance drives all spammers of a world (they collude:
// probe intel is shared), emitting one interval of requests at a time and
// adapting to (a) its own request outcomes and (b) the flagged mask the
// harness feeds back after each detection epoch.
class AdaptiveAdversary {
 public:
  explicit AdaptiveAdversary(TemporalWorld& world);

  // Emits interval `interval`'s requests into the world. `flagged` is the
  // current detection mask (empty before the first epoch; otherwise sized
  // to world.NumNodes()); flagged spammers are suspended and emit nothing.
  // Returns the number of spam requests emitted.
  std::uint64_t EmitInterval(int interval, const std::vector<char>& flagged);

 private:
  struct SpammerState {
    std::vector<graph::NodeId> frontier;  // retarget: pending targets
    std::size_t frontier_pos = 0;
    std::uint32_t recent_rejections = 0;  // slow drip: cool-down trigger
  };

  bool Flagged(const std::vector<char>& flagged, graph::NodeId v) const {
    return v < flagged.size() && flagged[v] != 0;
  }
  // A uniformly random untried legit victim, or kInvalidNode when the
  // rejection sampling budget runs out (near-exhausted target space).
  graph::NodeId RandomUntriedVictim(graph::NodeId f);
  // Sends one request, records outcome intel shared across the collusion
  // (accepter pool, per-spammer frontier growth, drip cool-down).
  bool SendAndObserve(graph::NodeId f, graph::NodeId victim,
                      SpammerState& state);

  std::uint64_t EmitStatic(const std::vector<char>& flagged);
  std::uint64_t EmitProbeThenFlood(int interval,
                                   const std::vector<char>& flagged);
  std::uint64_t EmitRetarget(const std::vector<char>& flagged);
  std::uint64_t EmitSlowDrip(const std::vector<char>& flagged);

  TemporalWorld& world_;
  std::vector<SpammerState> state_;            // parallel to Spammers()
  std::vector<char> is_known_accepter_;        // shared probe intel
  std::vector<graph::NodeId> known_accepters_;
};

}  // namespace rejecto::sim
