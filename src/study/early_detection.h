// Temporal early-detection harness: time-to-detection and
// harm-before-detection over an unfolding attack.
//
// The batch experiments answer "does Rejecto find the fakes at the end?";
// the deployment question (paper §V, §VII) is how EARLY: how many requests
// does a spammer get to send — and how many victims accept — before the
// detector flags it? This harness replays a sim::TemporalWorld's request
// log through an engine::EpochDetector in arrival order, one adversary
// interval per epoch, and measures exactly that:
//
//   * epoch curve      — precision/recall of the full detection after every
//                        interval (the classic quality-vs-time plot);
//   * checkpoint recall— every spammer is scored the moment its 5th / 10th
//                        / 20th / 50th spam request is sent (configurable),
//                        using the O(deg) sub-epoch incremental score
//                        (detect/incremental.h) against the previous
//                        epoch's cut. This is the serving-tier answer: "we
//                        need not wait for the next epoch to act";
//   * time-to-detection— per spammer, the number of spam requests sent
//                        before it was first flagged (epoch or incremental
//                        tier; -1 when never flagged);
//   * harm-before-detection — per spammer, the spam edges (accepted
//                        requests) it landed before first being flagged;
//                        never-flagged spammers count their full harm.
//
// Flagging feeds back: after each epoch the newly detected accounts join a
// sticky flagged mask handed to the adversary, which suspends them (see
// sim/temporal_eval.h) — adaptive adversaries therefore shape BOTH what the
// detector sees and how long their accounts survive.
//
// Determinism: the whole run is a pure function of the world's seed, the
// seeds, and the config. With warm_start off, every epoch is EXACTLY a
// batch DetectFriendSpammers on the log replayed so far — the differential
// test pins the final epoch bit-identical to a one-shot batch detection on
// the full log at any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "detect/iterative.h"
#include "detect/seeds.h"
#include "sim/temporal_eval.h"

namespace rejecto::study {

struct EarlyDetectionConfig {
  // Per-epoch detection pipeline (threads via detect.maar.num_threads).
  detect::IterativeConfig detect;

  // Warm-start epochs from the previous cut (engine::EpochConfig). Off by
  // default so the final epoch stays bit-identical to batch detection.
  bool warm_start = false;

  // Spam-request counts at which a sender is scored sub-epoch. Must be
  // strictly increasing.
  std::vector<std::uint32_t> checkpoints = {5, 10, 20, 50};

  // Score checkpoints with the O(deg) incremental gain once a baseline
  // epoch exists. Off = checkpoints only observe the epoch flags (which lag
  // by construction — suspended spammers stop sending).
  bool incremental_checkpoints = true;

  // Run one epoch on the organic prelude before the attack starts, so the
  // incremental tier has a baseline cut from the very first interval (the
  // OSN was running detection before the attack, not booting with it). The
  // prelude epoch is not an EpochPoint — the curve covers attack intervals.
  bool prelude_epoch = true;
};

// One sub-epoch scoring checkpoint, aggregated over all spammers that
// reached it while still active (flagged spammers are suspended and stop
// sending, so they age out of later checkpoints).
struct CheckpointStats {
  std::uint32_t requests = 0;  // the checkpoint (requests sent so far)
  std::uint64_t scored = 0;    // spammers scored at this checkpoint
  std::uint64_t flagged = 0;   // ... of which were flagged at that moment

  double Recall() const noexcept {
    return scored == 0
               ? 0.0
               : static_cast<double>(flagged) / static_cast<double>(scored);
  }
};

// Detection quality after one adversary interval's epoch.
struct EpochPoint {
  int interval = 0;
  std::uint64_t requests_replayed = 0;  // log prefix length at this epoch
  std::size_t num_detected = 0;
  double precision = 0.0;
  double recall = 0.0;
  double detect_seconds = 0.0;
};

struct EarlyDetectionResult {
  std::vector<EpochPoint> curve;
  std::vector<CheckpointStats> checkpoints;

  // Indexed by node id. time_to_detection[v]: spam requests v had sent when
  // first flagged (-1 = never flagged; 0 = flagged by the prelude epoch,
  // before sending anything). harm_before_detection[v]: accepted spam
  // requests at that moment (full harm for never-flagged senders). Only
  // spam-sending fakes carry meaningful values.
  std::vector<std::int64_t> time_to_detection;
  std::vector<std::uint64_t> harm_before_detection;

  std::uint64_t total_spam_requests = 0;
  std::uint64_t total_spam_accepted = 0;
  std::uint64_t incremental_flags = 0;  // first-flags from the sub-epoch tier

  // Aggregates over the world's spammers.
  std::uint64_t spammers_total = 0;
  std::uint64_t spammers_detected = 0;  // flagged at least once
  double mean_time_to_detection = 0.0;  // over detected spammers (0 if none)
  double mean_harm_before_detection = 0.0;  // over ALL spammers

  // The last epoch's full detection output (for differential pinning
  // against a one-shot batch run on the complete log).
  detect::DetectionResult final_detection;
};

// Drives `adversary` for world.Config().num_intervals intervals, running
// one detection epoch after each, and returns the collected metrics. The
// world must be freshly built (its log grows; the harness replays it
// incrementally) and the adversary constructed over the same world.
EarlyDetectionResult RunEarlyDetection(sim::TemporalWorld& world,
                                       sim::AdaptiveAdversary& adversary,
                                       const detect::Seeds& seeds,
                                       const EarlyDetectionConfig& config);

}  // namespace rejecto::study
