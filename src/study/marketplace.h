// Synthetic underground-market account study (paper §II, Figs 1–5).
//
// The paper motivates Rejecto with 43 fake Facebook accounts purchased from
// underground marketplaces: despite being well-maintained ("> 50 real US
// friends", year-old, crafted profiles), every account carried a large
// pending-request backlog — the social-rejection signal. We cannot buy
// accounts, so this module models the measured population (DESIGN.md
// substitution #2):
//   * 43 accounts totalling ≈2804 friends and ≈2065 pending requests, the
//     per-account pending fraction uniform in the measured 16.7%–67.9%;
//   * friend attributes (social degree, wall posts, photos, likes,
//     comments) drawn log-normally to match the heavy-tailed CDFs of
//     Figs 3–5 (e.g. a tail of >1000-degree friends).
// Motivation-section data only; the detection pipeline never consumes it.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace rejecto::study {

struct MarketplaceConfig {
  std::uint32_t num_accounts = 43;
  std::uint32_t min_friends_ordered = 50;  // the purchase requirement
  double mean_friends = 65.0;              // ≈ 2804 / 43
  double friends_sigma = 0.35;             // log-normal spread
  double min_pending_fraction = 0.167;     // measured band (paper §II-A)
  double max_pending_fraction = 0.679;
  std::uint64_t seed = 2015;
};

struct PurchasedAccount {
  std::uint32_t friends = 0;
  std::uint32_t pending_requests = 0;

  double PendingFraction() const noexcept {
    const double total = friends + pending_requests;
    return total == 0 ? 0.0 : pending_requests / total;
  }
};

// One friend-of-a-purchased-account's crawled attributes (Figs 3–5).
struct FriendAttributes {
  std::uint32_t social_degree = 0;
  std::uint32_t posts = 0;
  std::uint32_t post_likes = 0;
  std::uint32_t post_comments = 0;
  std::uint32_t photos = 0;
  std::uint32_t photo_likes = 0;
  std::uint32_t photo_comments = 0;
};

struct MarketplaceStudy {
  std::vector<PurchasedAccount> accounts;
  std::vector<FriendAttributes> friends;  // one entry per delivered friend

  std::uint64_t TotalFriends() const noexcept;
  std::uint64_t TotalPending() const noexcept;
};

MarketplaceStudy GenerateStudy(const MarketplaceConfig& config);

// Empirical CDF helper for the Figs 3–5 tables: returns the values at the
// requested quantiles (each in [0, 1]) of the given samples.
std::vector<std::uint32_t> CdfQuantiles(std::vector<std::uint32_t> samples,
                                        const std::vector<double>& quantiles);

}  // namespace rejecto::study
