#include "study/marketplace.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rejecto::study {
namespace {

std::uint32_t ClampedLogNormal(util::Rng& rng, double mu_of_median,
                               double sigma, std::uint32_t lo,
                               std::uint32_t hi) {
  const double v = rng.NextLogNormal(std::log(mu_of_median), sigma);
  return static_cast<std::uint32_t>(
      std::clamp(v, static_cast<double>(lo), static_cast<double>(hi)));
}

}  // namespace

std::uint64_t MarketplaceStudy::TotalFriends() const noexcept {
  std::uint64_t t = 0;
  for (const auto& a : accounts) t += a.friends;
  return t;
}

std::uint64_t MarketplaceStudy::TotalPending() const noexcept {
  std::uint64_t t = 0;
  for (const auto& a : accounts) t += a.pending_requests;
  return t;
}

MarketplaceStudy GenerateStudy(const MarketplaceConfig& config) {
  if (config.min_pending_fraction < 0 || config.max_pending_fraction >= 1 ||
      config.min_pending_fraction > config.max_pending_fraction) {
    throw std::invalid_argument("GenerateStudy: bad pending fraction band");
  }
  util::Rng rng(config.seed);
  MarketplaceStudy study;
  study.accounts.reserve(config.num_accounts);

  for (std::uint32_t i = 0; i < config.num_accounts; ++i) {
    PurchasedAccount acc;
    acc.friends = ClampedLogNormal(rng, config.mean_friends,
                                   config.friends_sigma,
                                   config.min_friends_ordered, 160);
    // pending/(pending+friends) = f  =>  pending = friends * f / (1-f)
    const double f = rng.NextDouble(config.min_pending_fraction,
                                    config.max_pending_fraction);
    acc.pending_requests = static_cast<std::uint32_t>(
        std::llround(acc.friends * f / (1.0 - f)));
    study.accounts.push_back(acc);
  }

  // Friend attributes: heavy-tailed activity mirroring the crawled CDFs —
  // most friends moderately active, a tail of very-high-degree accounts
  // ("either careless users or abusive fakes", §II-A).
  for (const PurchasedAccount& acc : study.accounts) {
    for (std::uint32_t j = 0; j < acc.friends; ++j) {
      FriendAttributes fa;
      // ~4% of delivered friends are themselves abusive high-degree fakes.
      if (rng.NextBool(0.04)) {
        fa.social_degree = ClampedLogNormal(rng, 1800.0, 0.4, 1000, 5000);
      } else {
        fa.social_degree = ClampedLogNormal(rng, 280.0, 0.8, 5, 4800);
      }
      fa.posts = ClampedLogNormal(rng, 40.0, 1.0, 0, 300);
      fa.post_likes = ClampedLogNormal(rng, 25.0, 1.1, 0, 300);
      fa.post_comments = ClampedLogNormal(rng, 15.0, 1.1, 0, 300);
      fa.photos = ClampedLogNormal(rng, 30.0, 1.0, 0, 250);
      fa.photo_likes = ClampedLogNormal(rng, 20.0, 1.1, 0, 250);
      fa.photo_comments = ClampedLogNormal(rng, 10.0, 1.1, 0, 250);
      study.friends.push_back(fa);
    }
  }
  return study;
}

std::vector<std::uint32_t> CdfQuantiles(std::vector<std::uint32_t> samples,
                                        const std::vector<double>& quantiles) {
  if (samples.empty()) {
    throw std::invalid_argument("CdfQuantiles: empty sample set");
  }
  std::sort(samples.begin(), samples.end());
  std::vector<std::uint32_t> out;
  out.reserve(quantiles.size());
  for (double q : quantiles) {
    if (q < 0.0 || q > 1.0) {
      throw std::invalid_argument("CdfQuantiles: quantile outside [0, 1]");
    }
    const auto idx = static_cast<std::size_t>(
        std::min<double>(std::floor(q * static_cast<double>(samples.size())),
                         static_cast<double>(samples.size() - 1)));
    out.push_back(samples[idx]);
  }
  return out;
}

}  // namespace rejecto::study
