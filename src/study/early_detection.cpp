#include "study/early_detection.h"

#include <stdexcept>
#include <utility>

#include "engine/epoch_detector.h"
#include "metrics/classification.h"
#include "stream/mutation_log.h"

namespace rejecto::study {

namespace {

stream::Event ToEvent(const sim::FriendRequest& r) {
  stream::Event e;
  e.type = r.response == sim::Response::kAccepted ? stream::EventType::kAccept
                                                  : stream::EventType::kReject;
  e.u = r.sender;
  e.v = r.receiver;
  return e;
}

}  // namespace

EarlyDetectionResult RunEarlyDetection(sim::TemporalWorld& world,
                                       sim::AdaptiveAdversary& adversary,
                                       const detect::Seeds& seeds,
                                       const EarlyDetectionConfig& config) {
  for (std::size_t i = 1; i < config.checkpoints.size(); ++i) {
    if (config.checkpoints[i] <= config.checkpoints[i - 1]) {
      throw std::invalid_argument(
          "RunEarlyDetection: checkpoints must be strictly increasing");
    }
  }
  if (!config.checkpoints.empty() && config.checkpoints.front() == 0) {
    throw std::invalid_argument(
        "RunEarlyDetection: checkpoints must be positive");
  }

  engine::EpochConfig ecfg;
  ecfg.detect = config.detect;
  ecfg.events_per_epoch = 0;  // epochs fire at interval boundaries only
  ecfg.warm_start = config.warm_start;
  engine::EpochDetector detector(world.NumNodes(), seeds, ecfg);

  const graph::NodeId n = world.NumNodes();
  EarlyDetectionResult result;
  result.checkpoints.reserve(config.checkpoints.size());
  for (std::uint32_t cp : config.checkpoints) {
    CheckpointStats s;
    s.requests = cp;
    result.checkpoints.push_back(s);
  }
  result.time_to_detection.assign(n, -1);
  result.harm_before_detection.assign(n, 0);

  std::vector<std::uint64_t> sent(n, 0);
  std::vector<std::uint64_t> accepted(n, 0);
  std::vector<char> flagged(n, 0);
  const std::vector<char>& is_fake = world.IsFake();

  // The prelude (organic history + fake arrivals) predates the attack; it
  // streams in before the first epoch, uninstrumented.
  std::uint64_t replayed = 0;
  for (std::size_t i = 0; i < world.Log().NumRequests(); ++i) {
    detector.Ingest(ToEvent(world.Log().Requests()[i]));
    ++replayed;
  }
  if (config.prelude_epoch) {
    // Establishes the incremental tier's baseline. Prelude flags feed back
    // like any others; an account flagged before its first spam request is
    // a zero-requests, zero-harm detection (small worlds can expose the
    // arrival-linked fake cluster as a zero-cut region pre-attack).
    detector.RunEpoch();
    for (graph::NodeId v : detector.LastResult().detected) {
      flagged[v] = 1;
      if (result.time_to_detection[v] < 0) {
        result.time_to_detection[v] = 0;
        result.harm_before_detection[v] = 0;
      }
    }
  }

  for (int interval = 0; interval < world.Config().num_intervals; ++interval) {
    const std::size_t before = world.Log().NumRequests();
    adversary.EmitInterval(interval, flagged);

    for (std::size_t i = before; i < world.Log().NumRequests(); ++i) {
      // Re-acquire the span each iteration: EmitInterval grew the log and
      // the request vector may have reallocated.
      const sim::FriendRequest r = world.Log().Requests()[i];
      detector.Ingest(ToEvent(r));
      ++replayed;

      // Spam accounting covers fake→legit requests only (collusion links
      // between fakes are not victim-facing harm).
      if (is_fake[r.sender] == 0 || is_fake[r.receiver] != 0) continue;
      const graph::NodeId f = r.sender;
      ++sent[f];
      ++result.total_spam_requests;
      const bool was_accepted = r.response == sim::Response::kAccepted;
      if (was_accepted) {
        ++accepted[f];
        ++result.total_spam_accepted;
      }

      // Sub-epoch checkpoint: score the sender the moment its count hits a
      // checkpoint. Epoch flags suspend senders, so an active sender can
      // only be flagged here by the incremental tier — checkpoint recall
      // measures exactly the O(deg) serving-tier answer.
      for (CheckpointStats& cp : result.checkpoints) {
        if (sent[f] != cp.requests) continue;
        ++cp.scored;
        bool flag = flagged[f] != 0;
        if (!flag && config.incremental_checkpoints &&
            detector.HasIncrementalBaseline()) {
          flag = detector.ScoreSenderIncremental(f).suspicious;
          if (flag && result.time_to_detection[f] < 0) {
            ++result.incremental_flags;
            result.time_to_detection[f] =
                static_cast<std::int64_t>(sent[f]);
            result.harm_before_detection[f] = accepted[f];
          }
        }
        if (flag) ++cp.flagged;
        break;
      }
    }

    const engine::EpochStats& stats = detector.RunEpoch();
    const detect::DetectionResult& dr = detector.LastResult();

    // Flags are sticky: the OSN acts on a detection, so an account once
    // flagged stays suspended even if a later epoch's cut drifts off it.
    for (graph::NodeId v : dr.detected) {
      if (flagged[v] != 0) continue;
      flagged[v] = 1;
      if (result.time_to_detection[v] < 0) {
        result.time_to_detection[v] = static_cast<std::int64_t>(sent[v]);
        result.harm_before_detection[v] = accepted[v];
      }
    }

    const metrics::ConfusionCounts cc =
        metrics::EvaluateDetection(is_fake, dr.detected);
    EpochPoint point;
    point.interval = interval;
    point.requests_replayed = replayed;
    point.num_detected = dr.detected.size();
    point.precision = cc.Precision();
    point.recall = cc.Recall();
    point.detect_seconds = stats.detect_seconds;
    result.curve.push_back(point);
  }

  result.final_detection = detector.LastResult();

  result.spammers_total = world.Spammers().size();
  std::uint64_t ttd_sum = 0;
  std::uint64_t harm_sum = 0;
  for (graph::NodeId f : world.Spammers()) {
    if (result.time_to_detection[f] >= 0) {
      ++result.spammers_detected;
      ttd_sum += static_cast<std::uint64_t>(result.time_to_detection[f]);
      harm_sum += result.harm_before_detection[f];
    } else {
      // Never flagged: the full campaign landed.
      result.harm_before_detection[f] = accepted[f];
      harm_sum += accepted[f];
    }
  }
  result.mean_time_to_detection =
      result.spammers_detected == 0
          ? 0.0
          : static_cast<double>(ttd_sum) /
                static_cast<double>(result.spammers_detected);
  result.mean_harm_before_detection =
      result.spammers_total == 0
          ? 0.0
          : static_cast<double>(harm_sum) /
                static_cast<double>(result.spammers_total);
  return result;
}

}  // namespace rejecto::study
