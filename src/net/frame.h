// Wire frame codec for the distributed engine (RJNET001).
//
// Every master<->worker exchange — batched adjacency fetches, shard
// partition pushes, control traffic — travels as length-prefixed,
// CRC32C-checked frames so the receiving end can always tell a torn or
// corrupted frame from a valid one, byte-exactly, on both the in-process
// simulated network and the real socket backend:
//
//   frame   := magic "RJNET001" ++ len:u32le ++ crc:u32le ++ payload[len]
//   payload := type:u8 ++ request_id:u64le ++ body[len-9]
//
// `crc` is CRC32C of the payload. `request_id` is assigned by the master
// and echoed by the worker's response, which is what makes retries
// idempotent: a duplicated or straggling response is discarded on id
// mismatch instead of being misattributed to a later request.
//
// Decode invariants (pinned by net_frame_test's every-byte truncation and
// single-byte corruption sweeps, mirroring wal_test):
//   * Decoding NEVER crashes or reads past the input, whatever the bytes.
//   * A truncated stream yields exactly the prefix of intact frames plus a
//     kNeedMore tail; a corrupted stream stops at the first bad frame and
//     reports its stream offset and a human-readable reason.
//   * No single-byte corruption can be decoded as a different valid frame
//     (the magic check, length bound, and payload CRC close every hole).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace rejecto::net {

inline constexpr unsigned char kFrameMagic[8] = {'R', 'J', 'N', 'E',
                                                 'T', '0', '0', '1'};
inline constexpr std::size_t kFrameHeaderBytes = 16;  // magic + len + crc
// One frame carries at most one shard partition push; 256 MiB bounds a
// corrupt length field long before a resize can take the process down.
inline constexpr std::uint32_t kMaxFramePayload = 256u << 20;
inline constexpr std::size_t kMinPayloadBytes = 9;  // type + request_id

enum class MsgType : std::uint8_t {
  kHello = 1,          // worker -> master: protocol version + worker index
  kFetchRequest = 2,   // master -> worker: batched adjacency fetch
  kFetchResponse = 3,  // worker -> master: the requested rows
  kBuildShard = 4,     // master -> worker: push a store's shard partition
  kBuildAck = 5,       // worker -> master: partition installed
  kError = 6,          // either direction: code + message
  kShutdown = 7,       // master -> worker: drain and exit
};

const char* MsgTypeName(MsgType type) noexcept;
bool IsValidMsgType(std::uint8_t raw) noexcept;

struct Message {
  MsgType type = MsgType::kError;
  std::uint64_t request_id = 0;
  std::vector<unsigned char> body;
};

// Little-endian bounds-checked byte codec for message bodies (the net-layer
// sibling of stream::ByteWriter, kept here so rejecto_net depends only on
// rejecto_util).
struct WireWriter {
  std::vector<unsigned char> buf;

  void PutU8(std::uint8_t v) { buf.push_back(v); }
  void PutU32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xff));
    }
  }
  void PutU64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xff));
    }
  }
  void PutString(std::string_view s);
};

// Throws std::runtime_error on reads past the end: a malformed body that
// slipped past the frame CRC can never read uninitialized memory.
class WireReader {
 public:
  WireReader(const unsigned char* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit WireReader(std::span<const unsigned char> bytes)
      : WireReader(bytes.data(), bytes.size()) {}

  std::uint8_t GetU8();
  std::uint32_t GetU32();
  std::uint64_t GetU64();
  std::string GetString();
  std::size_t Remaining() const noexcept { return size_ - pos_; }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// Appends the encoded frame for `m` to `out` and returns the frame's size
// in bytes. Throws std::invalid_argument when the body exceeds
// kMaxFramePayload (nothing legitimate comes close).
std::size_t EncodeFrame(const Message& m, std::vector<unsigned char>& out);

enum class DecodeStatus : std::uint8_t {
  kFrame,     // one intact frame decoded
  kNeedMore,  // the buffered bytes end mid-frame; feed more
  kCorrupt,   // the stream is poisoned at `offset` for `reason`
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMore;
  Message message;            // kFrame only
  std::uint64_t offset = 0;   // stream offset of the frame this refers to
  std::string reason;         // kCorrupt only
};

// Incremental frame parser over a byte stream (a socket, or a simulated
// link's delivery buffer). Feed bytes as they arrive; Next() pops intact
// frames until the buffer runs dry (kNeedMore) or turns out to be poisoned
// (kCorrupt — sticky: a framed stream cannot be resynchronized after a bad
// length, so the connection must be torn down and rebuilt).
class FrameDecoder {
 public:
  void Feed(const unsigned char* data, std::size_t len);
  void Feed(std::span<const unsigned char> bytes) {
    Feed(bytes.data(), bytes.size());
  }

  DecodeResult Next();

  // Stream offset of the first byte not yet consumed by a decoded frame.
  std::uint64_t StreamOffset() const noexcept { return base_offset_ + pos_; }
  std::size_t BufferedBytes() const noexcept { return buf_.size() - pos_; }
  bool Poisoned() const noexcept { return poisoned_; }

  // Drops buffered bytes and the poison flag (used after a reconnect; the
  // stream offset keeps counting so diagnostics stay monotonic).
  void Reset();

 private:
  std::vector<unsigned char> buf_;
  std::size_t pos_ = 0;          // consumed prefix of buf_
  std::uint64_t base_offset_ = 0;  // stream offset of buf_[0]
  bool poisoned_ = false;
  std::string poison_reason_;
  std::uint64_t poison_offset_ = 0;
};

// One-shot decode of a complete byte stream (the codec-hardening test's
// entry point). `clean` is true iff every byte was consumed by an intact
// frame; otherwise `error_offset`/`reason` name the first torn or corrupt
// frame, and `frames` holds the intact prefix.
struct StreamDecodeResult {
  std::vector<Message> frames;
  bool clean = true;
  std::uint64_t error_offset = 0;
  std::string reason;
};

StreamDecodeResult DecodeAll(std::span<const unsigned char> bytes);

}  // namespace rejecto::net
