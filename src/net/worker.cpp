#include "net/worker.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace rejecto::net {
namespace {

bool WriteAll(int fd, const unsigned char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

FrameServer::FrameServer(const std::string& endpoint, Handler handler,
                         WorkerOptions options)
    : endpoint_(ParseEndpoint(endpoint)),
      handler_(std::move(handler)),
      options_(options) {
  if (endpoint_.kind == Endpoint::Kind::kUnix) {
    ::unlink(endpoint_.path.c_str());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint_.path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("FrameServer: unix path too long: " +
                               endpoint_.path);
    }
    std::memcpy(addr.sun_path, endpoint_.path.c_str(),
                endpoint_.path.size() + 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0 ||
        ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 1) != 0) {
      throw std::runtime_error("FrameServer: cannot bind '" + endpoint +
                               "': " + std::strerror(errno));
    }
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(endpoint_.port);
    if (::inet_pton(AF_INET, endpoint_.host.c_str(), &addr.sin_addr) != 1) {
      throw std::runtime_error("FrameServer: bad tcp host in '" + endpoint +
                               "'");
    }
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    const int one = 1;
    if (listen_fd_ >= 0) {
      ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    }
    if (listen_fd_ < 0 ||
        ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 1) != 0) {
      throw std::runtime_error("FrameServer: cannot bind '" + endpoint +
                               "': " + std::strerror(errno));
    }
  }
}

FrameServer::~FrameServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (endpoint_.kind == Endpoint::Kind::kUnix) {
    ::unlink(endpoint_.path.c_str());
  }
}

int FrameServer::ServeConnection(int fd) {
  FrameDecoder decoder;
  unsigned char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) return 0;  // master hung up; go back to accept
    if (n < 0) {
      if (errno == EINTR) continue;
      return 0;
    }
    decoder.Feed(buf, static_cast<std::size_t>(n));
    for (;;) {
      DecodeResult r = decoder.Next();
      if (r.status == DecodeStatus::kNeedMore) break;
      if (r.status == DecodeStatus::kCorrupt) {
        // The stream is poisoned at r.offset; drop the connection and let
        // the master reconnect with a fresh one.
        ++stats_.corrupt_streams;
        if (options_.verbose) {
          std::fprintf(stderr,
                       "[worker] corrupt stream at offset %llu: %s\n",
                       static_cast<unsigned long long>(r.offset),
                       r.reason.c_str());
        }
        return 0;
      }
      if (r.message.type == MsgType::kShutdown) return 1;
      Message reply = handler_(r.message);
      reply.request_id = r.message.request_id;  // idempotency anchor
      std::vector<unsigned char> frame;
      EncodeFrame(reply, frame);
      if (!WriteAll(fd, frame.data(), frame.size())) return 0;
      ++stats_.frames_served;
      if (options_.die_after_frames != 0 &&
          stats_.frames_served >= options_.die_after_frames) {
        if (options_.verbose) {
          std::fprintf(stderr, "[worker] dying after %llu frames\n",
                       static_cast<unsigned long long>(stats_.frames_served));
        }
        std::_Exit(137);  // crash injection: as abrupt as SIGKILL
      }
    }
  }
}

int FrameServer::Run() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return 1;
    }
    if (endpoint_.kind == Endpoint::Kind::kTcp) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    ++stats_.accepts;
    if (options_.verbose) {
      std::fprintf(stderr, "[worker] master connected (accept #%llu)\n",
                   static_cast<unsigned long long>(stats_.accepts));
    }
    const int done = ServeConnection(fd);
    ::close(fd);
    if (done == 1) {
      if (options_.verbose) std::fprintf(stderr, "[worker] shutdown\n");
      return 0;
    }
  }
}

}  // namespace rejecto::net
