#include "net/frame.h"

#include <cstring>
#include <stdexcept>

#include "util/crc32c.h"

namespace rejecto::net {
namespace {

std::uint32_t ReadU32Le(const unsigned char* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t ReadU64Le(const unsigned char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

const char* MsgTypeName(MsgType type) noexcept {
  switch (type) {
    case MsgType::kHello: return "hello";
    case MsgType::kFetchRequest: return "fetch_request";
    case MsgType::kFetchResponse: return "fetch_response";
    case MsgType::kBuildShard: return "build_shard";
    case MsgType::kBuildAck: return "build_ack";
    case MsgType::kError: return "error";
    case MsgType::kShutdown: return "shutdown";
  }
  return "unknown";
}

bool IsValidMsgType(std::uint8_t raw) noexcept {
  return raw >= static_cast<std::uint8_t>(MsgType::kHello) &&
         raw <= static_cast<std::uint8_t>(MsgType::kShutdown);
}

void WireWriter::PutString(std::string_view s) {
  PutU32(static_cast<std::uint32_t>(s.size()));
  buf.insert(buf.end(), s.begin(), s.end());
}

std::uint8_t WireReader::GetU8() {
  if (Remaining() < 1) {
    throw std::runtime_error("net::WireReader: read past end of body");
  }
  return data_[pos_++];
}

std::uint32_t WireReader::GetU32() {
  if (Remaining() < 4) {
    throw std::runtime_error("net::WireReader: read past end of body");
  }
  const std::uint32_t v = ReadU32Le(data_ + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::GetU64() {
  if (Remaining() < 8) {
    throw std::runtime_error("net::WireReader: read past end of body");
  }
  const std::uint64_t v = ReadU64Le(data_ + pos_);
  pos_ += 8;
  return v;
}

std::string WireReader::GetString() {
  const std::uint32_t len = GetU32();
  if (Remaining() < len) {
    throw std::runtime_error("net::WireReader: string past end of body");
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

std::size_t EncodeFrame(const Message& m, std::vector<unsigned char>& out) {
  const std::uint64_t payload_len = kMinPayloadBytes + m.body.size();
  if (payload_len > kMaxFramePayload) {
    throw std::invalid_argument("net::EncodeFrame: body of " +
                                std::to_string(m.body.size()) +
                                " bytes exceeds the frame payload limit");
  }
  const std::size_t start = out.size();
  out.insert(out.end(), kFrameMagic, kFrameMagic + sizeof(kFrameMagic));
  // len and crc patched below once the payload is in place.
  for (int i = 0; i < 8; ++i) out.push_back(0);
  const std::size_t payload_start = out.size();
  out.push_back(static_cast<unsigned char>(m.type));
  for (int i = 0; i < 8; ++i) {
    out.push_back(
        static_cast<unsigned char>((m.request_id >> (8 * i)) & 0xff));
  }
  out.insert(out.end(), m.body.begin(), m.body.end());

  const auto len = static_cast<std::uint32_t>(payload_len);
  const std::uint32_t crc =
      util::Crc32c(out.data() + payload_start, payload_len);
  for (int i = 0; i < 4; ++i) {
    out[start + 8 + i] = static_cast<unsigned char>((len >> (8 * i)) & 0xff);
    out[start + 12 + i] = static_cast<unsigned char>((crc >> (8 * i)) & 0xff);
  }
  return out.size() - start;
}

void FrameDecoder::Feed(const unsigned char* data, std::size_t len) {
  if (len == 0) return;
  // Compact the consumed prefix before growing (bounded steady-state size).
  if (pos_ > 0 && pos_ == buf_.size()) {
    base_offset_ += pos_;
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    base_offset_ += pos_;
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
}

DecodeResult FrameDecoder::Next() {
  DecodeResult r;
  r.offset = base_offset_ + pos_;
  if (poisoned_) {
    r.status = DecodeStatus::kCorrupt;
    r.offset = poison_offset_;
    r.reason = poison_reason_;
    return r;
  }
  const std::size_t avail = buf_.size() - pos_;
  auto poison = [&](const std::string& reason) {
    poisoned_ = true;
    poison_offset_ = r.offset;
    poison_reason_ = reason;
    r.status = DecodeStatus::kCorrupt;
    r.reason = reason;
    return r;
  };

  if (avail < kFrameHeaderBytes) {
    r.status = DecodeStatus::kNeedMore;
    return r;
  }
  const unsigned char* p = buf_.data() + pos_;
  if (std::memcmp(p, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return poison("bad frame magic (expected RJNET001)");
  }
  const std::uint32_t len = ReadU32Le(p + 8);
  if (len < kMinPayloadBytes) {
    return poison("frame payload length " + std::to_string(len) +
                  " below the " + std::to_string(kMinPayloadBytes) +
                  "-byte message header");
  }
  if (len > kMaxFramePayload) {
    return poison("frame payload length " + std::to_string(len) +
                  " exceeds the " + std::to_string(kMaxFramePayload) +
                  "-byte limit");
  }
  if (avail < kFrameHeaderBytes + len) {
    r.status = DecodeStatus::kNeedMore;
    return r;
  }
  const std::uint32_t want_crc = ReadU32Le(p + 12);
  const unsigned char* payload = p + kFrameHeaderBytes;
  const std::uint32_t got_crc = util::Crc32c(payload, len);
  if (got_crc != want_crc) {
    return poison("payload CRC mismatch");
  }
  if (!IsValidMsgType(payload[0])) {
    return poison("unknown message type " + std::to_string(payload[0]));
  }
  r.status = DecodeStatus::kFrame;
  r.message.type = static_cast<MsgType>(payload[0]);
  r.message.request_id = ReadU64Le(payload + 1);
  r.message.body.assign(payload + kMinPayloadBytes, payload + len);
  pos_ += kFrameHeaderBytes + len;
  return r;
}

void FrameDecoder::Reset() {
  base_offset_ += buf_.size();
  buf_.clear();
  pos_ = 0;
  poisoned_ = false;
  poison_reason_.clear();
  poison_offset_ = 0;
}

StreamDecodeResult DecodeAll(std::span<const unsigned char> bytes) {
  StreamDecodeResult out;
  FrameDecoder dec;
  dec.Feed(bytes);
  for (;;) {
    DecodeResult r = dec.Next();
    if (r.status == DecodeStatus::kFrame) {
      out.frames.push_back(std::move(r.message));
      continue;
    }
    if (r.status == DecodeStatus::kCorrupt) {
      out.clean = false;
      out.error_offset = r.offset;
      out.reason = r.reason;
      return out;
    }
    // kNeedMore at end-of-input: clean iff nothing is left buffered.
    if (dec.BufferedBytes() != 0) {
      out.clean = false;
      out.error_offset = r.offset;
      out.reason = "truncated frame (" +
                   std::to_string(dec.BufferedBytes()) +
                   " trailing bytes end mid-frame)";
    }
    return out;
  }
}

}  // namespace rejecto::net
