#include "net/sim_net.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>

#include "util/crc32c.h"
#include "util/failpoint.h"

namespace rejecto::net {
namespace {

// One frame copy in flight, with its own arrival time and (possibly
// corrupted) bytes.
struct InFlight {
  double arrive_us;
  std::size_t order;  // insertion index: ties in arrival time keep order
  std::vector<unsigned char> bytes;
  bool corrupted;
};

bool ArrivesBefore(const InFlight& a, const InFlight& b) {
  if (a.arrive_us != b.arrive_us) return a.arrive_us < b.arrive_us;
  return a.order < b.order;
}

}  // namespace

SimNetwork::SimNetwork(const SimNetConfig& config)
    : bandwidth_gbps_(config.bandwidth_gbps),
      record_trace_(config.record_trace) {
  if (config.num_peers == 0) {
    throw std::invalid_argument("SimNetwork: num_peers must be >= 1");
  }
  if (config.bandwidth_gbps <= 0.0) {
    throw std::invalid_argument("SimNetwork: bandwidth_gbps must be > 0");
  }
  links_.reserve(config.num_peers);
  for (std::uint32_t p = 0; p < config.num_peers; ++p) {
    // Independent per-link stream derived from the root seed; splitmix
    // inside Rng's constructor decorrelates consecutive seeds.
    links_.push_back(Link{config.default_link,
                          util::Rng(config.seed * 0x9e3779b97f4a7c15ULL +
                                    0x100000001ULL * (p + 1)),
                          nullptr});
  }
  for (const auto& [peer, faults] : config.link_overrides) {
    if (peer >= links_.size()) {
      throw std::invalid_argument(
          "SimNetwork: link override for peer " + std::to_string(peer) +
          " out of range (num_peers " + std::to_string(links_.size()) + ")");
    }
    links_[peer].faults = faults;
  }
}

void SimNetwork::SetHandler(std::uint32_t peer, Handler handler) {
  if (peer >= links_.size()) {
    throw std::out_of_range("SimNetwork::SetHandler: peer index");
  }
  links_[peer].handler = std::move(handler);
}

bool SimNetwork::PeerConnected(std::uint32_t peer) const noexcept {
  return peer < links_.size() && links_[peer].handler != nullptr;
}

void SimNetwork::Partition(std::uint32_t peer, bool partitioned) {
  if (peer >= links_.size()) {
    throw std::out_of_range("SimNetwork::Partition: peer index");
  }
  links_[peer].faults.partitioned = partitioned;
}

bool SimNetwork::Partitioned(std::uint32_t peer) const {
  if (peer >= links_.size()) {
    throw std::out_of_range("SimNetwork::Partitioned: peer index");
  }
  return links_[peer].faults.partitioned;
}

double SimNetwork::SerializationUs(std::uint64_t bytes) const noexcept {
  return static_cast<double>(bytes) * 8.0 / (bandwidth_gbps_ * 1e3);
}

void SimNetwork::Record(TraceEvent::Kind kind, std::uint32_t peer,
                        std::uint64_t request_id, double vtime_us,
                        std::uint64_t bytes) {
  ++trace_events_;
  unsigned char packed[1 + 4 + 8 + 8 + 8];
  packed[0] = static_cast<unsigned char>(kind);
  for (int i = 0; i < 4; ++i) packed[1 + i] = (peer >> (8 * i)) & 0xff;
  for (int i = 0; i < 8; ++i) {
    packed[5 + i] = (request_id >> (8 * i)) & 0xff;
  }
  const auto tbits = std::bit_cast<std::uint64_t>(vtime_us);
  for (int i = 0; i < 8; ++i) packed[13 + i] = (tbits >> (8 * i)) & 0xff;
  for (int i = 0; i < 8; ++i) packed[21 + i] = (bytes >> (8 * i)) & 0xff;
  trace_hash_ = util::Crc32c(packed, sizeof(packed),
                             static_cast<std::uint32_t>(trace_hash_)) |
                (trace_events_ << 32);
  if (record_trace_) {
    trace_.push_back(TraceEvent{kind, peer, request_id, vtime_us, bytes});
  }
}

CallStatus SimNetwork::Call(std::uint32_t peer, const Message& request,
                            Message* response, double timeout_us,
                            double* elapsed_us) {
  if (elapsed_us != nullptr) *elapsed_us = 0.0;
  if (peer >= links_.size()) {
    throw std::out_of_range("SimNetwork::Call: peer index");
  }
  Link& link = links_[peer];
  if (link.handler == nullptr) return CallStatus::kPeerDead;

  util::Failpoints& fp = util::Failpoints::Instance();
  const double start_us = now_us_;
  const double deadline_us = start_us + timeout_us;

  std::vector<unsigned char> req_frame;
  EncodeFrame(request, req_frame);
  ++stats_.frames_sent;
  stats_.bytes_sent += req_frame.size();
  Record(TraceEvent::Kind::kSend, peer, request.request_id, start_us,
         req_frame.size());

  // A link transfer: draws drop/dup once, then per surviving copy jitter,
  // reorder, and corruption. Draw counts depend only on the fault matrix
  // and outcomes of earlier draws, never on wall-clock state — that is the
  // replayability invariant.
  auto transfer = [&](const std::vector<unsigned char>& frame,
                      double depart_us, bool inject_lost,
                      std::vector<InFlight>& out) {
    if (link.faults.partitioned || inject_lost) {
      ++stats_.dropped_frames;
      Record(TraceEvent::Kind::kDrop, peer, request.request_id, depart_us,
             frame.size());
      return;
    }
    const bool dropped = link.rng.NextBool(link.faults.drop_p);
    const bool duplicated = link.rng.NextBool(link.faults.dup_p);
    if (dropped) {
      ++stats_.dropped_frames;
      Record(TraceEvent::Kind::kDrop, peer, request.request_id, depart_us,
             frame.size());
      return;
    }
    const int copies = duplicated ? 2 : 1;
    if (duplicated) {
      Record(TraceEvent::Kind::kDuplicate, peer, request.request_id,
             depart_us, frame.size());
    }
    for (int c = 0; c < copies; ++c) {
      double t = depart_us + SerializationUs(frame.size()) +
                 link.faults.delay_us;
      if (link.faults.jitter_us > 0.0) {
        t += link.rng.NextDouble(0.0, link.faults.jitter_us);
      }
      if (link.faults.reorder_p > 0.0 &&
          link.rng.NextBool(link.faults.reorder_p)) {
        t += link.faults.reorder_extra_us;
      }
      InFlight f{t, out.size(), frame, false};
      bool corrupt = link.faults.corrupt_p > 0.0 &&
                     link.rng.NextBool(link.faults.corrupt_p);
      if (fp.ShouldFail("net/corrupt_frame")) corrupt = true;
      if (corrupt && !f.bytes.empty()) {
        const auto pos = static_cast<std::size_t>(
            link.rng.NextUInt(f.bytes.size()));
        f.bytes[pos] ^= 0x40;
        f.corrupted = true;
      }
      out.push_back(std::move(f));
    }
  };

  std::vector<InFlight> to_worker;
  transfer(req_frame, start_us, fp.ShouldFail("net/send_frame"), to_worker);
  std::sort(to_worker.begin(), to_worker.end(), ArrivesBefore);

  // Worker end: decode each arriving copy; intact ones are served and the
  // responses travel back through the same faulty link.
  std::vector<InFlight> to_master;
  for (const InFlight& f : to_worker) {
    if (f.arrive_us > deadline_us) {
      Record(TraceEvent::Kind::kLate, peer, request.request_id, f.arrive_us,
             f.bytes.size());
      continue;
    }
    FrameDecoder dec;
    dec.Feed(f.bytes.data(), f.bytes.size());
    DecodeResult r = dec.Next();
    if (r.status != DecodeStatus::kFrame) {
      ++stats_.corrupt_frames;
      Record(TraceEvent::Kind::kCorrupt, peer, request.request_id,
             f.arrive_us, f.bytes.size());
      continue;
    }
    Record(TraceEvent::Kind::kDeliver, peer, request.request_id, f.arrive_us,
           f.bytes.size());
    Message reply = link.handler(r.message);
    std::vector<unsigned char> resp_frame;
    EncodeFrame(reply, resp_frame);
    Record(TraceEvent::Kind::kReply, peer, reply.request_id, f.arrive_us,
           resp_frame.size());
    transfer(resp_frame, f.arrive_us, false, to_master);
  }
  std::sort(to_master.begin(), to_master.end(), ArrivesBefore);

  // Master end: the first intact response whose request id matches wins;
  // duplicates and stragglers are discarded by the id check.
  for (const InFlight& f : to_master) {
    if (f.arrive_us > deadline_us) {
      Record(TraceEvent::Kind::kLate, peer, request.request_id, f.arrive_us,
             f.bytes.size());
      continue;
    }
    if (fp.ShouldFail("net/recv_frame")) {
      ++stats_.dropped_frames;
      Record(TraceEvent::Kind::kDrop, peer, request.request_id, f.arrive_us,
             f.bytes.size());
      continue;
    }
    FrameDecoder dec;
    dec.Feed(f.bytes.data(), f.bytes.size());
    DecodeResult r = dec.Next();
    if (r.status != DecodeStatus::kFrame) {
      ++stats_.corrupt_frames;
      Record(TraceEvent::Kind::kCorrupt, peer, request.request_id,
             f.arrive_us, f.bytes.size());
      continue;
    }
    ++stats_.frames_received;
    stats_.bytes_received += f.bytes.size();
    Record(TraceEvent::Kind::kReceive, peer, r.message.request_id,
           f.arrive_us, f.bytes.size());
    if (r.message.request_id != request.request_id) continue;  // straggler
    now_us_ = std::max(now_us_, f.arrive_us);
    const double elapsed = now_us_ - start_us;
    stats_.busy_us += elapsed;
    if (elapsed_us != nullptr) *elapsed_us = elapsed;
    if (response != nullptr) *response = std::move(r.message);
    return CallStatus::kOk;
  }

  // Nothing intact arrived in time: the master waited out the deadline.
  now_us_ = deadline_us;
  ++stats_.timeouts;
  stats_.busy_us += timeout_us;
  Record(TraceEvent::Kind::kTimeout, peer, request.request_id, deadline_us,
         0);
  if (elapsed_us != nullptr) *elapsed_us = timeout_us;
  return CallStatus::kTimeout;
}

}  // namespace rejecto::net
