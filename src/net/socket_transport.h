// Real socket backend (net::Transport): a master process exchanging
// RJNET001 frames with N worker processes over localhost TCP or
// UNIX-domain stream sockets.
//
// Endpoints are strings: "unix:/path/to.sock", "tcp:127.0.0.1:7001", or a
// bare path (treated as unix). The master connects eagerly at construction
// (with a bounded retry loop so workers may still be starting), then each
// Call writes one request frame and polls for the response frame whose
// request id matches, discarding stragglers from earlier timed-out
// attempts. A broken connection (worker crashed, stream poisoned by a
// corrupt frame) triggers one reconnect-and-resend per Call; when the peer
// cannot be re-reached, Call reports kPeerDead and the engine's failover
// machinery rebuilds the shard from lineage — detection continues
// bit-identical to the failure-free run.
//
// Failpoint sites: "net/send_frame" (the write is skipped, the frame is
// "lost on the wire" and the call times out), "net/recv_frame" (a received
// frame is discarded), "net/corrupt_frame" (one received byte is flipped
// before decoding — exercising the CRC reject + reconnect path on a real
// stream). Master-thread only, like every Transport.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/transport.h"

namespace rejecto::net {

struct Endpoint {
  enum class Kind : std::uint8_t { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;        // kUnix
  std::string host;        // kTcp
  std::uint16_t port = 0;  // kTcp
};

// Parses an endpoint string; throws std::invalid_argument naming the
// offending value on anything malformed.
Endpoint ParseEndpoint(const std::string& text);

struct SocketConfig {
  std::vector<std::string> endpoints;  // one per worker, in shard order
  // Initial-connect retry loop (covers the worker-startup race).
  std::uint32_t connect_attempts = 100;
  double connect_retry_delay_us = 50'000.0;
  // Reconnect attempts when a live connection breaks mid-run (a crashed
  // worker stays dead; a blipped one comes back).
  std::uint32_t reconnect_attempts = 2;
};

class SocketTransport final : public Transport {
 public:
  // Connects to every endpoint; throws std::runtime_error when a peer
  // cannot be reached within the connect budget.
  explicit SocketTransport(const SocketConfig& config);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  std::uint32_t NumPeers() const noexcept override {
    return static_cast<std::uint32_t>(peers_.size());
  }

  CallStatus Call(std::uint32_t peer, const Message& request,
                  Message* response, double timeout_us,
                  double* elapsed_us) override;

  bool PeerConnected(std::uint32_t peer) const noexcept override;

  // Best-effort shutdown frame to every live peer (workers drain and
  // exit); connections are closed either way.
  void ShutdownPeers();

 private:
  struct Peer {
    Endpoint endpoint;
    int fd = -1;
    FrameDecoder decoder;
  };

  bool ConnectPeer(std::uint32_t index, std::uint32_t attempts,
                   double retry_delay_us);
  void ClosePeer(std::uint32_t index);
  // One write + read-until-matching-response exchange on the live
  // connection; false means the connection broke (caller may reconnect).
  CallStatus Exchange(Peer& peer, const Message& request, Message* response,
                      double timeout_us);

  std::vector<Peer> peers_;
  SocketConfig config_;
};

}  // namespace rejecto::net
