#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "util/failpoint.h"

namespace rejecto::net {
namespace {

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int OpenAndConnect(const Endpoint& ep) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (ep.path.size() >= sizeof(addr.sun_path)) return -1;
    std::memcpy(addr.sun_path, ep.path.c_str(), ep.path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Writes the whole buffer; false on any unrecoverable error (EPIPE when
// the worker died, etc.).
bool WriteAll(int fd, const unsigned char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Endpoint ParseEndpoint(const std::string& text) {
  if (text.empty()) {
    throw std::invalid_argument("net::ParseEndpoint: empty endpoint");
  }
  Endpoint ep;
  if (text.rfind("tcp:", 0) == 0) {
    const std::string rest = text.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      throw std::invalid_argument(
          "net::ParseEndpoint: malformed tcp endpoint '" + text +
          "' (expected tcp:host:port)");
    }
    ep.kind = Endpoint::Kind::kTcp;
    ep.host = rest.substr(0, colon);
    const std::string port_text = rest.substr(colon + 1);
    int port = 0;
    for (char c : port_text) {
      if (c < '0' || c > '9') {
        throw std::invalid_argument(
            "net::ParseEndpoint: malformed port in '" + text + "'");
      }
      port = port * 10 + (c - '0');
      if (port > 65535) {
        throw std::invalid_argument(
            "net::ParseEndpoint: port out of range in '" + text + "'");
      }
    }
    if (port == 0) {
      throw std::invalid_argument("net::ParseEndpoint: port 0 in '" + text +
                                  "'");
    }
    ep.port = static_cast<std::uint16_t>(port);
    return ep;
  }
  ep.kind = Endpoint::Kind::kUnix;
  ep.path = text.rfind("unix:", 0) == 0 ? text.substr(5) : text;
  if (ep.path.empty()) {
    throw std::invalid_argument("net::ParseEndpoint: empty unix path in '" +
                                text + "'");
  }
  return ep;
}

SocketTransport::SocketTransport(const SocketConfig& config)
    : config_(config) {
  if (config.endpoints.empty()) {
    throw std::invalid_argument(
        "SocketTransport: at least one worker endpoint is required");
  }
  peers_.resize(config.endpoints.size());
  for (std::size_t i = 0; i < config.endpoints.size(); ++i) {
    peers_[i].endpoint = ParseEndpoint(config.endpoints[i]);
    if (!ConnectPeer(static_cast<std::uint32_t>(i), config.connect_attempts,
                     config.connect_retry_delay_us)) {
      throw std::runtime_error("SocketTransport: cannot connect to worker " +
                               std::to_string(i) + " at '" +
                               config.endpoints[i] + "'");
    }
  }
}

SocketTransport::~SocketTransport() {
  for (std::uint32_t i = 0; i < NumPeers(); ++i) ClosePeer(i);
}

bool SocketTransport::PeerConnected(std::uint32_t peer) const noexcept {
  return peer < peers_.size() && peers_[peer].fd >= 0;
}

bool SocketTransport::ConnectPeer(std::uint32_t index,
                                  std::uint32_t attempts,
                                  double retry_delay_us) {
  Peer& peer = peers_[index];
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ::usleep(static_cast<useconds_t>(retry_delay_us));
    }
    const int fd = OpenAndConnect(peer.endpoint);
    if (fd >= 0) {
      peer.fd = fd;
      peer.decoder.Reset();
      return true;
    }
  }
  return false;
}

void SocketTransport::ClosePeer(std::uint32_t index) {
  Peer& peer = peers_[index];
  if (peer.fd >= 0) {
    ::close(peer.fd);
    peer.fd = -1;
  }
  peer.decoder.Reset();
}

CallStatus SocketTransport::Exchange(Peer& peer, const Message& request,
                                     Message* response, double timeout_us) {
  util::Failpoints& fp = util::Failpoints::Instance();
  std::vector<unsigned char> frame;
  EncodeFrame(request, frame);
  if (fp.ShouldFail("net/send_frame")) {
    // The frame is "lost on the wire": never written, so the poll below
    // runs out the deadline — the timeout path of a real lossy link.
    ++stats_.dropped_frames;
  } else {
    if (!WriteAll(peer.fd, frame.data(), frame.size())) {
      return CallStatus::kError;  // connection broke mid-write
    }
    ++stats_.frames_sent;
    stats_.bytes_sent += frame.size();
  }

  const double deadline_us = NowUs() + timeout_us;
  unsigned char buf[64 * 1024];
  for (;;) {
    // Drain whatever is already buffered before touching the socket.
    for (;;) {
      DecodeResult r = peer.decoder.Next();
      if (r.status == DecodeStatus::kNeedMore) break;
      if (r.status == DecodeStatus::kCorrupt) {
        // A framed stream cannot resync after corruption: poison the
        // connection and let the caller reconnect.
        ++stats_.corrupt_frames;
        return CallStatus::kError;
      }
      ++stats_.frames_received;
      if (fp.ShouldFail("net/recv_frame")) {
        ++stats_.dropped_frames;
        continue;
      }
      if (r.message.request_id != request.request_id) continue;  // straggler
      if (response != nullptr) *response = std::move(r.message);
      return CallStatus::kOk;
    }

    const double remaining_us = deadline_us - NowUs();
    if (remaining_us <= 0.0) {
      ++stats_.timeouts;
      return CallStatus::kTimeout;
    }
    pollfd pfd{peer.fd, POLLIN, 0};
    const int timeout_ms =
        static_cast<int>(remaining_us / 1000.0) + 1;  // ceil to >= 1ms
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return CallStatus::kError;
    }
    if (pr == 0) {
      ++stats_.timeouts;
      return CallStatus::kTimeout;
    }
    const ssize_t n = ::recv(peer.fd, buf, sizeof(buf), 0);
    if (n == 0) return CallStatus::kError;  // EOF: worker went away
    if (n < 0) {
      if (errno == EINTR) continue;
      return CallStatus::kError;
    }
    stats_.bytes_received += static_cast<std::uint64_t>(n);
    if (fp.ShouldFail("net/corrupt_frame")) {
      // Deterministic position from the site's fire count, so env-spec
      // driven corruption replays identically.
      const std::uint64_t fires =
          util::Failpoints::Instance().Fires("net/corrupt_frame");
      buf[(fires * 7919) % static_cast<std::uint64_t>(n)] ^= 0x40;
    }
    peer.decoder.Feed(buf, static_cast<std::size_t>(n));
  }
}

CallStatus SocketTransport::Call(std::uint32_t peer_index,
                                 const Message& request, Message* response,
                                 double timeout_us, double* elapsed_us) {
  if (peer_index >= peers_.size()) {
    throw std::out_of_range("SocketTransport::Call: peer index");
  }
  Peer& peer = peers_[peer_index];
  const double start_us = NowUs();
  auto finish = [&](CallStatus status) {
    const double elapsed = NowUs() - start_us;
    stats_.busy_us += elapsed;
    if (elapsed_us != nullptr) *elapsed_us = elapsed;
    return status;
  };

  // Up to one reconnect-and-resend per Call; persistent failure is the
  // caller's retry policy's problem, a vanished peer is failover's.
  for (int round = 0; round < 2; ++round) {
    if (peer.fd < 0) {
      ++stats_.reconnects;
      if (!ConnectPeer(peer_index, config_.reconnect_attempts,
                       config_.connect_retry_delay_us)) {
        return finish(CallStatus::kPeerDead);
      }
    }
    const CallStatus status = Exchange(peer, request, response, timeout_us);
    if (status != CallStatus::kError) return finish(status);
    ClosePeer(peer_index);  // broken stream; try once more on a fresh one
  }
  return finish(CallStatus::kPeerDead);
}

void SocketTransport::ShutdownPeers() {
  Message bye;
  bye.type = MsgType::kShutdown;
  for (std::uint32_t i = 0; i < NumPeers(); ++i) {
    Peer& peer = peers_[i];
    if (peer.fd < 0) continue;
    bye.request_id = NextRequestId();
    std::vector<unsigned char> frame;
    EncodeFrame(bye, frame);
    (void)WriteAll(peer.fd, frame.data(), frame.size());
    ClosePeer(i);
  }
}

}  // namespace rejecto::net
