#include "net/transport.h"

#include <stdexcept>
#include <string>

#include "util/flags.h"

namespace rejecto::net {

const char* CallStatusName(CallStatus status) noexcept {
  switch (status) {
    case CallStatus::kOk: return "ok";
    case CallStatus::kTimeout: return "timeout";
    case CallStatus::kPeerDead: return "peer_dead";
    case CallStatus::kError: return "error";
  }
  return "unknown";
}

void Transport::SetHandler(std::uint32_t /*peer*/, Handler /*handler*/) {}

const char* TransportKindName(TransportKind kind) noexcept {
  switch (kind) {
    case TransportKind::kLoopback: return "loopback";
    case TransportKind::kSimNet: return "simnet";
    case TransportKind::kSocket: return "socket";
  }
  return "unknown";
}

TransportKind ParseTransportKind(std::string_view text) {
  if (text == "loopback") return TransportKind::kLoopback;
  if (text == "simnet") return TransportKind::kSimNet;
  if (text == "socket") return TransportKind::kSocket;
  throw std::invalid_argument(
      "unknown transport '" + std::string(text) +
      "' (expected loopback, simnet, or socket)");
}

TransportKind TransportKindFromEnv() {
  const auto value = util::GetEnvString("REJECTO_TRANSPORT");
  if (!value || value->empty()) return TransportKind::kLoopback;
  return ParseTransportKind(*value);
}

}  // namespace rejecto::net
