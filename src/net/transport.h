// Master-side transport abstraction for the distributed engine.
//
// The engine (ShardedGraphStore, Cluster, the dist detectors) speaks one
// request/response interface; what actually carries the RJNET001 frames is
// a backend chosen per deployment (ClusterConfig::transport, or the
// REJECTO_TRANSPORT env knob):
//
//   loopback  the legacy in-process path — no frames, adjacency is read
//             directly from the shard arrays and metered by NetworkModel.
//             Not a Transport instance; Cluster::transport() is null.
//   simnet    net::SimNetwork — frames are byte-encoded and pushed through
//             a deterministic simulated network with per-link seeded
//             delay/drop/duplicate/corrupt/reorder/partition faults, so
//             every fault schedule is replayable byte-for-byte.
//   socket    net::SocketTransport — real localhost TCP or UNIX-domain
//             connections to worker *processes* (net::FrameServer +
//             engine::ShardWorker at the far end).
//
// Call() is master-thread only, like ShardedGraphStore::FetchBatch: all
// retry, backoff, and failover decisions stay on the master in
// deterministic shard order, which is what makes detection over any
// backend bit-identical to the single-process pipeline.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "net/frame.h"

namespace rejecto::net {

// Wire-level traffic counters, from the master's perspective. Embedded in
// engine::IoStats (the `wire` member) and summed field-wise so aggregation
// sites can't silently drop a counter.
struct TransportStats {
  std::uint64_t frames_sent = 0;      // master -> worker, intact on the wire
  std::uint64_t frames_received = 0;  // worker -> master, decoded intact
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t timeouts = 0;         // Call deadlines expired
  std::uint64_t reconnects = 0;       // socket: connections rebuilt
  std::uint64_t corrupt_frames = 0;   // frames discarded by CRC/decode
  std::uint64_t dropped_frames = 0;   // sim faults / failpoints ate a frame
  double busy_us = 0.0;               // time spent in Call (virtual for
                                      // simnet, wall-clock for socket)

  void Accumulate(const TransportStats& o) noexcept {
    frames_sent += o.frames_sent;
    frames_received += o.frames_received;
    bytes_sent += o.bytes_sent;
    bytes_received += o.bytes_received;
    timeouts += o.timeouts;
    reconnects += o.reconnects;
    corrupt_frames += o.corrupt_frames;
    dropped_frames += o.dropped_frames;
    busy_us += o.busy_us;
  }
};

enum class CallStatus : std::uint8_t {
  kOk,        // response decoded, request id matched
  kTimeout,   // no intact matching response before the deadline
  kPeerDead,  // the peer is unreachable and reconnecting failed
  kError,     // the exchange failed in a retryable way (poisoned stream)
};

const char* CallStatusName(CallStatus status) noexcept;

class Transport {
 public:
  // Serves one request at the peer end (in-process backends only). Must
  // echo the request's id into the response.
  using Handler = std::function<Message(const Message&)>;

  virtual ~Transport() = default;

  virtual std::uint32_t NumPeers() const noexcept = 0;

  // One request/response exchange with `peer`: encode, send, await the
  // response frame whose request id matches, up to `timeout_us`. Fills
  // `*elapsed_us` with the time the exchange consumed (virtual time for
  // the simulated backend, wall-clock for sockets) whether it succeeded or
  // not. Never throws for wire-level failures — those are statuses the
  // caller's retry/failover policy acts on. Master-thread only.
  virtual CallStatus Call(std::uint32_t peer, const Message& request,
                          Message* response, double timeout_us,
                          double* elapsed_us) = 0;

  // Installs the peer-side request handler (in-process backends). The
  // socket backend ignores this: its peers are real processes that serve
  // themselves. A null handler makes the peer unreachable (kPeerDead).
  virtual void SetHandler(std::uint32_t peer, Handler handler);

  // True when the peer can currently be reached without a reconnect.
  virtual bool PeerConnected(std::uint32_t peer) const noexcept {
    return peer < NumPeers();
  }

  // Monotonic request-id source; ids are process-unique so a response
  // straggling across retries can never match a later request.
  std::uint64_t NextRequestId() noexcept { return ++last_request_id_; }

  TransportStats& Stats() noexcept { return stats_; }
  const TransportStats& Stats() const noexcept { return stats_; }

 protected:
  TransportStats stats_;

 private:
  std::uint64_t last_request_id_ = 0;
};

enum class TransportKind : std::uint8_t { kLoopback, kSimNet, kSocket };

const char* TransportKindName(TransportKind kind) noexcept;

// Parses "loopback" / "simnet" / "socket"; throws std::invalid_argument on
// anything else, naming the offending value.
TransportKind ParseTransportKind(std::string_view text);

// REJECTO_TRANSPORT, defaulting to loopback.
TransportKind TransportKindFromEnv();

}  // namespace rejecto::net
