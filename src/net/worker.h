// Worker-process frame server: the far end of net::SocketTransport.
//
// A worker binds its endpoint, accepts the master's connection, and serves
// RJNET001 frames one at a time through an injected handler (for the
// distributed engine that handler is engine::ShardWorker::Serve). The
// server is deliberately single-threaded — requests on one connection are
// serial, which is all the master-driven engine ever issues — and treats a
// poisoned stream the way the master does: tear the connection down and
// re-accept, never guess at a resync.
//
// WorkerOptions::die_after_frames is the crash-injection hook for the
// multiprocess smoke tests: after serving that many frames the process
// calls _Exit(137), indistinguishable from SIGKILL to the master, which
// must reconnect-or-failover and stay bit-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/frame.h"
#include "net/socket_transport.h"

namespace rejecto::net {

struct WorkerOptions {
  // Hard-exit (_Exit(137)) after serving this many frames; 0 = never.
  std::uint64_t die_after_frames = 0;
  bool verbose = false;  // one stderr line per lifecycle event
};

struct WorkerStats {
  std::uint64_t frames_served = 0;
  std::uint64_t corrupt_streams = 0;  // connections torn down on bad frames
  std::uint64_t accepts = 0;
};

class FrameServer {
 public:
  using Handler = std::function<Message(const Message&)>;

  // Binds and listens immediately (an existing unix socket path is
  // unlinked first). Throws std::runtime_error when the endpoint cannot
  // be bound.
  FrameServer(const std::string& endpoint, Handler handler,
              WorkerOptions options = {});
  ~FrameServer();

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  // Accept-and-serve loop. Returns 0 when a kShutdown frame arrives; a
  // disconnected master is re-accepted (that is the reconnect path).
  int Run();

  const WorkerStats& Stats() const noexcept { return stats_; }

 private:
  int ServeConnection(int fd);  // 1 = shutdown seen, 0 = connection ended

  Endpoint endpoint_;
  Handler handler_;
  WorkerOptions options_;
  WorkerStats stats_;
  int listen_fd_ = -1;
};

}  // namespace rejecto::net
