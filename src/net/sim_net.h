// Deterministic simulated network backend (net::Transport).
//
// The master and its workers live in one process, but every exchange is
// byte-encoded into RJNET001 frames and pushed through a simulated network
// whose faults are drawn from per-link seeded xoshiro streams: base delay
// plus jitter, drop, duplicate, single-byte corruption, reorder penalties,
// and hard partitions, each per-link configurable (SimNetConfig). Given
// the same seed and fault matrix, every delivery, drop, and corruption —
// and therefore every retry, backoff, and failover the engine performs —
// replays byte-for-byte: the trace hash is the witness the determinism
// tests pin at 1/2/8 master threads.
//
// Time is virtual. A Call advances the master's virtual clock to the
// moment the first intact matching response lands (or to the deadline on
// timeout); elapsed virtual time feeds engine::IoStats the same way the
// loopback backend's NetworkModel metering does. All Calls run on the
// master thread, so the simulation needs no locks and the fault schedule
// cannot race.
//
// Failpoint sites (util/failpoint.h), evaluated on top of the fault
// matrix: "net/send_frame" (outbound frame lost), "net/recv_frame"
// (a response copy discarded on arrival), "net/corrupt_frame" (a delivered
// copy gets one byte flipped).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/transport.h"
#include "util/rng.h"

namespace rejecto::net {

// Fault and timing model of one master<->worker link (both directions draw
// from the same per-link stream).
struct LinkFaults {
  double delay_us = 50.0;         // base one-way propagation delay
  double jitter_us = 0.0;         // uniform [0, jitter_us) added per frame
  double drop_p = 0.0;            // frame lost
  double dup_p = 0.0;             // frame delivered twice
  double corrupt_p = 0.0;         // one byte flipped (CRC catches it)
  double reorder_p = 0.0;         // frame held back by reorder_extra_us
  double reorder_extra_us = 500.0;
  bool partitioned = false;       // link down: nothing gets through
};

struct SimNetConfig {
  std::uint32_t num_peers = 0;    // Cluster fills this from num_workers
  LinkFaults default_link;
  // Per-peer overrides of the default matrix row.
  std::vector<std::pair<std::uint32_t, LinkFaults>> link_overrides;
  std::uint64_t seed = 42;        // root of the per-link streams
  double bandwidth_gbps = 10.0;   // serialization time per frame byte
  bool record_trace = false;      // keep the full event list (tests)
};

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kSend = 1,      // master put a request frame on the wire
    kDeliver = 2,   // a request copy reached the worker intact
    kReply = 3,     // the worker put a response frame on the wire
    kReceive = 4,   // a response copy reached the master intact
    kDrop = 5,      // the fault matrix (or a failpoint) ate a frame
    kDuplicate = 6, // the link duplicated a frame
    kCorrupt = 7,   // a delivered copy failed CRC/decode and was discarded
    kLate = 8,      // a copy arrived after the call's deadline
    kTimeout = 9,   // the master gave up waiting
  };
  Kind kind;
  std::uint32_t peer;
  std::uint64_t request_id;
  double vtime_us;
  std::uint64_t bytes;
};

class SimNetwork final : public Transport {
 public:
  explicit SimNetwork(const SimNetConfig& config);

  std::uint32_t NumPeers() const noexcept override {
    return static_cast<std::uint32_t>(links_.size());
  }

  CallStatus Call(std::uint32_t peer, const Message& request,
                  Message* response, double timeout_us,
                  double* elapsed_us) override;

  void SetHandler(std::uint32_t peer, Handler handler) override;
  bool PeerConnected(std::uint32_t peer) const noexcept override;

  // Runtime partition control (heals or cuts the configured matrix entry).
  void Partition(std::uint32_t peer, bool partitioned);
  bool Partitioned(std::uint32_t peer) const;

  // Determinism witness: a CRC32C chained over every simulated event in
  // order. Two runs with the same seed + fault matrix + request sequence
  // produce the same hash regardless of master pool size.
  std::uint64_t TraceHash() const noexcept { return trace_hash_; }
  std::uint64_t NumTraceEvents() const noexcept { return trace_events_; }
  // Full event list; empty unless config.record_trace.
  const std::vector<TraceEvent>& Trace() const noexcept { return trace_; }

  double VirtualNowUs() const noexcept { return now_us_; }

 private:
  struct Link {
    LinkFaults faults;
    util::Rng rng;
    Handler handler;
  };

  void Record(TraceEvent::Kind kind, std::uint32_t peer,
              std::uint64_t request_id, double vtime_us, std::uint64_t bytes);
  double SerializationUs(std::uint64_t bytes) const noexcept;

  std::vector<Link> links_;
  double bandwidth_gbps_;
  double now_us_ = 0.0;
  bool record_trace_;
  std::vector<TraceEvent> trace_;
  std::uint64_t trace_events_ = 0;
  std::uint64_t trace_hash_ = 0;
};

}  // namespace rejecto::net
