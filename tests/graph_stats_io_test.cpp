#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/builder.h"
#include "gen/barabasi_albert.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "util/failpoint.h"

namespace rejecto::graph {
namespace {

SocialGraph Triangle() {
  GraphBuilder b(3);
  b.AddFriendship(0, 1);
  b.AddFriendship(1, 2);
  b.AddFriendship(0, 2);
  return b.BuildSocial();
}

SocialGraph Path(NodeId n) {
  GraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.AddFriendship(v, v + 1);
  return b.BuildSocial();
}

SocialGraph Star(NodeId leaves) {
  GraphBuilder b(leaves + 1);
  for (NodeId v = 1; v <= leaves; ++v) b.AddFriendship(0, v);
  return b.BuildSocial();
}

SocialGraph Clique(NodeId n) {
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) b.AddFriendship(u, v);
  }
  return b.BuildSocial();
}

// ---------- clustering coefficient ----------

TEST(ClusteringTest, TriangleIsOne) {
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(Triangle()), 1.0);
}

TEST(ClusteringTest, StarIsZero) {
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(Star(5)), 0.0);
}

TEST(ClusteringTest, CliqueIsOne) {
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(Clique(6)), 1.0);
}

TEST(ClusteringTest, PathIsZero) {
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(Path(10)), 0.0);
}

TEST(ClusteringTest, EmptyGraphIsZero) {
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(SocialGraph{}), 0.0);
}

TEST(ClusteringTest, TriangleWithPendant) {
  // Node 3 hangs off node 0 of a triangle: C(0)=C of deg-3 node with 1
  // triangle = 2*1/(3*2)=1/3; C(1)=C(2)=1; C(3)=0 -> avg = (1/3+1+1+0)/4.
  GraphBuilder b(4);
  b.AddFriendship(0, 1);
  b.AddFriendship(1, 2);
  b.AddFriendship(0, 2);
  b.AddFriendship(0, 3);
  EXPECT_NEAR(AverageClusteringCoefficient(b.BuildSocial()),
              (1.0 / 3.0 + 2.0) / 4.0, 1e-12);
}

// ---------- BFS / components / diameter ----------

TEST(BfsTest, DistancesOnPath) {
  const SocialGraph g = Path(5);
  const auto d = BfsDistances(g, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(BfsTest, UnreachableIsMax) {
  GraphBuilder b(3);
  b.AddFriendship(0, 1);
  const auto d = BfsDistances(b.BuildSocial(), 0);
  EXPECT_EQ(d[2], std::numeric_limits<std::uint32_t>::max());
}

TEST(ComponentsTest, CountsAndLargest) {
  GraphBuilder b(6);
  b.AddFriendship(0, 1);
  b.AddFriendship(1, 2);
  b.AddFriendship(3, 4);
  const Components c = ConnectedComponents(b.BuildSocial());
  EXPECT_EQ(c.count, 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(c.largest_size, 3u);
  EXPECT_EQ(c.component_of[0], c.component_of[2]);
  EXPECT_NE(c.component_of[0], c.component_of[3]);
}

TEST(DiameterTest, PathDiameterExact) {
  util::Rng rng(3);
  EXPECT_EQ(EstimateDiameter(Path(17), 8, rng), 16u);
}

TEST(DiameterTest, CliqueDiameterOne) {
  util::Rng rng(3);
  EXPECT_EQ(EstimateDiameter(Clique(8), 4, rng), 1u);
}

TEST(DiameterTest, IgnoresSmallComponents) {
  GraphBuilder b(10);
  for (NodeId v = 0; v + 1 < 6; ++v) b.AddFriendship(v, v + 1);  // path of 6
  b.AddFriendship(7, 8);
  util::Rng rng(3);
  EXPECT_EQ(EstimateDiameter(b.BuildSocial(), 8, rng), 5u);
}

TEST(DiameterTest, SingletonGraphIsZero) {
  GraphBuilder b(1);
  util::Rng rng(3);
  EXPECT_EQ(EstimateDiameter(b.BuildSocial(), 4, rng), 0u);
}

// ---------- degree stats ----------

TEST(DegreeStatsTest, StarValues) {
  const DegreeStats s = ComputeDegreeStats(Star(4));
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 4u);
  EXPECT_NEAR(s.mean, 8.0 / 5.0, 1e-12);
}

TEST(DegreeStatsTest, RegularGraph) {
  const DegreeStats s = ComputeDegreeStats(Clique(5));
  EXPECT_EQ(s.min, 4u);
  EXPECT_EQ(s.max, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 4.0);
}

TEST(DegreeHistogramTest, CountsPerDegree) {
  const auto hist = DegreeHistogram(Star(4));
  ASSERT_EQ(hist.size(), 5u);
  EXPECT_EQ(hist[1], 4u);  // leaves
  EXPECT_EQ(hist[4], 1u);  // hub
  EXPECT_EQ(hist[0], 0u);
}

TEST(PowerLawTest, BaGraphExponentNearThree) {
  // Pure BA converges to alpha = 3; allow a generous band at n=20K.
  util::Rng rng(5);
  const auto g = rejecto::gen::BarabasiAlbert(
      {.num_nodes = 20'000, .edges_per_node = 3}, rng);
  const double alpha = EstimatePowerLawExponent(g, 10);
  EXPECT_GT(alpha, 2.4);
  EXPECT_LT(alpha, 3.6);
}

TEST(PowerLawTest, RegularGraphReturnsZero) {
  // A clique has no tail beyond d_min == its uniform degree; log_sum is 0.
  EXPECT_EQ(EstimatePowerLawExponent(Clique(8), 8), 0.0);
}

TEST(PowerLawTest, InvalidDminThrows) {
  EXPECT_THROW(EstimatePowerLawExponent(Clique(4), 0), std::invalid_argument);
}

// ---------- edge-list I/O ----------

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("rejecto_io_test_" + std::to_string(::getpid()) + ".txt");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(IoTest, SaveLoadRoundTrip) {
  GraphBuilder b(4);
  b.AddFriendship(0, 1);
  b.AddFriendship(1, 2);
  b.AddFriendship(2, 3);
  const SocialGraph g = b.BuildSocial();
  SaveEdgeList(g, path_.string());
  const LoadedGraph loaded = LoadEdgeList(path_.string());
  EXPECT_EQ(loaded.graph.NumNodes(), 4u);
  EXPECT_EQ(loaded.graph.NumEdges(), 3u);
}

TEST_F(IoTest, LoadRemapsSparseIds) {
  std::ofstream(path_) << "# snap-style comment\n1000 2000\n2000 5\n";
  const LoadedGraph loaded = LoadEdgeList(path_.string());
  EXPECT_EQ(loaded.graph.NumNodes(), 3u);
  EXPECT_EQ(loaded.graph.NumEdges(), 2u);
  ASSERT_EQ(loaded.original_id.size(), 3u);
  EXPECT_EQ(loaded.original_id[0], 1000u);
  EXPECT_EQ(loaded.original_id[1], 2000u);
  EXPECT_EQ(loaded.original_id[2], 5u);
}

TEST_F(IoTest, LoadDropsSelfLoops) {
  std::ofstream(path_) << "1 1\n1 2\n";
  EXPECT_EQ(LoadEdgeList(path_.string()).graph.NumEdges(), 1u);
}

TEST_F(IoTest, MalformedLineThrows) {
  std::ofstream(path_) << "1 2\nnot numbers\n";
  EXPECT_THROW(LoadEdgeList(path_.string()), std::runtime_error);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(LoadEdgeList("/nonexistent/rejecto.txt"), std::runtime_error);
}

TEST_F(IoTest, RejectsCorruptedEdgeLists) {
  // Pre-hardening, istream extraction wrapped "-5" modulo 2^64 and
  // silently accepted garbage suffixes — corrupt inputs became edges.
  const auto expect_rejects = [&](const std::string& contents,
                                  const char* what) {
    std::ofstream(path_, std::ios::trunc) << contents;
    EXPECT_THROW(LoadEdgeList(path_.string()), std::runtime_error) << what;
  };
  expect_rejects("1 -5\n", "negative id");
  expect_rejects("+1 2\n", "explicit sign");
  expect_rejects("1 2x\n", "garbage suffix");
  expect_rejects("99999999999999999999 1\n", "id overflowing u64");
  expect_rejects("1 2 3\n", "trailing third column");
  expect_rejects("1\n", "missing second id");
  expect_rejects("1.5 2\n", "non-integer id");
}

TEST_F(IoTest, ErrorMessageNamesFileAndLine) {
  std::ofstream(path_) << "1 2\n3 4\n5 bogus\n";
  try {
    LoadEdgeList(path_.string());
    FAIL() << "corrupt line was accepted";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path_.string()), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  }
}

TEST_F(IoTest, LoadFailpointInjectsOpenFailure) {
  std::ofstream(path_) << "1 2\n";
  util::ScopedFailpoint fail("graph/io_open", util::FailpointPolicy::OnNth(1));
  EXPECT_THROW(LoadEdgeList(path_.string()), std::runtime_error);
  EXPECT_EQ(LoadEdgeList(path_.string()).graph.NumEdges(), 1u);
}

class AugmentedIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto dir = std::filesystem::temp_directory_path();
    fr_path_ = dir / ("rejecto_aug_fr_" + std::to_string(::getpid()) + ".txt");
    rej_path_ = dir / ("rejecto_aug_rej_" + std::to_string(::getpid()) + ".txt");
  }
  void TearDown() override {
    std::filesystem::remove(fr_path_);
    std::filesystem::remove(rej_path_);
  }
  std::filesystem::path fr_path_;
  std::filesystem::path rej_path_;
};

TEST_F(AugmentedIoTest, SharedIdSpaceAcrossFiles) {
  std::ofstream(fr_path_) << "10 20\n20 30\n";
  std::ofstream(rej_path_) << "# rejector rejected\n10 40\n30 40\n";
  const auto loaded = LoadAugmentedGraph(fr_path_.string(), rej_path_.string());
  EXPECT_EQ(loaded.graph.NumNodes(), 4u);
  EXPECT_EQ(loaded.graph.Friendships().NumEdges(), 2u);
  EXPECT_EQ(loaded.graph.Rejections().NumArcs(), 2u);
  // Node "40" appears only in the rejection file but shares the id space.
  const NodeId forty = loaded.dense_id.at(40);
  EXPECT_EQ(loaded.graph.Rejections().InDegree(forty), 2u);
  EXPECT_EQ(loaded.original_id[forty], 40u);
}

TEST_F(AugmentedIoTest, RejectionDirectionIsRejectorFirst) {
  std::ofstream(fr_path_) << "1 2\n";
  std::ofstream(rej_path_) << "1 3\n";
  const auto loaded = LoadAugmentedGraph(fr_path_.string(), rej_path_.string());
  const NodeId one = loaded.dense_id.at(1);
  const NodeId three = loaded.dense_id.at(3);
  EXPECT_TRUE(loaded.graph.Rejections().HasArc(one, three));
  EXPECT_FALSE(loaded.graph.Rejections().HasArc(three, one));
}

TEST_F(AugmentedIoTest, MalformedRejectionLineThrows) {
  std::ofstream(fr_path_) << "1 2\n";
  std::ofstream(rej_path_) << "oops\n";
  EXPECT_THROW(LoadAugmentedGraph(fr_path_.string(), rej_path_.string()),
               std::runtime_error);
}

TEST_F(AugmentedIoTest, RejectsNegativeAndOverflowingIds) {
  std::ofstream(fr_path_) << "1 2\n";
  std::ofstream(rej_path_) << "-3 1\n";
  EXPECT_THROW(LoadAugmentedGraph(fr_path_.string(), rej_path_.string()),
               std::runtime_error);
  std::ofstream(rej_path_, std::ios::trunc) << "18446744073709551616 1\n";
  EXPECT_THROW(LoadAugmentedGraph(fr_path_.string(), rej_path_.string()),
               std::runtime_error);
}

TEST_F(AugmentedIoTest, MissingRejectionFileThrows) {
  std::ofstream(fr_path_) << "1 2\n";
  EXPECT_THROW(LoadAugmentedGraph(fr_path_.string(), "/nonexistent/r.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace rejecto::graph
