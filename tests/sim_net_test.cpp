// Deterministic network simulator tests: the same seed and fault matrix
// must produce the identical delivery schedule — witnessed by the chained
// trace hash — no matter how many threads the master's pool runs (ISSUE
// acceptance: 1/2/8), plus per-fault behavior of the link model (drops,
// duplicates, corruption, reordering, partitions, failpoints).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "net/sim_net.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace rejecto::net {
namespace {

Message Echo(const Message& m) {
  Message reply;
  reply.type = MsgType::kFetchResponse;
  reply.request_id = m.request_id;
  reply.body = m.body;
  return reply;
}

SimNetConfig FaultyConfig(std::uint64_t seed) {
  SimNetConfig cfg;
  cfg.num_peers = 4;
  cfg.seed = seed;
  cfg.default_link.delay_us = 40.0;
  cfg.default_link.jitter_us = 25.0;
  cfg.default_link.drop_p = 0.10;
  cfg.default_link.dup_p = 0.05;
  cfg.default_link.corrupt_p = 0.05;
  cfg.default_link.reorder_p = 0.10;
  cfg.default_link.reorder_extra_us = 300.0;
  return cfg;
}

// The shape of a detection sweep: worker-local compute fanned out on the
// master's pool, then wire calls issued from the master thread in peer
// order. Only the pool size varies; the wire schedule must not.
std::uint64_t RunSchedule(std::size_t pool_threads, std::uint64_t seed,
                          std::uint64_t* calls_ok = nullptr) {
  SimNetwork net(FaultyConfig(seed));
  for (std::uint32_t p = 0; p < net.NumPeers(); ++p) net.SetHandler(p, Echo);
  util::ThreadPool pool(pool_threads);
  std::atomic<std::uint64_t> sink{0};
  std::uint64_t ok = 0;
  for (int round = 0; round < 25; ++round) {
    pool.ParallelFor(32, [&](std::size_t i) {
      sink.fetch_add(i * static_cast<std::size_t>(round + 1),
                     std::memory_order_relaxed);
    });
    for (std::uint32_t p = 0; p < net.NumPeers(); ++p) {
      Message req;
      req.type = MsgType::kFetchRequest;
      req.request_id = net.NextRequestId();
      req.body.assign(64 + p, static_cast<unsigned char>(round));
      Message resp;
      double elapsed = 0.0;
      if (net.Call(p, req, &resp, 500.0, &elapsed) == CallStatus::kOk) {
        ++ok;
        EXPECT_EQ(resp.request_id, req.request_id);
      }
    }
  }
  if (calls_ok != nullptr) *calls_ok = ok;
  return net.TraceHash();
}

// ---------- Determinism ----------

TEST(SimNetDeterminismTest, IdenticalScheduleAtOneTwoEightThreads) {
  std::uint64_t ok1 = 0, ok2 = 0, ok8 = 0;
  const std::uint64_t h1 = RunSchedule(1, 7, &ok1);
  const std::uint64_t h2 = RunSchedule(2, 7, &ok2);
  const std::uint64_t h8 = RunSchedule(8, 7, &ok8);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1, h8);
  EXPECT_EQ(ok1, ok2);
  EXPECT_EQ(ok1, ok8);
  // The matrix actually bit: some calls must have failed AND succeeded.
  EXPECT_GT(ok1, 0u);
  EXPECT_LT(ok1, 100u);
}

TEST(SimNetDeterminismTest, ReplaySameSeedSameHashDifferentSeedDiffers) {
  const std::uint64_t a = RunSchedule(2, 21);
  const std::uint64_t b = RunSchedule(2, 21);
  const std::uint64_t c = RunSchedule(2, 22);
  EXPECT_EQ(a, b) << "same seed + same fault matrix must replay exactly";
  EXPECT_NE(a, c) << "a different seed must produce a different schedule";
}

// ---------- Per-fault link behavior ----------

TEST(SimNetFaultTest, CleanLinkDeliversAndMetersVirtualTime) {
  SimNetConfig cfg;
  cfg.num_peers = 2;
  cfg.default_link.delay_us = 100.0;
  SimNetwork net(cfg);
  net.SetHandler(0, Echo);
  Message req;
  req.type = MsgType::kFetchRequest;
  req.request_id = net.NextRequestId();
  req.body.assign(128, 0xab);
  Message resp;
  double elapsed = 0.0;
  ASSERT_EQ(net.Call(0, req, &resp, 10'000.0, &elapsed), CallStatus::kOk);
  EXPECT_EQ(resp.body, req.body);
  // Two one-way trips plus serialization.
  EXPECT_GE(elapsed, 200.0);
  EXPECT_DOUBLE_EQ(net.VirtualNowUs(), elapsed);
  EXPECT_EQ(net.Stats().frames_sent, 1u);
  EXPECT_EQ(net.Stats().frames_received, 1u);
  EXPECT_EQ(net.Stats().timeouts, 0u);
  EXPECT_GT(net.Stats().bytes_sent, 128u);
}

TEST(SimNetFaultTest, FullDropTimesOutAndAdvancesToDeadline) {
  SimNetConfig cfg;
  cfg.num_peers = 1;
  cfg.default_link.drop_p = 1.0;
  SimNetwork net(cfg);
  net.SetHandler(0, Echo);
  Message req;
  req.type = MsgType::kFetchRequest;
  req.request_id = net.NextRequestId();
  double elapsed = 0.0;
  EXPECT_EQ(net.Call(0, req, nullptr, 750.0, &elapsed),
            CallStatus::kTimeout);
  EXPECT_DOUBLE_EQ(elapsed, 750.0);
  EXPECT_DOUBLE_EQ(net.VirtualNowUs(), 750.0);
  EXPECT_EQ(net.Stats().timeouts, 1u);
  EXPECT_GE(net.Stats().dropped_frames, 1u);
}

TEST(SimNetFaultTest, PartitionCutsAndHealRestores) {
  SimNetConfig cfg;
  cfg.num_peers = 2;
  cfg.link_overrides.push_back({1u, LinkFaults{.partitioned = true}});
  SimNetwork net(cfg);
  net.SetHandler(0, Echo);
  net.SetHandler(1, Echo);
  EXPECT_TRUE(net.Partitioned(1));
  EXPECT_FALSE(net.Partitioned(0));

  Message req;
  req.type = MsgType::kFetchRequest;
  req.request_id = net.NextRequestId();
  EXPECT_EQ(net.Call(1, req, nullptr, 500.0, nullptr), CallStatus::kTimeout);

  net.Partition(1, false);
  req.request_id = net.NextRequestId();
  Message resp;
  EXPECT_EQ(net.Call(1, req, &resp, 500.0, nullptr), CallStatus::kOk);

  net.Partition(0, true);
  req.request_id = net.NextRequestId();
  EXPECT_EQ(net.Call(0, req, nullptr, 500.0, nullptr), CallStatus::kTimeout);
}

TEST(SimNetFaultTest, CorruptionIsCaughtByCrcAndCounted) {
  SimNetConfig cfg;
  cfg.num_peers = 1;
  cfg.default_link.corrupt_p = 1.0;
  SimNetwork net(cfg);
  net.SetHandler(0, Echo);
  Message req;
  req.type = MsgType::kFetchRequest;
  req.request_id = net.NextRequestId();
  req.body.assign(64, 0x11);
  EXPECT_EQ(net.Call(0, req, nullptr, 500.0, nullptr), CallStatus::kTimeout);
  EXPECT_GE(net.Stats().corrupt_frames, 1u);
  EXPECT_EQ(net.Stats().frames_received, 0u);
}

TEST(SimNetFaultTest, DuplicatesAreDiscardedByRequestId) {
  SimNetConfig cfg;
  cfg.num_peers = 1;
  cfg.default_link.dup_p = 1.0;
  cfg.record_trace = true;
  SimNetwork net(cfg);
  net.SetHandler(0, Echo);
  Message req;
  req.type = MsgType::kFetchRequest;
  req.request_id = net.NextRequestId();
  Message resp;
  ASSERT_EQ(net.Call(0, req, &resp, 5'000.0, nullptr), CallStatus::kOk);
  EXPECT_EQ(resp.request_id, req.request_id);
  bool saw_duplicate = false;
  for (const TraceEvent& e : net.Trace()) {
    saw_duplicate |= e.kind == TraceEvent::Kind::kDuplicate;
  }
  EXPECT_TRUE(saw_duplicate);
}

TEST(SimNetFaultTest, DeadHandlerReportsPeerDead) {
  SimNetConfig cfg;
  cfg.num_peers = 2;
  SimNetwork net(cfg);
  net.SetHandler(0, Echo);  // peer 1 never gets a handler
  EXPECT_TRUE(net.PeerConnected(0));
  EXPECT_FALSE(net.PeerConnected(1));
  Message req;
  req.type = MsgType::kFetchRequest;
  req.request_id = net.NextRequestId();
  EXPECT_EQ(net.Call(1, req, nullptr, 500.0, nullptr),
            CallStatus::kPeerDead);
  net.SetHandler(0, nullptr);  // the crash path: handler torn down
  EXPECT_EQ(net.Call(0, req, nullptr, 500.0, nullptr),
            CallStatus::kPeerDead);
}

TEST(SimNetFaultTest, FailpointsDropAndCorruptFrames) {
  SimNetConfig cfg;
  cfg.num_peers = 1;
  SimNetwork net(cfg);
  net.SetHandler(0, Echo);
  Message req;
  req.type = MsgType::kFetchRequest;

  {
    util::ScopedFailpoint lost("net/send_frame",
                               util::FailpointPolicy::OnNth(1));
    req.request_id = net.NextRequestId();
    EXPECT_EQ(net.Call(0, req, nullptr, 500.0, nullptr),
              CallStatus::kTimeout);
    EXPECT_GE(net.Stats().dropped_frames, 1u);
  }
  {
    util::ScopedFailpoint eaten("net/recv_frame",
                                util::FailpointPolicy::OnNth(1));
    req.request_id = net.NextRequestId();
    EXPECT_EQ(net.Call(0, req, nullptr, 500.0, nullptr),
              CallStatus::kTimeout);
  }
  {
    util::ScopedFailpoint flip("net/corrupt_frame",
                               util::FailpointPolicy::OnNth(1));
    req.request_id = net.NextRequestId();
    EXPECT_EQ(net.Call(0, req, nullptr, 500.0, nullptr),
              CallStatus::kTimeout);
    EXPECT_GE(net.Stats().corrupt_frames, 1u);
  }
  // With no failpoints armed the link is clean again.
  req.request_id = net.NextRequestId();
  Message resp;
  EXPECT_EQ(net.Call(0, req, &resp, 500.0, nullptr), CallStatus::kOk);
}

TEST(SimNetFaultTest, ConfigValidation) {
  SimNetConfig zero;
  EXPECT_THROW(SimNetwork{zero}, std::invalid_argument);
  SimNetConfig bad_bw;
  bad_bw.num_peers = 1;
  bad_bw.bandwidth_gbps = 0.0;
  EXPECT_THROW(SimNetwork{bad_bw}, std::invalid_argument);
  SimNetConfig bad_override;
  bad_override.num_peers = 2;
  bad_override.link_overrides.push_back({5u, LinkFaults{}});
  EXPECT_THROW(SimNetwork{bad_override}, std::invalid_argument);
}

}  // namespace
}  // namespace rejecto::net
