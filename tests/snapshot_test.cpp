// graph/snapshot.h: round-trip exactness, byte determinism, the golden
// format pin, and the corruption model — every torn or bit-flipped file
// must be rejected with a clean path+offset error, never undefined
// behavior.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "detect/iterative.h"
#include "engine/epoch_detector.h"
#include "gen/holme_kim.h"
#include "graph/builder.h"
#include "graph/layout.h"
#include "graph/snapshot.h"
#include "sim/scenario.h"
#include "util/failpoint.h"
#include "util/flags.h"
#include "util/rng.h"

namespace rejecto {
namespace {

namespace fs = std::filesystem;

using graph::AugmentedGraph;
using graph::Layout;
using graph::LayoutPolicy;
using graph::LoadSnapshot;
using graph::NodeId;
using graph::SaveSnapshot;
using graph::Snapshot;

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("rejecto_snapshot_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

// The deterministic graph used by the golden pin AND the regeneration
// helper below. Touch it only together with a new golden file.
AugmentedGraph GoldenGraph() {
  graph::GraphBuilder b(9);
  b.AddFriendship(0, 1);
  b.AddFriendship(0, 2);
  b.AddFriendship(1, 2);
  b.AddFriendship(3, 4);
  b.AddFriendship(4, 5);
  b.AddFriendship(6, 0);
  b.AddRejection(7, 0);
  b.AddRejection(7, 3);
  b.AddRejection(5, 7);
  b.AddRejection(8, 7);  // 8: rejector only; node ids 0..8 all materialized
  return b.BuildAugmented();
}

AugmentedGraph RandomScenarioGraph(std::uint64_t seed, NodeId n = 400) {
  util::Rng rng(seed);
  const auto legit = gen::HolmeKim({.num_nodes = n, .edges_per_node = 3}, rng);
  sim::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.num_fakes = n / 10;
  return sim::BuildScenario(legit, cfg).graph;
}

std::vector<unsigned char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::uint32_t GetU32(const std::vector<unsigned char>& b, std::size_t at) {
  return static_cast<std::uint32_t>(b[at]) |
         (static_cast<std::uint32_t>(b[at + 1]) << 8) |
         (static_cast<std::uint32_t>(b[at + 2]) << 16) |
         (static_cast<std::uint32_t>(b[at + 3]) << 24);
}

std::uint64_t GetU64(const std::vector<unsigned char>& b, std::size_t at) {
  return static_cast<std::uint64_t>(GetU32(b, at)) |
         (static_cast<std::uint64_t>(GetU32(b, at + 4)) << 32);
}

struct SectionEntry {
  std::uint32_t kind = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

// Parses the section table of a KNOWN-GOOD snapshot image (test-side
// reimplementation, so the tests can compute section boundaries without
// reaching into the loader's internals).
std::vector<SectionEntry> ParseTable(const std::vector<unsigned char>& b) {
  const std::uint32_t count = GetU32(b, 8);
  std::vector<SectionEntry> entries;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t at = 16 + 24 * static_cast<std::size_t>(i);
    entries.push_back(SectionEntry{GetU32(b, at), GetU64(b, at + 8),
                                   GetU64(b, at + 16)});
  }
  return entries;
}

// ---------- round trips ----------

TEST_F(SnapshotTest, IdentityRoundTripIsExact) {
  const AugmentedGraph g = RandomScenarioGraph(7);
  const std::string path = Path("g.snap");
  SaveSnapshot(path, g);
  const Snapshot snap = LoadSnapshot(path);
  EXPECT_TRUE(snap.layout.IsIdentity());
  EXPECT_EQ(snap.graph, g);
  EXPECT_EQ(snap, (Snapshot{g, Layout{}}));
}

TEST_F(SnapshotTest, LayoutPolicyRoundTripStoresLaidOutCsrsAndPermutation) {
  const AugmentedGraph g = RandomScenarioGraph(11);
  const std::string path = Path("g.snap");
  const Layout layout =
      graph::SaveSnapshotWithPolicy(path, g, LayoutPolicy::kBfs);
  ASSERT_FALSE(layout.IsIdentity());
  const Snapshot snap = LoadSnapshot(path);
  EXPECT_EQ(snap.layout, layout);
  EXPECT_EQ(snap.graph, graph::ApplyLayout(g, layout));
  // Mapping back through the stored permutation recovers the original.
  EXPECT_EQ(graph::ApplyLayout(snap.graph, graph::InvertLayout(snap.layout)),
            g);
}

TEST_F(SnapshotTest, PreservesIsolatedNodesAndEmptyGraphs) {
  // Text edge lists drop isolated nodes; snapshots must not.
  graph::GraphBuilder b(5);
  b.AddFriendship(1, 3);  // nodes 0, 2, 4 stay fully isolated
  const AugmentedGraph g = b.BuildAugmented();
  const std::string path = Path("iso.snap");
  SaveSnapshot(path, g);
  EXPECT_EQ(LoadSnapshot(path).graph, g);

  const AugmentedGraph empty = graph::GraphBuilder(0).BuildAugmented();
  SaveSnapshot(Path("empty.snap"), empty);
  const Snapshot esnap = LoadSnapshot(Path("empty.snap"));
  EXPECT_EQ(esnap.graph.NumNodes(), 0u);
  EXPECT_EQ(esnap.graph, empty);
}

TEST_F(SnapshotTest, SaveRejectsMismatchedLayout) {
  const AugmentedGraph g = GoldenGraph();
  EXPECT_THROW(SaveSnapshot(Path("bad.snap"), g,
                            graph::LayoutFromPermutation({1, 0})),
               std::invalid_argument);
}

TEST_F(SnapshotTest, WritesAreByteDeterministic) {
  const AugmentedGraph g = RandomScenarioGraph(13);
  SaveSnapshot(Path("a.snap"), g);
  SaveSnapshot(Path("b.snap"), g);
  EXPECT_EQ(ReadFileBytes(Path("a.snap")), ReadFileBytes(Path("b.snap")));
}

// ---------- golden pin ----------

TEST_F(SnapshotTest, GoldenPinReloadsEqualAndByteIdentical) {
  const std::string golden = std::string(REJECTO_GOLDEN_DIR) + "/graph.snap";
  if (util::GetEnvBool("REJECTO_REGEN_GOLDEN", false)) {
    SaveSnapshot(golden, GoldenGraph());
    GTEST_SKIP() << "golden snapshot regenerated at " << golden;
  }
  const Snapshot snap = LoadSnapshot(golden);
  EXPECT_EQ(snap, (Snapshot{GoldenGraph(), Layout{}}))
      << "golden snapshot no longer decodes to the pinned graph";

  // Byte-identity both ways pins the FORMAT, not just the decode: a writer
  // change that still round-trips would silently orphan old snapshots. If
  // the format legitimately evolves, bump the magic and regenerate with
  // REJECTO_REGEN_GOLDEN=1 (see tests/golden/README.md).
  SaveSnapshot(Path("regen.snap"), GoldenGraph());
  EXPECT_EQ(ReadFileBytes(Path("regen.snap")), ReadFileBytes(golden));
}

// ---------- corruption model ----------

TEST_F(SnapshotTest, EveryTruncationIsRejectedCleanly) {
  const AugmentedGraph g = RandomScenarioGraph(17, 120);
  const std::string path = Path("g.snap");
  graph::SaveSnapshotWithPolicy(path, g, LayoutPolicy::kBfs);
  const auto bytes = ReadFileBytes(path);
  const auto table = ParseTable(bytes);
  ASSERT_EQ(table.size(), 8u);  // meta, 3x(offsets+adjacency), layout

  // Every header/table/section boundary plus each section's midpoint.
  std::vector<std::size_t> cuts = {0, 4, 8, 12, 16};
  for (std::size_t i = 0; i < table.size(); ++i) {
    cuts.push_back(16 + 24 * (i + 1));  // after table entry i
    cuts.push_back(table[i].offset);
    cuts.push_back(table[i].offset + table[i].length / 2);
    cuts.push_back(table[i].offset + table[i].length);
  }
  const std::string torn = Path("torn.snap");
  for (std::size_t cut : cuts) {
    if (cut >= bytes.size()) continue;
    WriteFileBytes(
        torn, std::vector<unsigned char>(bytes.begin(),
                                         bytes.begin() +
                                             static_cast<std::ptrdiff_t>(cut)));
    try {
      LoadSnapshot(torn);
      FAIL() << "truncation at byte " << cut << " was accepted";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("snapshot: "), std::string::npos)
          << "cut=" << cut << " what=" << e.what();
      EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
          << "cut=" << cut << " what=" << e.what();
    }
  }
}

TEST_F(SnapshotTest, BitFlipsAnywhereAreRejected) {
  const AugmentedGraph g = RandomScenarioGraph(19, 60);
  const std::string path = Path("g.snap");
  graph::SaveSnapshotWithPolicy(path, g, LayoutPolicy::kBfs);
  const auto bytes = ReadFileBytes(path);
  const auto table = ParseTable(bytes);

  // One flip in the magic, the count, the table CRC, each table entry, and
  // the middle of every section.
  std::vector<std::size_t> targets = {0, 9, 13};
  for (std::size_t i = 0; i < table.size(); ++i) {
    targets.push_back(16 + 24 * i + 4);  // the entry's stored section CRC
    targets.push_back(table[i].offset + table[i].length / 2);
  }
  const std::string evil = Path("flipped.snap");
  for (std::size_t at : targets) {
    ASSERT_LT(at, bytes.size());
    auto mutated = bytes;
    mutated[at] ^= 0x40;
    WriteFileBytes(evil, mutated);
    EXPECT_THROW(LoadSnapshot(evil), std::runtime_error)
        << "bit flip at byte " << at << " was accepted";
  }
}

TEST_F(SnapshotTest, TruncationAndCorruptionAreDistinctErrors) {
  // An operator reading the error must be able to tell a torn copy (the
  // tail is missing) from bit rot (the bytes are there but wrong): the
  // loader names the section and says "truncated" for one, "CRC mismatch"
  // for the other — never both.
  const AugmentedGraph g = RandomScenarioGraph(31, 120);
  const std::string path = Path("g.snap");
  SaveSnapshot(path, g);
  const auto bytes = ReadFileBytes(path);
  const auto table = ParseTable(bytes);
  ASSERT_FALSE(table.empty());
  const SectionEntry& last = table.back();

  const std::string torn = Path("torn.snap");
  WriteFileBytes(torn, std::vector<unsigned char>(
                           bytes.begin(),
                           bytes.begin() + static_cast<std::ptrdiff_t>(
                                               last.offset + last.length / 2)));
  try {
    LoadSnapshot(torn);
    FAIL() << "torn section accepted";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
    EXPECT_NE(what.find("section"), std::string::npos) << what;
    EXPECT_EQ(what.find("CRC mismatch"), std::string::npos) << what;
  }

  auto flipped = bytes;
  flipped[last.offset + last.length / 2] ^= 0x20;
  const std::string evil = Path("flipped.snap");
  WriteFileBytes(evil, flipped);
  try {
    LoadSnapshot(evil);
    FAIL() << "corrupt section accepted";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("CRC mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("section"), std::string::npos) << what;
    EXPECT_EQ(what.find("truncated"), std::string::npos) << what;
  }
}

TEST_F(SnapshotTest, MissingFileAndGarbageAreRejected) {
  EXPECT_THROW(LoadSnapshot(Path("nope.snap")), std::runtime_error);
  WriteFileBytes(Path("garbage.snap"),
                 std::vector<unsigned char>(64, 0xAB));
  EXPECT_THROW(LoadSnapshot(Path("garbage.snap")), std::runtime_error);
}

// ---------- failpoints ----------

TEST_F(SnapshotTest, WriteAndRenameFailpointsLeaveNoPartialFile) {
  const AugmentedGraph g = GoldenGraph();
  const std::string path = Path("g.snap");
  {
    util::ScopedFailpoint fp("snapshot/write",
                             util::FailpointPolicy::OnNth(1));
    EXPECT_THROW(SaveSnapshot(path, g), std::runtime_error);
  }
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  {
    util::ScopedFailpoint fp("snapshot/rename",
                             util::FailpointPolicy::OnNth(1));
    EXPECT_THROW(SaveSnapshot(path, g), std::runtime_error);
  }
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  // With the failpoints disarmed the same save succeeds.
  SaveSnapshot(path, g);
  EXPECT_EQ(LoadSnapshot(path).graph, g);
}

TEST_F(SnapshotTest, OpenFailpointThrowsAndMapFailpointFallsBackToStreams) {
  const AugmentedGraph g = RandomScenarioGraph(23, 80);
  const std::string path = Path("g.snap");
  const Layout layout =
      graph::SaveSnapshotWithPolicy(path, g, LayoutPolicy::kBfs);
  {
    util::ScopedFailpoint fp("snapshot/open",
                             util::FailpointPolicy::OnNth(1));
    EXPECT_THROW(LoadSnapshot(path), std::runtime_error);
  }
  {
    // mmap "fails": the ifstream fallback must produce the identical
    // snapshot.
    util::ScopedFailpoint fp("snapshot/map", util::FailpointPolicy::OnNth(1));
    const Snapshot snap = LoadSnapshot(path);
    EXPECT_EQ(snap, (Snapshot{graph::ApplyLayout(g, layout), layout}));
  }
}

// ---------- engine integration ----------

TEST_F(SnapshotTest, EpochDetectorFromSnapshotMatchesDirectConstruction) {
  const AugmentedGraph g = RandomScenarioGraph(29, 200);
  const std::string path = Path("g.snap");
  // Save in BFS layout on purpose: FromSnapshot must hand the detector the
  // ORIGINAL id space (stream ids never remap).
  graph::SaveSnapshotWithPolicy(path, g, LayoutPolicy::kBfs);

  detect::Seeds seeds;
  seeds.legit = {0, 1};
  engine::EpochConfig cfg;
  cfg.detect.target_detections = 10;
  cfg.detect.maar.seed = 5;

  auto from_snap = engine::EpochDetector::FromSnapshot(path, seeds, cfg);
  engine::EpochDetector direct(g, seeds, cfg);
  EXPECT_EQ(from_snap->Graph().NumNodes(), g.NumNodes());

  const auto& a = from_snap->RunEpoch();
  const auto& b = direct.RunEpoch();
  EXPECT_EQ(from_snap->LastResult().detected, direct.LastResult().detected);
  EXPECT_EQ(a.num_detected, b.num_detected);
  EXPECT_EQ(a.round_ratios, b.round_ratios);
}

}  // namespace
}  // namespace rejecto
