// Snapshot-publication race tests (run under TSan in CI).
//
// Hammer test: a writer republishing as fast as it can while readers pin
// and validate a self-checking canary — any torn read, use-after-reclaim,
// or word-level race shows up as a canary mismatch (or as a TSan report).
// Property test: a reader holding a Pin across two publishes keeps a
// consistent view the whole time, and reclamation happens only after the
// pin is released.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "serve/admission.h"
#include "serve/rcu.h"
#include "sim/scenario.h"
#include "sim/stream_feed.h"
#include "util/rng.h"

namespace rejecto {
namespace {

using serve::RcuPtr;
using serve::ReclaimMode;

// Self-checking payload: b must always read as ~a, and `alive` flags a
// use-after-free that ASan might otherwise miss on recycled memory.
struct Canary {
  explicit Canary(std::uint64_t v) : a(v), b(~v) {}
  ~Canary() { alive = 0; }
  std::uint64_t a;
  std::uint64_t b;
  std::uint64_t alive = 0xC0FFEE;
};

class RcuHammerTest : public ::testing::TestWithParam<ReclaimMode> {};

TEST_P(RcuHammerTest, ReadersAlwaysSeeConsistentCanaries) {
  RcuPtr<Canary> rcu(GetParam(), /*max_slots=*/8);
  rcu.Publish(std::make_shared<const Canary>(0));

  constexpr int kReaders = 4;
  constexpr std::uint64_t kPublishes = 4000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&rcu, &stop, &torn] {
      RcuPtr<Canary>::Slot* slot =
          rcu.Mode() == ReclaimMode::kHazard ? rcu.AcquireSlot() : nullptr;
      if (rcu.Mode() == ReclaimMode::kHazard && slot == nullptr) {
        torn.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      std::uint64_t last_seen = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto pin = rcu.Acquire(slot);
        // The pinned value must be internally consistent and alive for the
        // whole pin, and the sequence of observed versions monotone.
        if (!pin || pin->b != ~pin->a || pin->alive != 0xC0FFEE ||
            pin->a < last_seen) {
          torn.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        last_seen = pin->a;
      }
      rcu.ReleaseSlot(slot);
    });
  }
  for (std::uint64_t v = 1; v <= kPublishes; ++v) {
    rcu.Publish(std::make_shared<const Canary>(v));
    if ((v & 255) == 0) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0u);
  // With every reader gone, one publish reclaims everything retired.
  rcu.Publish(std::make_shared<const Canary>(kPublishes + 1));
  EXPECT_LE(rcu.RetiredCount(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Modes, RcuHammerTest,
                         ::testing::Values(ReclaimMode::kHazard,
                                           ReclaimMode::kSharedPtr));

// Deterministic single-thread property: a Pin taken before two publishes
// still reads the old value afterwards, and the old value is reclaimed
// only once the Pin is gone.
TEST(RcuPtr, PinSurvivesTwoPublishesThenReclaims) {
  RcuPtr<Canary> rcu(ReclaimMode::kHazard, 4);
  rcu.Publish(std::make_shared<const Canary>(10));
  RcuPtr<Canary>::Slot* slot = rcu.AcquireSlot();
  ASSERT_NE(slot, nullptr);
  {
    const auto pin = rcu.Acquire(slot);
    ASSERT_TRUE(pin);
    EXPECT_EQ(pin->a, 10u);
    rcu.Publish(std::make_shared<const Canary>(11));
    rcu.Publish(std::make_shared<const Canary>(12));
    // The pinned epoch is still the one acquired, still intact, even
    // though two newer values superseded it...
    EXPECT_EQ(pin->a, 10u);
    EXPECT_EQ(pin->b, ~std::uint64_t{10});
    EXPECT_EQ(pin->alive, 0xC0FFEEu);
    // ...and the writer kept it on the retired list (11 was reclaimed at
    // the second publish; 10 is pinned).
    EXPECT_EQ(rcu.RetiredCount(), 1u);
    // A fresh Acquire through the same slot sees the new value.
  }
  const auto now = rcu.Acquire(slot);
  EXPECT_EQ(now->a, 12u);
  // Pin released: the next publish sweeps value 10.
  rcu.Publish(std::make_shared<const Canary>(13));
  EXPECT_EQ(rcu.RetiredCount(), 1u);  // only 12, still pinned by `now`
  rcu.ReleaseSlot(nullptr);           // no-op
  EXPECT_EQ(now->a, 12u);
}

TEST(RcuPtr, SlotPoolExhaustsAndRecycles) {
  RcuPtr<Canary> rcu(ReclaimMode::kHazard, 2);
  auto* s0 = rcu.AcquireSlot();
  auto* s1 = rcu.AcquireSlot();
  ASSERT_NE(s0, nullptr);
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(rcu.AcquireSlot(), nullptr);
  rcu.ReleaseSlot(s0);
  EXPECT_NE(rcu.AcquireSlot(), nullptr);
  rcu.ReleaseSlot(s0);
  rcu.ReleaseSlot(s1);
}

// End-to-end hammer: a service with a tiny epoch period publishing dozens
// of epochs while readers decide continuously. Asserts each reader's
// observed epoch ids are monotone (publication order is globally visible)
// and every pin dereferences safely (TSan/ASan close the loop).
TEST(AdmissionServiceRace, ReadersSurviveRapidEpochTurnover) {
  util::Rng rng(7);
  const auto legit = gen::ErdosRenyi({.num_nodes = 120, .num_edges = 420}, rng);
  sim::ScenarioConfig scfg;
  scfg.seed = 11;
  scfg.num_fakes = 24;
  const auto scenario = sim::BuildScenario(legit, scfg);
  util::Rng seed_rng(3);
  const detect::Seeds seeds = scenario.SampleSeeds(10, 4, seed_rng);
  sim::ChurnConfig churn;
  churn.seed = 5;
  const stream::MutationLog log = sim::GenerateChurnLog(scenario.log, churn);

  serve::AdmissionConfig cfg;
  cfg.epoch.detect.target_detections = scfg.num_fakes;
  cfg.epoch.detect.maar.seed = 23;
  cfg.epoch.detect.maar.num_threads = 1;
  cfg.epoch.events_per_epoch = 64;  // rapid turnover
  cfg.reclaim = ReclaimMode::kHazard;
  serve::AdmissionService svc(
      graph::GraphBuilder(log.NumNodes()).BuildAugmented(), seeds, cfg);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> regressions{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    auto reader = svc.CreateReader();
    readers.emplace_back([&stop, &regressions, r, n = log.NumNodes(),
                          rd = std::move(reader)]() mutable {
      util::Rng prng(r * 131 + 1);
      std::uint64_t t = 0;
      std::uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto d = rd.Decide(
            static_cast<graph::NodeId>(prng.NextUInt(n)), t++);
        if (d.epoch_id < last_epoch) {
          regressions.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        last_epoch = d.epoch_id;
        if ((t & 31) == 0) std::this_thread::yield();
      }
    });
  }
  for (const stream::Event& e : log.Events()) svc.Submit(e);
  const std::uint64_t final_id = svc.ForceEpoch();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(regressions.load(), 0u);
  EXPECT_GE(final_id, log.NumEvents() / 64);
  EXPECT_EQ(svc.Stats().epochs_published, final_id);
}

}  // namespace
}  // namespace rejecto
