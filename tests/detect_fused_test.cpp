// Property tests for the fused FM inner loop: Partition::SwitchFused +
// BucketList::Adjust against (a) a faithful reimplementation of the unfused
// Switch-then-refresh loop and (b) the O(E+R) AugmentedGraph::ComputeCut
// oracle after every single switch. The fused kernel must be bit-identical
// — same masks, same cut integers, same pass/switch counts — because the
// PR determinism suite pins MaarCut masks across thread counts on top of
// it.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "detect/bucket_list.h"
#include "detect/extended_kl.h"
#include "detect/partition.h"
#include "graph/builder.h"
#include "util/buffer.h"
#include "util/rng.h"

namespace rejecto::detect {
namespace {

constexpr double kGainEps = 1e-7;  // matches extended_kl.cpp

// Random augmented graph with deliberately overlapping relations: a pair
// can be friends AND rejector/rejectee in both directions, which is exactly
// the case where a fused switch touches the same neighbor through several
// adjacency lists.
graph::AugmentedGraph RandomOverlappingGraph(graph::NodeId n,
                                             std::size_t edges,
                                             std::size_t arcs,
                                             util::Rng& rng) {
  graph::GraphBuilder b(n);
  for (std::size_t e = 0; e < edges; ++e) {
    const auto u = static_cast<graph::NodeId>(rng.NextUInt(n));
    auto v = static_cast<graph::NodeId>(rng.NextUInt(n));
    if (u == v) v = (v + 1) % n;
    b.AddFriendship(u, v);
    // Half the friendships also carry a rejection between the same pair.
    if (rng.NextBool(0.5)) b.AddRejection(u, v);
    if (rng.NextBool(0.25)) b.AddRejection(v, u);  // mutual rejection
  }
  for (std::size_t i = 0; i < arcs; ++i) {
    const auto u = static_cast<graph::NodeId>(rng.NextUInt(n));
    auto v = static_cast<graph::NodeId>(rng.NextUInt(n));
    if (u == v) v = (v + 1) % n;
    b.AddRejection(u, v);
  }
  return b.BuildAugmented();
}

std::vector<char> RandomMask(graph::NodeId n, double p, util::Rng& rng) {
  std::vector<char> m(n, 0);
  for (auto& c : m) c = rng.NextBool(p) ? 1 : 0;
  return m;
}

double GainBound(const graph::AugmentedGraph& g, double k) {
  return std::max(1.0, static_cast<double>(g.MaxFriendshipDegree()) +
                           k * static_cast<double>(g.MaxRejectionDegree()));
}

// The pre-fusion inner loop, verbatim: full Switch, then a refresh sweep
// over the three adjacency lists with Contains+Update.
KlResult ReferenceKl(const graph::AugmentedGraph& g,
                     std::vector<char> init_in_u,
                     const std::vector<char>& locked,
                     const KlConfig& config) {
  const graph::NodeId n = g.NumNodes();
  auto is_locked = [&](graph::NodeId v) {
    return !locked.empty() && locked[v] != 0;
  };
  Partition p(g, std::move(init_in_u));
  const double k = config.k;
  const double gain_bound = GainBound(g, k);
  const auto& fr = g.Friendships();
  const auto& rej = g.Rejections();

  KlStats stats;
  std::vector<graph::NodeId> seq;
  seq.reserve(n);
  for (int pass = 0; pass < config.max_passes; ++pass) {
    ++stats.passes;
    BucketList bl(n, gain_bound, config.gain_resolution);
    for (graph::NodeId v = 0; v < n; ++v) {
      if (!is_locked(v)) bl.Insert(v, -p.DeltaObjective(v, k));
    }
    seq.clear();
    double cum = 0.0;
    double best_cum = 0.0;
    std::size_t best_prefix = 0;
    auto refresh = [&](graph::NodeId w) {
      if (bl.Contains(w)) bl.Update(w, -p.DeltaObjective(w, k));
    };
    while (!bl.Empty()) {
      const graph::NodeId v = bl.PopMax();
      const double gain = -p.DeltaObjective(v, k);
      p.Switch(v);
      seq.push_back(v);
      cum += gain;
      if (cum > best_cum + kGainEps) {
        best_cum = cum;
        best_prefix = seq.size();
      }
      for (graph::NodeId w : fr.Neighbors(v)) refresh(w);
      for (graph::NodeId w : rej.Rejectors(v)) refresh(w);
      for (graph::NodeId w : rej.Rejectees(v)) refresh(w);
    }
    for (std::size_t i = seq.size(); i > best_prefix; --i) {
      p.Switch(seq[i - 1]);
    }
    stats.switches_applied += best_prefix;
    if (best_prefix == 0) break;
  }
  KlResult result;
  result.cut = p.Quantities();
  stats.final_objective = p.Objective(k);
  result.stats = stats;
  result.in_u = p.Mask();
  return result;
}

void ExpectBitIdentical(const KlResult& a, const KlResult& b) {
  ASSERT_EQ(a.in_u, b.in_u);
  EXPECT_EQ(a.cut.cross_friendships, b.cut.cross_friendships);
  EXPECT_EQ(a.cut.rejections_into_u, b.cut.rejections_into_u);
  EXPECT_EQ(a.cut.rejections_from_u, b.cut.rejections_from_u);
  EXPECT_EQ(a.stats.passes, b.stats.passes);
  EXPECT_EQ(a.stats.switches_applied, b.stats.switches_applied);
  // Same integers through the same expression ⇒ the doubles must be
  // bitwise equal, not merely near.
  EXPECT_EQ(a.stats.final_objective, b.stats.final_objective);
}

TEST(FusedKlTest, MatchesUnfusedReferenceOnRandomGraphs) {
  util::Rng rng(2024);
  const double ks[] = {0.25, 1.0, 3.5};
  for (int trial = 0; trial < 30; ++trial) {
    const auto n = static_cast<graph::NodeId>(20 + rng.NextUInt(40));
    const auto g = RandomOverlappingGraph(n, 3 * n, 2 * n, rng);
    const auto init = RandomMask(n, rng.NextDouble(), rng);
    for (double k : ks) {
      const KlConfig cfg{.k = k};
      const auto fused = ExtendedKl(g, init, {}, cfg);
      const auto ref = ReferenceKl(g, init, {}, cfg);
      ExpectBitIdentical(fused, ref);
    }
  }
}

TEST(FusedKlTest, MatchesReferenceWithLockedSeeds) {
  util::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const graph::NodeId n = 40;
    const auto g = RandomOverlappingGraph(n, 120, 80, rng);
    auto init = RandomMask(n, 0.3, rng);
    auto locked = RandomMask(n, 0.15, rng);
    const KlConfig cfg{.k = 1.0};
    const auto fused = ExtendedKl(g, init, locked, cfg);
    const auto ref = ReferenceKl(g, init, locked, cfg);
    ExpectBitIdentical(fused, ref);
    for (graph::NodeId v = 0; v < n; ++v) {
      if (locked[v]) {
        EXPECT_EQ(fused.in_u[v], init[v]);
      }
    }
  }
}

// Per-switch oracle: replay a fused switch sequence and after EVERY switch
// check (a) the incremental cut totals against ComputeCut and (b) every
// present node's bucket against a fresh quantization of its exact gain.
TEST(FusedKlTest, PerSwitchOracleOnRecordedSequence) {
  util::Rng rng(51);
  const graph::NodeId n = 30;
  const auto g = RandomOverlappingGraph(n, 90, 60, rng);
  const double k = 1.5;
  const double resolution = 64.0;
  const auto init = RandomMask(n, 0.4, rng);

  Partition p(g, init);
  BucketList bl(n, GainBound(g, k), resolution);
  for (graph::NodeId v = 0; v < n; ++v) {
    bl.Insert(v, -p.DeltaObjective(v, k));
  }
  util::AlignedVector<graph::NodeId> touched;
  int switches = 0;
  while (!bl.Empty() && switches < 200) {
    const graph::NodeId v = bl.PopMax();
    p.SwitchFused(v, k, bl, touched);
    ++switches;

    const auto oracle = g.ComputeCut(p.Mask());
    const auto q = p.Quantities();
    ASSERT_EQ(q.cross_friendships, oracle.cross_friendships);
    ASSERT_EQ(q.rejections_into_u, oracle.rejections_into_u);
    ASSERT_EQ(q.rejections_from_u, oracle.rejections_from_u);

    for (graph::NodeId w = 0; w < n; ++w) {
      if (!bl.Contains(w)) continue;
      ASSERT_EQ(bl.BucketOf(w), bl.Quantize(-p.DeltaObjective(w, k)))
          << "stale bucket for node " << w << " after switch " << switches;
    }
  }
  EXPECT_GT(switches, 0);
}

// Scratch reuse must never change results: cold scratch, warm scratch from
// the same graph, and a dirty scratch that last served a different,
// larger graph all agree with the scratch-free call.
TEST(FusedKlTest, ScratchReuseIsResultInvariant) {
  util::Rng rng(88);
  const auto big = RandomOverlappingGraph(80, 300, 200, rng);
  const auto small = RandomOverlappingGraph(33, 100, 70, rng);
  const auto big_init = RandomMask(80, 0.5, rng);
  const auto small_init = RandomMask(33, 0.35, rng);
  const KlConfig cfg{.k = 2.0};

  const auto baseline = ExtendedKl(small, small_init, {}, cfg);

  KlScratch scratch;
  const auto cold = ExtendedKl(small, small_init, {}, cfg, &scratch);
  ExpectBitIdentical(cold, baseline);
  const auto warm = ExtendedKl(small, small_init, {}, cfg, &scratch);
  ExpectBitIdentical(warm, baseline);

  // Dirty the scratch on a different (larger) graph, then reuse.
  (void)ExtendedKl(big, big_init, {}, cfg, &scratch);
  const auto after_big = ExtendedKl(small, small_init, {}, cfg, &scratch);
  ExpectBitIdentical(after_big, baseline);
}

// The workspace's buffers must actually be reused: capacities reached on a
// large graph survive a Reset to a smaller one.
TEST(FusedKlTest, ScratchCapacityIsReusedAcrossResets) {
  BucketList bl(100, 50.0, 64.0);
  const std::size_t node_cap = bl.NodeCapacity();
  const std::size_t bucket_cap = bl.BucketCapacity();
  bl.Insert(3, 1.0);
  bl.Insert(7, -2.0);
  EXPECT_EQ(bl.PopMax(), 3u);
  EXPECT_EQ(bl.PopMax(), 7u);
  // Drained ⇒ the empty-invariant fast path: geometry shrinks, capacity
  // doesn't.
  bl.Reset(10, 5.0, 64.0);
  EXPECT_EQ(bl.NodeCapacity(), node_cap);
  EXPECT_EQ(bl.BucketCapacity(), bucket_cap);
  EXPECT_TRUE(bl.Empty());
  bl.Insert(2, 4.0);
  bl.Insert(9, 4.5);
  EXPECT_EQ(bl.PopMax(), 9u);
  EXPECT_EQ(bl.PopMax(), 2u);
}

// Adjust semantics: absent nodes are ignored, same-bucket updates keep
// LIFO position, and cross-bucket moves relink at the new bucket's head.
TEST(FusedKlTest, AdjustMatchesContainsPlusUpdate) {
  BucketList a(8, 10.0, 64.0);
  BucketList b(8, 10.0, 64.0);
  for (graph::NodeId v = 0; v < 6; ++v) {
    a.Insert(v, 1.0);
    b.Insert(v, 1.0);
  }
  // Absent node: no-op on both paths.
  a.Adjust(7, 5.0);
  if (b.Contains(7)) b.Update(7, 5.0);
  // Same-bucket and cross-bucket moves.
  const double gains[] = {1.0, -3.0, 1.0, 9.5, -3.0, 2.0};
  for (graph::NodeId v = 0; v < 6; ++v) {
    a.Adjust(v, gains[v]);
    if (b.Contains(v)) b.Update(v, gains[v]);
  }
  while (!a.Empty()) {
    ASSERT_EQ(a.PopMax(), b.PopMax());
  }
  EXPECT_TRUE(b.Empty());
}

}  // namespace
}  // namespace rejecto::detect
