// study/early_detection.h differential + consistency suite.
//
// The differential pin (the PR's acceptance bar): with warm_start off, the
// harness's FINAL epoch is an ordinary cold detection on the fully-replayed
// log, so its output must be BIT-IDENTICAL to a one-shot batch
// DetectFriendSpammers on the same log — at 1, 2, and 8 MAAR threads. The
// temporal world is itself thread-invariant (the flagged feedback comes
// from thread-invariant epochs), so all three runs see the same log.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "detect/iterative.h"
#include "gen/erdos_renyi.h"
#include "sim/temporal_eval.h"
#include "study/early_detection.h"
#include "util/rng.h"

namespace rejecto {
namespace {

constexpr int kThreadWidths[] = {1, 2, 8};

struct HarnessRun {
  study::EarlyDetectionResult res;
  sim::RequestLog log{0};
  std::vector<graph::NodeId> spammers;
  std::vector<std::uint64_t> spam_accepted;
  graph::NodeId num_nodes = 0;
  detect::Seeds seeds;
  detect::IterativeConfig detect;
};

HarnessRun RunSmallHarness(sim::AdversaryKind kind, int threads,
                           std::uint64_t seed = 7) {
  // Large enough that the prelude epoch does not already isolate the fake
  // cluster — the attack must actually unfold across the intervals.
  util::Rng graph_rng(seed + 100);
  const auto legit =
      gen::ErdosRenyi({.num_nodes = 400, .num_edges = 1600}, graph_rng);
  sim::TemporalEvalConfig cfg;
  cfg.seed = seed;
  cfg.num_fakes = 60;
  cfg.num_intervals = 3;
  cfg.requests_per_spammer_per_interval = 5;
  cfg.adversary = kind;

  sim::TemporalWorld world(legit, cfg);
  sim::AdaptiveAdversary adversary(world);
  util::Rng seed_rng(seed ^ 0x5eedULL);
  const auto seeds = world.SampleSeeds(12, 6, seed_rng);

  study::EarlyDetectionConfig ecfg;
  ecfg.detect.target_detections = world.NumFakes();
  ecfg.detect.maar.seed = 23;
  ecfg.detect.maar.num_threads = threads;

  HarnessRun run;
  run.res = study::RunEarlyDetection(world, adversary, seeds, ecfg);
  run.log = world.Log();
  run.spammers = world.Spammers();
  for (graph::NodeId f : world.Spammers()) {
    run.spam_accepted.push_back(world.SpamAccepted(f));
  }
  run.num_nodes = world.NumNodes();
  run.seeds = seeds;
  run.detect = ecfg.detect;
  return run;
}

TEST(EarlyDetectionTest, FinalEpochBitIdenticalToBatchAtEveryWidth) {
  for (sim::AdversaryKind kind : {sim::AdversaryKind::kStaticCampaign,
                                  sim::AdversaryKind::kRejectionRetarget}) {
    const HarnessRun base = RunSmallHarness(kind, 1);
    for (int threads : kThreadWidths) {
      const HarnessRun run = RunSmallHarness(kind, threads);

      // Thread-invariant epochs => thread-invariant feedback => same log.
      ASSERT_EQ(run.log.NumRequests(), base.log.NumRequests());
      for (std::size_t i = 0; i < run.log.NumRequests(); ++i) {
        ASSERT_TRUE(run.log.Requests()[i] == base.log.Requests()[i]);
      }

      // The pin: final epoch == one-shot batch on the full log.
      const graph::AugmentedGraph g = run.log.BuildAugmentedGraph();
      const auto batch =
          detect::DetectFriendSpammers(g, run.seeds, run.detect);
      EXPECT_EQ(run.res.final_detection.detected, batch.detected)
          << sim::AdversaryName(kind) << " threads=" << threads;
      ASSERT_EQ(run.res.final_detection.rounds.size(), batch.rounds.size());
      for (std::size_t r = 0; r < batch.rounds.size(); ++r) {
        EXPECT_EQ(run.res.final_detection.rounds[r].detected,
                  batch.rounds[r].detected);
        EXPECT_EQ(run.res.final_detection.rounds[r].k, batch.rounds[r].k);
        EXPECT_EQ(run.res.final_detection.rounds[r].ratio,
                  batch.rounds[r].ratio);
      }
    }
  }
}

TEST(EarlyDetectionTest, MetricsAreInternallyConsistent) {
  const HarnessRun run =
      RunSmallHarness(sim::AdversaryKind::kStaticCampaign, 1);
  const auto& res = run.res;

  ASSERT_EQ(res.curve.size(), 3u);  // one EpochPoint per attack interval
  for (std::size_t i = 1; i < res.curve.size(); ++i) {
    EXPECT_GE(res.curve[i].requests_replayed,
              res.curve[i - 1].requests_replayed);
  }

  EXPECT_EQ(res.spammers_total, run.spammers.size());
  EXPECT_LE(res.spammers_detected, res.spammers_total);
  EXPECT_LE(res.incremental_flags, res.spammers_total);
  EXPECT_LE(res.total_spam_accepted, res.total_spam_requests);

  ASSERT_EQ(res.time_to_detection.size(), run.num_nodes);
  ASSERT_EQ(res.harm_before_detection.size(), run.num_nodes);
  for (std::size_t i = 0; i < run.spammers.size(); ++i) {
    const graph::NodeId f = run.spammers[i];
    const std::int64_t ttd = res.time_to_detection[f];
    EXPECT_GE(ttd, -1);
    // Harm is accepted-at-flag-time, so never more than total accepted; a
    // never-flagged spammer carries its full harm.
    EXPECT_LE(res.harm_before_detection[f], run.spam_accepted[i]);
    if (ttd < 0) {
      EXPECT_EQ(res.harm_before_detection[f], run.spam_accepted[i]);
    }
  }

  // Checkpoint stats only ever score active (unsuspended) spammers.
  for (const auto& cp : res.checkpoints) {
    EXPECT_LE(cp.flagged, cp.scored);
    EXPECT_LE(cp.scored, res.spammers_total);
  }
}

TEST(EarlyDetectionTest, DetectsSpammersAndRecordsHarm) {
  const HarnessRun run =
      RunSmallHarness(sim::AdversaryKind::kStaticCampaign, 1);
  // A full-volume static campaign against a 300-user graph is the paper's
  // easy case: the detector must catch most of the region.
  EXPECT_GE(run.res.spammers_detected, run.res.spammers_total / 2);
  EXPECT_GT(run.res.total_spam_requests, 0u);
  EXPECT_GT(run.res.curve.back().recall, 0.5);
}

TEST(EarlyDetectionTest, RejectsBadCheckpointConfigs) {
  util::Rng graph_rng(1);
  const auto legit =
      gen::ErdosRenyi({.num_nodes = 120, .num_edges = 480}, graph_rng);
  sim::TemporalEvalConfig cfg;
  cfg.num_fakes = 10;
  cfg.num_intervals = 1;
  sim::TemporalWorld world(legit, cfg);
  sim::AdaptiveAdversary adversary(world);
  util::Rng seed_rng(2);
  const auto seeds = world.SampleSeeds(5, 3, seed_rng);

  study::EarlyDetectionConfig ecfg;
  ecfg.detect.target_detections = world.NumFakes();
  ecfg.checkpoints = {5, 5, 10};
  EXPECT_THROW(study::RunEarlyDetection(world, adversary, seeds, ecfg),
               std::invalid_argument);
  ecfg.checkpoints = {0, 5};
  EXPECT_THROW(study::RunEarlyDetection(world, adversary, seeds, ecfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace rejecto
