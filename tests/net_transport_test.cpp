// End-to-end differential for the wire transports: distributed detection
// with every fetch/update crossing RJNET001 frames over the deterministic
// simulated network must be bit-identical to the legacy loopback result —
// under clean links, 10% flaky links, injected partitions, mid-sweep
// worker crashes, and corrupted frames — with the faults visible in the
// wire counters, and with identical results at 1/2/8 workers.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "detect/iterative.h"
#include "engine/cluster.h"
#include "engine/dist_detector.h"
#include "engine/net_worker.h"
#include "gen/erdos_renyi.h"
#include "net/sim_net.h"
#include "sim/scenario.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace rejecto::engine {
namespace {

struct World {
  sim::Scenario scenario;
  detect::Seeds seeds;
  detect::IterativeConfig cfg;
};

World MakeWorld() {
  util::Rng rng(55);
  const auto legit =
      gen::ErdosRenyi({.num_nodes = 400, .num_edges = 1600}, rng);
  sim::ScenarioConfig scfg;
  scfg.seed = 5;
  scfg.num_fakes = 80;
  World w{sim::BuildScenario(legit, scfg), {}, {}};
  util::Rng seed_rng(6);
  w.seeds = w.scenario.SampleSeeds(10, 4, seed_rng);
  w.cfg.target_detections = 80;
  w.cfg.maar.seed = 3;
  return w;
}

void ExpectSameDetection(const DistDetectionResult& got,
                         const DistDetectionResult& want,
                         const std::string& label) {
  EXPECT_EQ(got.detection.detected, want.detection.detected) << label;
  EXPECT_EQ(got.detection.hit_target, want.detection.hit_target) << label;
  ASSERT_EQ(got.detection.rounds.size(), want.detection.rounds.size())
      << label;
  for (std::size_t r = 0; r < want.detection.rounds.size(); ++r) {
    EXPECT_EQ(got.detection.rounds[r].detected,
              want.detection.rounds[r].detected)
        << label << " round " << r;
    EXPECT_EQ(got.detection.rounds[r].ratio, want.detection.rounds[r].ratio)
        << label << " round " << r;
  }
}

ClusterConfig LoopbackConfig(std::uint32_t workers = 3) {
  return {.num_workers = workers, .prefetch_batch = 32,
          .buffer_capacity = 512};
}

ClusterConfig SimNetConfigFor(std::uint32_t workers,
                              const net::LinkFaults& link = {},
                              std::uint64_t seed = 42) {
  ClusterConfig cfg = LoopbackConfig(workers);
  cfg.transport = net::TransportKind::kSimNet;
  cfg.sim.default_link = link;
  cfg.sim.seed = seed;
  return cfg;
}

// ---------- Bit-identity over the wire ----------

TEST(SimNetTransportTest, CleanLinksBitIdenticalToLoopbackAtOneTwoEightWorkers) {
  const World w = MakeWorld();
  for (const std::uint32_t workers : {1u, 2u, 8u}) {
    Cluster loop(LoopbackConfig(workers));
    const auto baseline = DetectFriendSpammersDistributed(
        w.scenario.graph, w.seeds, w.cfg, loop);

    Cluster wired(SimNetConfigFor(workers));
    const auto over_wire = DetectFriendSpammersDistributed(
        w.scenario.graph, w.seeds, w.cfg, wired);

    ExpectSameDetection(over_wire, baseline,
                        "simnet vs loopback @" + std::to_string(workers));

    // The detection really crossed the wire.
    EXPECT_GT(over_wire.io.wire.frames_sent, 0u);
    EXPECT_GT(over_wire.io.wire.frames_received, 0u);
    EXPECT_GT(over_wire.io.wire.bytes_sent, 0u);
    EXPECT_GT(over_wire.io.wire.bytes_received, 0u);
    EXPECT_EQ(over_wire.io.wire.timeouts, 0u) << "clean links";
    EXPECT_EQ(over_wire.io.shard_failovers, 0u);
    // And the loopback baseline never encoded a frame.
    EXPECT_EQ(baseline.io.wire.frames_sent, 0u);

    // Per-round records cover every store built and sum to the total.
    ASSERT_EQ(over_wire.per_round.size(),
              static_cast<std::size_t>(over_wire.stores_built));
    std::uint64_t frames = 0;
    for (const IoStats& round : over_wire.per_round) {
      frames += round.wire.frames_sent;
    }
    EXPECT_EQ(frames, over_wire.io.wire.frames_sent);
  }
}

TEST(SimNetTransportTest, WorkersHoldOnlyTheNewestGeneration) {
  const World w = MakeWorld();
  Cluster wired(SimNetConfigFor(3));
  // Overshoot the fake population so detection needs several residual
  // rounds — each publishing a fresh store generation to every worker.
  detect::IterativeConfig multi = w.cfg;
  multi.target_detections = 140;
  const auto result = DetectFriendSpammersDistributed(w.scenario.graph,
                                                      w.seeds, multi, wired);
  EXPECT_GT(result.stores_built, 1);
  for (std::uint32_t p = 0; p < 3; ++p) {
    const ShardWorker* worker = wired.SimWorker(p);
    ASSERT_NE(worker, nullptr);
    EXPECT_GT(worker->FramesServed(), 0u);
    // Each new round's push dropped the previous generation.
    EXPECT_EQ(worker->NumStores(), 1u);
  }
  EXPECT_EQ(wired.SimWorker(7), nullptr);
}

TEST(SimNetTransportTest, FlakyLinksAndMidSweepCrashStayBitIdentical) {
  const World w = MakeWorld();
  Cluster loop(LoopbackConfig(3));
  const auto baseline =
      DetectFriendSpammersDistributed(w.scenario.graph, w.seeds, w.cfg, loop);

  // ISSUE acceptance: 10% flaky links + a worker crash mid-sweep.
  net::LinkFaults flaky;
  flaky.drop_p = 0.10;
  flaky.jitter_us = 20.0;
  Cluster wired(SimNetConfigFor(3, flaky, 77));
  util::ScopedFailpoint crash("engine/worker_crash",
                              util::FailpointPolicy::OnNth(40));
  const auto faulted = DetectFriendSpammersDistributed(w.scenario.graph,
                                                       w.seeds, w.cfg, wired);

  ExpectSameDetection(faulted, baseline, "flaky simnet + crash");
  EXPECT_EQ(wired.NumDeadWorkers(), 1u);
  EXPECT_GE(faulted.io.shard_failovers, 1u);
  EXPECT_GT(faulted.io.wire.timeouts, 0u) << "dropped frames cost deadlines";
  EXPECT_GT(faulted.io.wire.dropped_frames, 0u);
  EXPECT_GT(faulted.io.fetch_retries, 0u);
  EXPECT_GT(faulted.io.simulated_backoff_us, 0.0);
}

TEST(SimNetTransportTest, PartitionedLinkFailsOverAndStaysBitIdentical) {
  const World w = MakeWorld();
  Cluster loop(LoopbackConfig(3));
  const auto baseline =
      DetectFriendSpammersDistributed(w.scenario.graph, w.seeds, w.cfg, loop);

  // Worker 1's link is down from the start: every partition push to it
  // must fail over at store-build time, and detection must not notice.
  ClusterConfig cfg = SimNetConfigFor(3);
  cfg.sim.link_overrides.push_back({1u, net::LinkFaults{.partitioned = true}});
  // Keep the virtual deadline spend bounded: the partition burns the full
  // publish timeout once per attempt, every round.
  cfg.fetch.max_attempts = 2;
  Cluster wired(cfg);
  const auto faulted = DetectFriendSpammersDistributed(w.scenario.graph,
                                                       w.seeds, w.cfg, wired);

  ExpectSameDetection(faulted, baseline, "partitioned simnet");
  EXPECT_GE(faulted.io.shard_failovers,
            static_cast<std::uint64_t>(faulted.stores_built))
      << "every round's push to the partitioned worker failed over";
  EXPECT_GT(faulted.io.wire.timeouts, 0u);
}

TEST(SimNetTransportTest, CorruptFramesAreRejectedAndStayBitIdentical) {
  const World w = MakeWorld();
  Cluster loop(LoopbackConfig(3));
  const auto baseline =
      DetectFriendSpammersDistributed(w.scenario.graph, w.seeds, w.cfg, loop);

  net::LinkFaults lossy;
  lossy.corrupt_p = 0.15;
  Cluster wired(SimNetConfigFor(3, lossy, 11));
  const auto faulted = DetectFriendSpammersDistributed(w.scenario.graph,
                                                       w.seeds, w.cfg, wired);

  ExpectSameDetection(faulted, baseline, "corrupting simnet");
  EXPECT_GT(faulted.io.wire.corrupt_frames, 0u)
      << "the CRC must actually have rejected frames";
}

TEST(SimNetTransportTest, WireFailpointsRetryAndStayBitIdentical) {
  const World w = MakeWorld();
  Cluster loop(LoopbackConfig(3));
  const auto baseline =
      DetectFriendSpammersDistributed(w.scenario.graph, w.seeds, w.cfg, loop);

  Cluster wired(SimNetConfigFor(3));
  util::ScopedFailpoint lost("net/send_frame",
                             util::FailpointPolicy::Probability(0.05, 13));
  util::ScopedFailpoint flip("net/corrupt_frame",
                             util::FailpointPolicy::Probability(0.05, 17));
  const auto faulted = DetectFriendSpammersDistributed(w.scenario.graph,
                                                       w.seeds, w.cfg, wired);

  ExpectSameDetection(faulted, baseline, "failpoint-injected wire faults");
  EXPECT_GT(faulted.io.wire.dropped_frames + faulted.io.wire.corrupt_frames,
            0u);
  EXPECT_GT(faulted.io.fetch_retries, 0u);
}

TEST(SimNetTransportTest, ReplayIsByteForByteDeterministic) {
  const World w = MakeWorld();
  net::LinkFaults flaky;
  flaky.drop_p = 0.10;
  flaky.jitter_us = 20.0;

  auto run = [&](std::uint64_t seed) {
    Cluster wired(SimNetConfigFor(3, flaky, seed));
    const auto result = DetectFriendSpammersDistributed(w.scenario.graph,
                                                        w.seeds, w.cfg, wired);
    auto* sim = static_cast<net::SimNetwork*>(wired.Transport());
    return std::pair<std::uint64_t, std::uint64_t>(
        sim->TraceHash(), result.io.wire.frames_sent);
  };

  const auto a = run(9);
  const auto b = run(9);
  const auto c = run(10);
  EXPECT_EQ(a.first, b.first) << "same seed: identical wire schedule";
  EXPECT_EQ(a.second, b.second);
  EXPECT_NE(a.first, c.first) << "different seed: different schedule";
}

// ---------- Config validation (ISSUE satellite) ----------

TEST(TransportConfigTest, ValidationErrorsCarryFileAndLine) {
  try {
    Cluster cluster({.num_workers = 0});
    FAIL() << "zero workers must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cluster.cpp:"), std::string::npos) << what;
    EXPECT_NE(what.find("num_workers"), std::string::npos) << what;
  }

  ClusterConfig bad{.num_workers = 2};
  bad.fetch.max_attempts = 0;
  try {
    Cluster cluster(bad);
    FAIL() << "zero max_attempts must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard_store.cpp:"), std::string::npos) << what;
    EXPECT_NE(what.find("max_attempts"), std::string::npos) << what;
  }

  bad = ClusterConfig{.num_workers = 2};
  bad.fetch.attempt_timeout_us = -1.0;
  EXPECT_THROW(Cluster{bad}, std::invalid_argument);
  bad = ClusterConfig{.num_workers = 2};
  bad.fetch.publish_timeout_us = -1.0;
  EXPECT_THROW(Cluster{bad}, std::invalid_argument);

  // simnet peer count must match the worker count when set.
  bad = ClusterConfig{.num_workers = 2};
  bad.transport = net::TransportKind::kSimNet;
  bad.sim.num_peers = 3;
  EXPECT_THROW(Cluster{bad}, std::invalid_argument);
  bad.sim.num_peers = 0;  // auto-filled: fine
  EXPECT_NO_THROW(Cluster{bad});

  // socket endpoints must be one per worker and parseable.
  bad = ClusterConfig{.num_workers = 2};
  bad.transport = net::TransportKind::kSocket;
  bad.socket.endpoints = {"unix:/tmp/only_one.sock"};
  EXPECT_THROW(Cluster{bad}, std::invalid_argument);
  bad.socket.endpoints = {"unix:/tmp/a.sock", "tcp:localhost"};
  EXPECT_THROW(Cluster{bad}, std::invalid_argument);
}

TEST(TransportConfigTest, KindParsingAndEnvKnob) {
  EXPECT_EQ(net::ParseTransportKind("loopback"),
            net::TransportKind::kLoopback);
  EXPECT_EQ(net::ParseTransportKind("simnet"), net::TransportKind::kSimNet);
  EXPECT_EQ(net::ParseTransportKind("socket"), net::TransportKind::kSocket);
  EXPECT_THROW(net::ParseTransportKind("carrier-pigeon"),
               std::invalid_argument);
  EXPECT_STREQ(net::TransportKindName(net::TransportKind::kSimNet),
               "simnet");
}

}  // namespace
}  // namespace rejecto::engine
