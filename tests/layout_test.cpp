// graph/layout.h: permutation plumbing units and the detection-invariance
// property — relayout must never change what the detector reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "detect/iterative.h"
#include "gen/erdos_renyi.h"
#include "gen/holme_kim.h"
#include "graph/builder.h"
#include "graph/layout.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace rejecto {
namespace {

using graph::ApplyLayout;
using graph::AugmentedGraph;
using graph::ComputeLayout;
using graph::IdentityLayout;
using graph::InvertLayout;
using graph::Layout;
using graph::LayoutFromPermutation;
using graph::LayoutPolicy;
using graph::NodeId;

AugmentedGraph MakeSmallAugmented() {
  graph::GraphBuilder b(6);
  b.AddFriendship(0, 1);
  b.AddFriendship(1, 2);
  b.AddFriendship(2, 0);
  b.AddFriendship(3, 4);
  b.AddRejection(0, 3);
  b.AddRejection(4, 3);
  b.AddRejection(5, 0);  // 5 has arcs but no friendships
  return b.BuildAugmented();
}

Layout RandomLayout(NodeId n, util::Rng& rng) {
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  for (NodeId i = n - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.NextUInt(i + 1)]);
  }
  return LayoutFromPermutation(std::move(perm));
}

// ---------- policy parsing ----------

TEST(LayoutPolicyTest, ParsesAndNames) {
  EXPECT_EQ(graph::ParseLayoutPolicy("identity"), LayoutPolicy::kIdentity);
  EXPECT_EQ(graph::ParseLayoutPolicy("bfs"), LayoutPolicy::kBfs);
  EXPECT_THROW(graph::ParseLayoutPolicy("BFS"), std::invalid_argument);
  EXPECT_THROW(graph::ParseLayoutPolicy(""), std::invalid_argument);
  EXPECT_STREQ(graph::LayoutPolicyName(LayoutPolicy::kIdentity), "identity");
  EXPECT_STREQ(graph::LayoutPolicyName(LayoutPolicy::kBfs), "bfs");
}

// ---------- permutation plumbing ----------

TEST(LayoutTest, IdentityLayoutIsExplicitAndSelfInverse) {
  const Layout id = IdentityLayout(4);
  EXPECT_FALSE(id.IsIdentity());  // explicitly filled, not the empty form
  EXPECT_EQ(id.new_of_old, (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(id.old_of_new, id.new_of_old);
  EXPECT_EQ(InvertLayout(id), id);
}

TEST(LayoutTest, LayoutFromPermutationRejectsNonBijections) {
  EXPECT_THROW(LayoutFromPermutation({0, 0}), std::invalid_argument);
  EXPECT_THROW(LayoutFromPermutation({0, 5}), std::invalid_argument);
  EXPECT_THROW(LayoutFromPermutation({1, 2, 0, 1}), std::invalid_argument);
  const Layout ok = LayoutFromPermutation({2, 0, 1});
  EXPECT_EQ(ok.old_of_new, (std::vector<NodeId>{1, 2, 0}));
}

TEST(LayoutTest, ApplyLayoutRemapsRowsAndSorts) {
  const AugmentedGraph g = MakeSmallAugmented();
  // Reverse the ids: old i -> new (5 - i).
  const Layout rev = LayoutFromPermutation({5, 4, 3, 2, 1, 0});
  const AugmentedGraph r = ApplyLayout(g, rev);
  EXPECT_EQ(r.NumNodes(), g.NumNodes());
  EXPECT_EQ(r.Friendships().NumEdges(), g.Friendships().NumEdges());
  EXPECT_EQ(r.Rejections().NumArcs(), g.Rejections().NumArcs());
  // Edge 0-1 becomes 5-4; arc 5->0 becomes 0->5.
  EXPECT_TRUE(r.Friendships().HasEdge(5, 4));
  EXPECT_TRUE(r.Rejections().HasArc(0, 5));
  // Rows stay sorted after the remap.
  for (NodeId v = 0; v < r.NumNodes(); ++v) {
    const auto row = r.Friendships().Neighbors(v);
    EXPECT_TRUE(std::is_sorted(row.begin(), row.end()));
  }
}

TEST(LayoutTest, EmptyLayoutIsIdentityAndSizeMismatchThrows) {
  const AugmentedGraph g = MakeSmallAugmented();
  const AugmentedGraph same = ApplyLayout(g, Layout{});
  EXPECT_EQ(same, g);
  EXPECT_THROW(ApplyLayout(g, LayoutFromPermutation({1, 0})),
               std::invalid_argument);
}

TEST(LayoutTest, InvertUndoesApply) {
  util::Rng rng(11);
  const auto legit =
      gen::ErdosRenyi({.num_nodes = 200, .num_edges = 600}, rng);
  sim::ScenarioConfig cfg;
  cfg.num_fakes = 30;
  const auto scenario = sim::BuildScenario(legit, cfg);
  const Layout lay = RandomLayout(scenario.graph.NumNodes(), rng);
  const AugmentedGraph there = ApplyLayout(scenario.graph, lay);
  const AugmentedGraph back = ApplyLayout(there, InvertLayout(lay));
  EXPECT_EQ(back, scenario.graph);
}

// ---------- mask / id translation ----------

TEST(LayoutTest, MaskTranslationRoundTrips) {
  util::Rng rng(23);
  const NodeId n = 50;
  const Layout lay = RandomLayout(n, rng);
  std::vector<char> mask(n, 0);
  for (auto& c : mask) c = rng.NextBool(0.4) ? 1 : 0;

  const std::vector<char> laid = graph::MaskToLayout(lay, mask);
  EXPECT_EQ(graph::MaskFromLayout(lay, laid), mask);
  for (NodeId old = 0; old < n; ++old) {
    EXPECT_EQ(laid[lay.new_of_old[old]], mask[old]);
  }
  // Identity layout is a passthrough; size mismatch throws.
  EXPECT_EQ(graph::MaskToLayout(Layout{}, mask), mask);
  EXPECT_THROW(graph::MaskToLayout(lay, std::vector<char>(n + 1, 0)),
               std::invalid_argument);
}

TEST(LayoutTest, IdTranslationRoundTripsAndChecksRange) {
  util::Rng rng(29);
  const NodeId n = 40;
  const Layout lay = RandomLayout(n, rng);
  const std::vector<NodeId> ids = {0, 7, 7, 39, 12};
  const std::vector<NodeId> laid = graph::IdsToLayout(lay, ids);
  EXPECT_EQ(graph::IdsFromLayout(lay, laid), ids);
  EXPECT_THROW(graph::IdsToLayout(lay, {40}), std::invalid_argument);
  EXPECT_THROW(graph::IdsFromLayout(lay, {40}), std::invalid_argument);
  EXPECT_EQ(graph::IdsToLayout(Layout{}, ids), ids);
}

// ---------- ComputeLayout ----------

TEST(LayoutTest, ComputeLayoutIdentityPolicyIsEmpty) {
  const AugmentedGraph g = MakeSmallAugmented();
  EXPECT_TRUE(ComputeLayout(g, LayoutPolicy::kIdentity).IsIdentity());
}

TEST(LayoutTest, BfsLayoutIsADeterministicBijectionCoveringAllNodes) {
  util::Rng rng(31);
  const auto legit =
      gen::HolmeKim({.num_nodes = 300, .edges_per_node = 3}, rng);
  sim::ScenarioConfig cfg;
  cfg.num_fakes = 40;
  const auto scenario = sim::BuildScenario(legit, cfg);

  const Layout a = ComputeLayout(scenario.graph, LayoutPolicy::kBfs);
  const Layout b = ComputeLayout(scenario.graph, LayoutPolicy::kBfs);
  EXPECT_EQ(a, b) << "BFS layout must be a pure function of the graph";

  const NodeId n = scenario.graph.NumNodes();
  ASSERT_EQ(a.new_of_old.size(), n);
  ASSERT_EQ(a.old_of_new.size(), n);
  std::vector<char> seen(n, 0);
  for (NodeId old = 0; old < n; ++old) {
    const NodeId t = a.new_of_old[old];
    ASSERT_LT(t, n);
    EXPECT_FALSE(seen[t]);
    seen[t] = 1;
    EXPECT_EQ(a.old_of_new[t], old);
  }
}

TEST(LayoutTest, BfsLayoutStartsAtTheHighestCombinedDegreeHub) {
  const AugmentedGraph g = MakeSmallAugmented();
  std::uint32_t best = 0;
  NodeId hub = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const std::uint32_t d = g.Friendships().Degree(v) +
                            g.Rejections().InDegree(v) +
                            g.Rejections().OutDegree(v);
    if (d > best) {
      best = d;
      hub = v;
    }
  }
  const Layout lay = ComputeLayout(g, LayoutPolicy::kBfs);
  EXPECT_EQ(lay.old_of_new[0], hub);
}

// ---------- detection invariance ----------

struct RunSignature {
  std::vector<NodeId> detected;
  std::vector<std::vector<NodeId>> round_detected;
  std::vector<double> ratios;
  std::vector<graph::CutQuantities> cuts;

  static RunSignature Of(const detect::DetectionResult& r) {
    RunSignature s;
    s.detected = r.detected;
    for (const auto& round : r.rounds) {
      s.round_detected.push_back(round.detected);
      s.ratios.push_back(round.ratio);
      s.cuts.push_back(round.cut);
    }
    return s;
  }
};

void ExpectSameRun(const RunSignature& a, const RunSignature& b,
                   const std::string& what) {
  EXPECT_EQ(a.detected, b.detected) << what << ": detected set/order";
  ASSERT_EQ(a.ratios.size(), b.ratios.size()) << what << ": round count";
  for (std::size_t i = 0; i < a.ratios.size(); ++i) {
    EXPECT_EQ(a.round_detected[i], b.round_detected[i])
        << what << ": round " << i << " detections";
    EXPECT_EQ(a.ratios[i], b.ratios[i]) << what << ": round " << i
                                        << " MAAR ratio (must be bit-equal)";
    EXPECT_EQ(a.cuts[i].cross_friendships, b.cuts[i].cross_friendships)
        << what << ": round " << i;
    EXPECT_EQ(a.cuts[i].rejections_into_u, b.cuts[i].rejections_into_u)
        << what << ": round " << i;
    EXPECT_EQ(a.cuts[i].rejections_from_u, b.cuts[i].rejections_from_u)
        << what << ": round " << i;
  }
}

// Runs the pipeline on ApplyLayout(g, lay) with the invariance rank set and
// every input/output translated at the boundary — the manual version of
// what MaarConfig::layout automates.
RunSignature RunThroughLayout(const AugmentedGraph& g,
                              const detect::Seeds& seeds,
                              detect::IterativeConfig cfg, const Layout& lay,
                              int threads) {
  cfg.maar.num_threads = threads;
  detect::Seeds laid_seeds;
  laid_seeds.legit = graph::IdsToLayout(lay, seeds.legit);
  laid_seeds.spammer = graph::IdsToLayout(lay, seeds.spammer);
  cfg.maar.rank = lay.old_of_new;
  const AugmentedGraph laid = ApplyLayout(g, lay);
  auto result = detect::DetectFriendSpammers(laid, laid_seeds, cfg);
  result.detected = graph::IdsFromLayout(lay, result.detected);
  for (auto& round : result.rounds) {
    round.detected = graph::IdsFromLayout(lay, round.detected);
  }
  return RunSignature::Of(result);
}

class LayoutInvarianceTest : public ::testing::TestWithParam<std::uint64_t> {
};

// 100+ random graphs (25 parameterized instances x 4 graphs each): the
// detector through a random permutation AND through the public kBfs policy
// must reproduce the identity run exactly — same detected ids in the same
// order, bit-equal MAAR ratios, identical per-round cut quantities — at 1,
// 2, and 8 threads.
TEST_P(LayoutInvarianceTest, DetectionIsInvariantUnderRelayout) {
  const std::uint64_t instance = GetParam();
  for (std::uint64_t sub = 0; sub < 4; ++sub) {
    const std::uint64_t case_seed = instance * 131 + sub * 17 + 3;
    util::Rng rng(case_seed);
    const NodeId n = 150 + static_cast<NodeId>(rng.NextUInt(250));
    const auto legit = rng.NextBool(0.5)
                           ? gen::ErdosRenyi(
                                 {.num_nodes = n, .num_edges = 4 * n}, rng)
                           : gen::HolmeKim(
                                 {.num_nodes = n, .edges_per_node = 3}, rng);
    sim::ScenarioConfig cfg;
    cfg.seed = case_seed;
    cfg.num_fakes = 20 + static_cast<NodeId>(rng.NextUInt(60));
    cfg.requests_per_spammer = 10;
    cfg.spam_rejection_rate = 0.7;
    cfg.legit_rejection_rate = rng.NextDouble(0.0, 0.4);
    const auto scenario = sim::BuildScenario(legit, cfg);

    util::Rng seed_rng(case_seed + 1);
    const auto seeds = scenario.SampleSeeds(8, 3, seed_rng);

    detect::IterativeConfig dcfg;
    dcfg.target_detections = cfg.num_fakes;
    dcfg.maar.seed = case_seed;
    dcfg.maar.num_random_inits = 1;
    dcfg.maar.k_scale = 4.0;

    const auto identity = RunSignature::Of(
        detect::DetectFriendSpammers(scenario.graph, seeds, dcfg));

    const Layout random_lay =
        RandomLayout(scenario.graph.NumNodes(), seed_rng);
    // Rotate the thread count across cases; every instance covers 1, 2,
    // and 8 within its four sub-cases.
    const int threads[] = {1, 2, 8, static_cast<int>(1 + (instance % 8))};
    for (int t : {threads[sub]}) {
      ExpectSameRun(identity,
                    RunThroughLayout(scenario.graph, seeds, dcfg,
                                     random_lay, t),
                    "random permutation, threads=" + std::to_string(t) +
                        ", case=" + std::to_string(case_seed));
    }

    // Public path: MaarConfig::layout does compute/apply/translate itself.
    detect::IterativeConfig bfs_cfg = dcfg;
    bfs_cfg.maar.layout = LayoutPolicy::kBfs;
    bfs_cfg.maar.num_threads = threads[sub];
    ExpectSameRun(
        identity,
        RunSignature::Of(
            detect::DetectFriendSpammers(scenario.graph, seeds, bfs_cfg)),
        "kBfs policy, case=" + std::to_string(case_seed));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LayoutInvarianceTest,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace rejecto
