#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "detect/bucket_list.h"

namespace rejecto::detect {
namespace {

TEST(BucketListTest, EmptyInitially) {
  BucketList bl(10, 5.0, 4.0);
  EXPECT_TRUE(bl.Empty());
  EXPECT_EQ(bl.Size(), 0u);
  EXPECT_EQ(bl.MaxGainNode(), graph::kInvalidNode);
  EXPECT_EQ(bl.PopMax(), graph::kInvalidNode);
}

TEST(BucketListTest, InsertContainsPop) {
  BucketList bl(10, 5.0, 4.0);
  bl.Insert(3, 1.0);
  EXPECT_TRUE(bl.Contains(3));
  EXPECT_FALSE(bl.Contains(4));
  EXPECT_EQ(bl.Size(), 1u);
  EXPECT_EQ(bl.PopMax(), 3u);
  EXPECT_TRUE(bl.Empty());
  EXPECT_FALSE(bl.Contains(3));
}

TEST(BucketListTest, PopMaxReturnsHighestGain) {
  BucketList bl(10, 10.0, 4.0);
  bl.Insert(0, -2.0);
  bl.Insert(1, 3.5);
  bl.Insert(2, 1.0);
  EXPECT_EQ(bl.PopMax(), 1u);
  EXPECT_EQ(bl.PopMax(), 2u);
  EXPECT_EQ(bl.PopMax(), 0u);
}

TEST(BucketListTest, NegativeGainsOrdered) {
  BucketList bl(10, 10.0, 4.0);
  bl.Insert(0, -5.0);
  bl.Insert(1, -1.0);
  EXPECT_EQ(bl.PopMax(), 1u);
  EXPECT_EQ(bl.PopMax(), 0u);
}

TEST(BucketListTest, LifoWithinBucket) {
  BucketList bl(10, 5.0, 4.0);
  bl.Insert(1, 2.0);
  bl.Insert(2, 2.0);
  bl.Insert(3, 2.0);
  EXPECT_EQ(bl.PopMax(), 3u);  // last inserted, first out
  EXPECT_EQ(bl.PopMax(), 2u);
  EXPECT_EQ(bl.PopMax(), 1u);
}

TEST(BucketListTest, RemoveMiddleOfBucket) {
  BucketList bl(10, 5.0, 4.0);
  bl.Insert(1, 2.0);
  bl.Insert(2, 2.0);
  bl.Insert(3, 2.0);
  bl.Remove(2);
  EXPECT_EQ(bl.Size(), 2u);
  EXPECT_EQ(bl.PopMax(), 3u);
  EXPECT_EQ(bl.PopMax(), 1u);
}

TEST(BucketListTest, UpdateMovesBuckets) {
  BucketList bl(10, 10.0, 4.0);
  bl.Insert(0, 1.0);
  bl.Insert(1, 2.0);
  bl.Update(0, 5.0);
  EXPECT_EQ(bl.PopMax(), 0u);
  bl.Update(1, -3.0);
  bl.Insert(2, 0.0);
  EXPECT_EQ(bl.PopMax(), 2u);
  EXPECT_EQ(bl.PopMax(), 1u);
}

TEST(BucketListTest, UpdateSameBucketKeepsNode) {
  BucketList bl(10, 10.0, 1.0);  // coarse: resolution 1 bucket per unit
  bl.Insert(0, 2.2);
  bl.Update(0, 2.4);  // same quantized bucket
  EXPECT_TRUE(bl.Contains(0));
  EXPECT_EQ(bl.PopMax(), 0u);
}

TEST(BucketListTest, GainsBeyondBoundClampToEndBuckets) {
  BucketList bl(10, 2.0, 4.0);
  bl.Insert(0, 100.0);   // clamps to +max bucket
  bl.Insert(1, -100.0);  // clamps to -max bucket
  bl.Insert(2, 0.0);
  EXPECT_EQ(bl.PopMax(), 0u);
  EXPECT_EQ(bl.PopMax(), 2u);
  EXPECT_EQ(bl.PopMax(), 1u);
}

TEST(BucketListTest, DoubleInsertThrows) {
  BucketList bl(10, 5.0, 4.0);
  bl.Insert(0, 1.0);
  EXPECT_THROW(bl.Insert(0, 2.0), std::invalid_argument);
}

TEST(BucketListTest, RemoveAbsentThrows) {
  BucketList bl(10, 5.0, 4.0);
  EXPECT_THROW(bl.Remove(0), std::invalid_argument);
  EXPECT_THROW(bl.Update(0, 1.0), std::invalid_argument);
}

TEST(BucketListTest, InvalidConstructionThrows) {
  EXPECT_THROW(BucketList(10, 5.0, 0.0), std::invalid_argument);
  EXPECT_THROW(BucketList(10, -1.0, 4.0), std::invalid_argument);
}

TEST(BucketListTest, CollectTopOrdersDescending) {
  BucketList bl(10, 10.0, 4.0);
  bl.Insert(0, 1.0);
  bl.Insert(1, 5.0);
  bl.Insert(2, 3.0);
  bl.Insert(3, -2.0);
  std::vector<graph::NodeId> top;
  bl.CollectTop(3, top);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 2u);
  EXPECT_EQ(top[2], 0u);
}

TEST(BucketListTest, CollectTopMoreThanPresent) {
  BucketList bl(10, 10.0, 4.0);
  bl.Insert(0, 1.0);
  std::vector<graph::NodeId> top;
  bl.CollectTop(5, top);
  EXPECT_EQ(top.size(), 1u);
}

TEST(BucketListTest, CollectTopAppends) {
  BucketList bl(10, 10.0, 4.0);
  bl.Insert(0, 1.0);
  std::vector<graph::NodeId> top{9};
  bl.CollectTop(1, top);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 9u);
  EXPECT_EQ(top[1], 0u);
}

TEST(BucketListTest, MaxGainNodeDoesNotRemove) {
  BucketList bl(10, 10.0, 4.0);
  bl.Insert(0, 1.0);
  bl.Insert(1, 9.0);
  EXPECT_EQ(bl.MaxGainNode(), 1u);
  EXPECT_EQ(bl.Size(), 2u);
  EXPECT_EQ(bl.MaxGainNode(), 1u);
}

TEST(BucketListTest, InterleavedStressAgainstReferenceOrdering) {
  // Insert 100 nodes with arbitrary gains, update half, remove a quarter,
  // then verify PopMax drains in non-increasing quantized-gain order.
  BucketList bl(200, 50.0, 8.0);
  std::vector<double> gain(100);
  for (graph::NodeId v = 0; v < 100; ++v) {
    gain[v] = static_cast<double>((v * 37) % 41) - 20.0;
    bl.Insert(v, gain[v]);
  }
  for (graph::NodeId v = 0; v < 100; v += 2) {
    gain[v] = static_cast<double>((v * 13) % 29) - 14.0;
    bl.Update(v, gain[v]);
  }
  for (graph::NodeId v = 0; v < 100; v += 4) {
    bl.Remove(v);
    gain[v] = -1e9;  // sentinel: not present
  }
  double last = 1e18;
  while (!bl.Empty()) {
    const graph::NodeId v = bl.PopMax();
    ASSERT_NE(gain[v], -1e9) << "popped removed node";
    const double q = std::round(gain[v] * 8.0);
    ASSERT_LE(q, last);
    last = q;
    gain[v] = -1e9;
  }
  for (double g : gain) EXPECT_EQ(g, -1e9);  // everything drained exactly once
}

}  // namespace
}  // namespace rejecto::detect
