#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>
#include <vector>

namespace rejecto::util {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(1234);
  SplitMix64 b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(Xoshiro256Test, MinMaxBounds) {
  EXPECT_EQ(Xoshiro256::min(), 0u);
  EXPECT_EQ(Xoshiro256::max(), std::numeric_limits<std::uint64_t>::max());
}

TEST(Xoshiro256Test, ReproducibleStream) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
}

TEST(Xoshiro256Test, JumpProducesDisjointStream) {
  Xoshiro256 a(7), b(7);
  b.Jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);  // collisions are astronomically unlikely
}

TEST(RngTest, NextUIntRespectsBound) {
  Rng rng(5);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextUInt(bound), bound);
  }
}

TEST(RngTest, NextUIntZeroBoundThrows) {
  Rng rng(5);
  EXPECT_THROW(rng.NextUInt(0), std::invalid_argument);
}

TEST(RngTest, NextUIntBoundOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextUInt(1), 0u);
}

TEST(RngTest, NextUIntCoversSmallRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(8, 0);
  constexpr int kDraws = 80'000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextUInt(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 8, kDraws / 8 * 0.1);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextIntReversedThrows) {
  Rng rng(5);
  EXPECT_THROW(rng.NextInt(3, 2), std::invalid_argument);
}

TEST(RngTest, NextDoubleInHalfOpenUnit) {
  Rng rng(13);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleRangeRespected) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble(2.5, 4.0);
    EXPECT_GE(d, 2.5);
    EXPECT_LT(d, 4.0);
  }
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(17);
  int trues = 0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) trues += rng.NextBool(0.3);
  EXPECT_NEAR(trues, kDraws * 0.3, kDraws * 0.02);
}

TEST(RngTest, NextBoolEdgeProbabilities) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(19);
  double sum = 0, sq = 0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.03);
  EXPECT_NEAR(sq / kDraws, 1.0, 0.05);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.NextLogNormal(0.0, 1.0), 0.0);
}

TEST(RngTest, GeometricMeanMatchesTheory) {
  Rng rng(29);
  const double p = 0.25;
  double sum = 0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(rng.NextGeometric(p));
  }
  // E[failures before success] = (1-p)/p = 3.
  EXPECT_NEAR(sum / kDraws, 3.0, 0.15);
}

TEST(RngTest, GeometricPOneIsZero) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextGeometric(1.0), 0u);
}

TEST(RngTest, GeometricInvalidPThrows) {
  Rng rng(29);
  EXPECT_THROW(rng.NextGeometric(0.0), std::invalid_argument);
  EXPECT_THROW(rng.NextGeometric(-0.5), std::invalid_argument);
  EXPECT_THROW(rng.NextGeometric(1.5), std::invalid_argument);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(31);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto original = v;
  rng.Shuffle(v);
  EXPECT_NE(v, original);  // probability of identity is 1/50! ~ 0
}

TEST(RngTest, ForkStreamsAreIndependent) {
  Rng parent(41);
  Rng child = parent.Fork();
  Rng child2 = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (child() == child2()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

class SampleWithoutReplacementTest
    : public ::testing::TestWithParam<std::pair<std::uint64_t, std::uint64_t>> {
};

TEST_P(SampleWithoutReplacementTest, DistinctInRangeCorrectCount) {
  const auto [n, k] = GetParam();
  Rng rng(n * 1000 + k);
  const auto sample = rng.SampleWithoutReplacement(n, k);
  EXPECT_EQ(sample.size(), k);
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t v : sample) {
    EXPECT_LT(v, n);
    EXPECT_TRUE(seen.insert(v).second) << "duplicate " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SampleWithoutReplacementTest,
    ::testing::Values(std::pair<std::uint64_t, std::uint64_t>{1, 0},
                      std::pair<std::uint64_t, std::uint64_t>{1, 1},
                      std::pair<std::uint64_t, std::uint64_t>{10, 3},
                      std::pair<std::uint64_t, std::uint64_t>{10, 10},
                      std::pair<std::uint64_t, std::uint64_t>{1000, 5},
                      std::pair<std::uint64_t, std::uint64_t>{1000, 999},
                      std::pair<std::uint64_t, std::uint64_t>{100000, 50},
                      std::pair<std::uint64_t, std::uint64_t>{64, 32}));

TEST(SampleWithoutReplacementErrorTest, KGreaterThanNThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.SampleWithoutReplacement(3, 4), std::invalid_argument);
}

TEST(SampleWithoutReplacementStatTest, MarginalIsUniform) {
  // Each element of [0, 10) should appear in a 3-sample with prob 3/10.
  Rng rng(77);
  std::vector<int> counts(10, 0);
  constexpr int kTrials = 30'000;
  for (int t = 0; t < kTrials; ++t) {
    for (std::uint64_t v : rng.SampleWithoutReplacement(10, 3)) {
      ++counts[static_cast<std::size_t>(v)];
    }
  }
  for (int c : counts) EXPECT_NEAR(c, kTrials * 0.3, kTrials * 0.3 * 0.08);
}

}  // namespace
}  // namespace rejecto::util
