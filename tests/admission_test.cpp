// serve::AdmissionService differential + policy-chain suite.
//
// The load-bearing invariant (ISSUE: concurrent admission): replaying the
// SAME interleaved trace serially (EpochDetector oracle) and concurrently
// (AdmissionService with 1/2/8 reader threads deciding mid-ingest) must
// produce (a) identical epoch content — the oracle's per-epoch baseline
// reproduces every published decision exactly, given the published-epoch id
// the decision carries — and (b) a final state bit-identical to the batch
// build of the event log. Decisions are pure functions of (epoch, sender),
// so the differential conditions on the epoch id rather than on scheduling.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "detect/iterative.h"
#include "engine/epoch_detector.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "serve/admission.h"
#include "serve/mpsc_queue.h"
#include "serve/policy.h"
#include "serve/published_epoch.h"
#include "sim/scenario.h"
#include "sim/stream_feed.h"
#include "stream/mutation_log.h"
#include "util/rng.h"

namespace rejecto {
namespace {

using serve::AdmissionConfig;
using serve::AdmissionService;
using serve::Decision;
using serve::PublishedEpoch;
using serve::ReclaimMode;
using serve::Verdict;
using stream::MutationLog;

// ---------- MpscQueue ----------

TEST(MpscQueue, FifoAndWraparound) {
  serve::MpscQueue<int> q(4);
  EXPECT_EQ(q.Capacity(), 4u);
  int out = 0;
  EXPECT_FALSE(q.TryPop(out));
  for (int lap = 0; lap < 5; ++lap) {
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(lap * 10 + i));
    EXPECT_FALSE(q.TryPush(99));  // full
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(q.TryPop(out));
      EXPECT_EQ(out, lap * 10 + i);
    }
    EXPECT_FALSE(q.TryPop(out));  // empty again
  }
}

TEST(MpscQueue, ConcurrentProducersDeliverEverySumOnce) {
  serve::MpscQueue<std::uint64_t> q(256);
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20'000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t v = static_cast<std::uint64_t>(p) * kPerProducer
                                + i + 1;
        while (!q.TryPush(v)) std::this_thread::yield();
      }
    });
  }
  std::uint64_t sum = 0;
  std::uint64_t popped = 0;
  const std::uint64_t total = kProducers * kPerProducer;
  while (popped < total) {
    std::uint64_t v = 0;
    if (q.TryPop(v)) {
      sum += v;
      ++popped;
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(sum, total * (total + 1) / 2);
  std::uint64_t v = 0;
  EXPECT_FALSE(q.TryPop(v));
}

// ---------- policy chain ----------

TEST(TokenBucketPolicy, BurstsExhaustAndRefill) {
  serve::TokenBucketConfig cfg;
  cfg.capacity = 2.0;
  cfg.refill_per_tick = 1.0;
  cfg.on_limit = Verdict::kGrey;
  cfg.num_senders = 4;
  serve::TokenBucketPolicy bucket(cfg);
  const PublishedEpoch epoch;
  const Decision base;
  const auto eval = [&](graph::NodeId s, std::uint64_t t) {
    return bucket.Evaluate({s, t, epoch, base}, Verdict::kAdmit);
  };
  // Burst of 3 at t=0: two tokens, then limited.
  EXPECT_EQ(eval(0, 0), Verdict::kAdmit);
  EXPECT_EQ(eval(0, 0), Verdict::kAdmit);
  EXPECT_EQ(eval(0, 0), Verdict::kGrey);
  // Another sender's bucket is untouched.
  EXPECT_EQ(eval(1, 0), Verdict::kAdmit);
  // One tick refills one token.
  EXPECT_EQ(eval(0, 1), Verdict::kAdmit);
  EXPECT_EQ(eval(0, 1), Verdict::kGrey);
  // A long gap refills to capacity, not beyond.
  EXPECT_EQ(eval(0, 1000), Verdict::kAdmit);
  EXPECT_EQ(eval(0, 1000), Verdict::kAdmit);
  EXPECT_EQ(eval(0, 1000), Verdict::kGrey);
  // Out-of-order logical time: treated as zero elapsed, never a refill.
  EXPECT_EQ(eval(0, 500), Verdict::kGrey);
  // Senders past the table pass through.
  EXPECT_EQ(eval(1000, 0), Verdict::kAdmit);
  // Escalation only: a kReject incoming verdict is never downgraded.
  EXPECT_EQ(bucket.Evaluate({0, 2000, epoch, base}, Verdict::kReject),
            Verdict::kReject);
}

TEST(StaticListPolicy, EscalatesFlaggedOnly) {
  serve::StaticListPolicy list({0, 1, 0}, Verdict::kReject);
  const PublishedEpoch epoch;
  const Decision base;
  EXPECT_EQ(list.Evaluate({0, 0, epoch, base}, Verdict::kAdmit),
            Verdict::kAdmit);
  EXPECT_EQ(list.Evaluate({1, 0, epoch, base}, Verdict::kAdmit),
            Verdict::kReject);
  EXPECT_EQ(list.Evaluate({1, 0, epoch, base}, Verdict::kGrey),
            Verdict::kReject);
  EXPECT_EQ(list.Evaluate({7, 0, epoch, base}, Verdict::kGrey),
            Verdict::kGrey);
}

// ---------- service workload ----------

struct Workload {
  MutationLog log;
  detect::Seeds seeds;
  graph::NodeId num_fakes = 0;
};

Workload MakeWorkload(std::uint64_t seed) {
  util::Rng rng(seed + 61);
  const auto legit =
      gen::ErdosRenyi({.num_nodes = 300, .num_edges = 1200}, rng);
  sim::ScenarioConfig cfg;
  cfg.seed = seed * 5 + 3;
  cfg.num_fakes = 60;
  const auto scenario = sim::BuildScenario(legit, cfg);
  util::Rng seed_rng(seed + 9);
  sim::ChurnConfig churn;
  churn.seed = seed + 29;
  return {sim::GenerateChurnLog(scenario.log, churn),
          scenario.SampleSeeds(15, 5, seed_rng), cfg.num_fakes};
}

engine::EpochConfig ServiceEpochConfig(const Workload& w) {
  engine::EpochConfig ecfg;
  ecfg.detect.target_detections = w.num_fakes;
  ecfg.detect.maar.seed = 23;
  ecfg.detect.maar.num_threads = 1;
  ecfg.warm_start = true;
  ecfg.events_per_epoch = w.log.NumEvents() / 4 + 1;
  return ecfg;
}

// The serial oracle: one EpochDetector replay of the trace, capturing the
// scoring baseline after every epoch. Index = published epoch id (0 is the
// bootstrap: no baseline, every sender admits).
std::vector<PublishedEpoch> BuildOracle(const Workload& w,
                                        const engine::EpochConfig& ecfg) {
  std::vector<PublishedEpoch> epochs;
  epochs.emplace_back();  // bootstrap: has_baseline = false
  engine::EpochDetector det(w.log.NumNodes(), w.seeds, ecfg);
  const auto capture = [&] {
    PublishedEpoch pe;
    pe.epoch_id = epochs.size();
    pe.graph =
        std::make_shared<const graph::AugmentedGraph>(det.Graph().Graph());
    pe.has_baseline = det.HasIncrementalBaseline();
    if (pe.has_baseline) {
      pe.mask = det.IncrementalMask();
      pe.mask.resize(pe.graph->NumNodes(), 0);
      pe.k = det.IncrementalK();
    }
    pe.detected = det.LastResult().detected;
    epochs.push_back(std::move(pe));
  };
  for (const stream::Event& e : w.log.Events()) {
    if (det.Ingest(e) != nullptr) capture();
  }
  det.RunEpoch();  // the trailing ForceEpoch
  capture();
  return epochs;
}

struct RecordedDecision {
  graph::NodeId sender = 0;
  Decision decision;
};

struct DifferentialCase {
  int readers = 1;
  ReclaimMode reclaim = ReclaimMode::kHazard;
};

class AdmissionDifferentialTest
    : public ::testing::TestWithParam<DifferentialCase> {};

TEST_P(AdmissionDifferentialTest, ConcurrentDecisionsMatchSerialOracle) {
  const DifferentialCase c = GetParam();
  const Workload w = MakeWorkload(1);
  const engine::EpochConfig ecfg = ServiceEpochConfig(w);
  const std::vector<PublishedEpoch> oracle = BuildOracle(w, ecfg);
  constexpr double kGreyMargin = 2.0;

  AdmissionConfig cfg;
  cfg.epoch = ecfg;
  cfg.reclaim = c.reclaim;
  cfg.grey_margin = kGreyMargin;
  AdmissionService svc(
      graph::GraphBuilder(w.log.NumNodes()).BuildAugmented(), w.seeds, cfg);

  std::atomic<bool> stop{false};
  std::vector<std::vector<RecordedDecision>> recorded(c.readers);
  std::vector<std::thread> readers;
  for (int r = 0; r < c.readers; ++r) {
    AdmissionService::Reader reader = svc.CreateReader();
    readers.emplace_back(
        [&stop, &recorded, r, n = w.log.NumNodes(),
         rd = std::move(reader)]() mutable {
          util::Rng rng(r * 7919 + 17);
          std::uint64_t t = 0;
          auto& out = recorded[r];
          out.reserve(1 << 14);
          while (!stop.load(std::memory_order_acquire)) {
            const auto sender =
                static_cast<graph::NodeId>(rng.NextUInt(n + 8));
            out.push_back({sender, rd.Decide(sender, t++)});
            if ((t & 63) == 0) std::this_thread::yield();  // 1-core box
            if (out.size() >= (1u << 16)) break;           // bound memory
          }
        });
  }

  for (const stream::Event& e : w.log.Events()) svc.Submit(e);
  svc.Drain();
  const std::uint64_t final_id = svc.ForceEpoch();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // Epoch ids and count match the oracle exactly.
  ASSERT_EQ(final_id + 1, oracle.size());
  const auto current = svc.CurrentEpoch();
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->epoch_id, final_id);
  EXPECT_EQ(svc.Stats().epochs_published, final_id);

  // Final state bit-identical to the batch build, and the final epoch's
  // content bit-identical to the serial oracle's.
  EXPECT_EQ(*current->graph, w.log.BuildAugmentedGraph());
  EXPECT_EQ(*current->graph, *oracle.back().graph);
  EXPECT_EQ(current->detected, oracle.back().detected);
  EXPECT_EQ(current->mask, oracle.back().mask);
  EXPECT_EQ(current->k, oracle.back().k);

  // Every concurrent decision is reproduced by the oracle epoch it was
  // scored against — the divergence count must be exactly zero.
  std::uint64_t checked = 0;
  for (const auto& per_reader : recorded) {
    for (const RecordedDecision& rec : per_reader) {
      ASSERT_LT(rec.decision.epoch_id, oracle.size());
      const Decision expect = serve::DecideAgainst(
          oracle[rec.decision.epoch_id], rec.sender, kGreyMargin);
      ASSERT_EQ(rec.decision.verdict, expect.verdict)
          << "sender=" << rec.sender << " epoch=" << rec.decision.epoch_id;
      ASSERT_EQ(rec.decision.score, expect.score)
          << "sender=" << rec.sender << " epoch=" << rec.decision.epoch_id;
      EXPECT_FALSE(rec.decision.escalated);  // no policies in this service
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ReaderWidths, AdmissionDifferentialTest,
    ::testing::Values(DifferentialCase{1, ReclaimMode::kHazard},
                      DifferentialCase{2, ReclaimMode::kSharedPtr},
                      DifferentialCase{8, ReclaimMode::kHazard}));

// With warm starts off and a single forced epoch, the published detection
// must be EXACTLY the batch pipeline's on the final graph.
TEST(AdmissionService, ColdForcedEpochEqualsBatchDetection) {
  const Workload w = MakeWorkload(2);
  engine::EpochConfig ecfg = ServiceEpochConfig(w);
  ecfg.warm_start = false;
  ecfg.events_per_epoch = 0;  // ForceEpoch only

  AdmissionConfig cfg;
  cfg.epoch = ecfg;
  AdmissionService svc(
      graph::GraphBuilder(w.log.NumNodes()).BuildAugmented(), w.seeds, cfg);
  for (const stream::Event& e : w.log.Events()) svc.Submit(e);
  const std::uint64_t id = svc.ForceEpoch();
  EXPECT_EQ(id, 1u);

  const graph::AugmentedGraph batch_graph = w.log.BuildAugmentedGraph();
  const auto batch =
      detect::DetectFriendSpammers(batch_graph, w.seeds, ecfg.detect);
  const auto epoch = svc.CurrentEpoch();
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(*epoch->graph, batch_graph);
  EXPECT_EQ(epoch->detected, batch.detected);
  ASSERT_TRUE(epoch->has_baseline);
  ASSERT_FALSE(batch.rounds.empty());
  EXPECT_EQ(epoch->k, batch.rounds.front().k);
}

TEST(AdmissionService, BootstrapAdmitsEverythingAndChainEscalates) {
  // Tiny empty graph, no events: only the bootstrap epoch exists.
  AdmissionConfig cfg;
  cfg.epoch.events_per_epoch = 0;
  AdmissionService svc(graph::GraphBuilder(16).BuildAugmented(),
                       detect::Seeds{}, cfg);
  serve::TokenBucketConfig tb;
  tb.capacity = 1.0;
  tb.refill_per_tick = 0.0;  // never refills: second request always greys
  tb.num_senders = 16;
  svc.AddPolicy(std::make_unique<serve::TokenBucketPolicy>(tb));
  svc.AddPolicy(std::make_unique<serve::StaticListPolicy>(
      std::vector<char>{0, 0, 0, 1}, Verdict::kReject));

  auto reader = svc.CreateReader();
  // The chain freezes once a reader exists.
  EXPECT_THROW(svc.AddPolicy(std::make_unique<serve::StaticListPolicy>(
                   std::vector<char>{1}, Verdict::kGrey)),
               std::logic_error);

  const Decision first = reader.Decide(0, 0);
  EXPECT_EQ(first.verdict, Verdict::kAdmit);
  EXPECT_EQ(first.epoch_id, 0u);
  EXPECT_EQ(first.score, 0.0);
  EXPECT_FALSE(first.escalated);

  const Decision limited = reader.Decide(0, 0);  // bucket is empty now
  EXPECT_EQ(limited.verdict, Verdict::kGrey);
  EXPECT_TRUE(limited.escalated);

  const Decision listed = reader.Decide(3, 0);  // blocklisted sender
  EXPECT_EQ(listed.verdict, Verdict::kReject);
  EXPECT_TRUE(listed.escalated);

  EXPECT_EQ(reader.Decisions(), 3u);
  EXPECT_EQ(reader.Admitted(), 1u);
  EXPECT_EQ(reader.Greyed(), 1u);
  EXPECT_EQ(reader.Rejected(), 1u);
  EXPECT_EQ(reader.Escalated(), 2u);
  EXPECT_EQ(reader.Latency().Count(), 3u);
}

TEST(AdmissionService, StatsAndDrainAccounting) {
  const Workload w = MakeWorkload(3);
  engine::EpochConfig ecfg = ServiceEpochConfig(w);
  ecfg.events_per_epoch = 0;
  AdmissionConfig cfg;
  cfg.epoch = ecfg;
  AdmissionService svc(
      graph::GraphBuilder(w.log.NumNodes()).BuildAugmented(), w.seeds, cfg);
  for (const stream::Event& e : w.log.Events()) svc.Submit(e);
  svc.Drain();
  const auto s = svc.Stats();
  EXPECT_EQ(s.events_submitted, w.log.NumEvents());
  EXPECT_EQ(s.events_ingested, w.log.NumEvents());
  EXPECT_EQ(s.events_applied + s.events_noop, s.events_ingested);
  EXPECT_EQ(s.epochs_published, 0u);
  svc.ForceEpoch();
  EXPECT_EQ(svc.Stats().epochs_published, 1u);
  EXPECT_EQ(svc.Stats().published_events, w.log.NumEvents());
  svc.Stop();
  EXPECT_FALSE(svc.TrySubmit({stream::EventType::kAddFriend, 0, 1}));
}

TEST(AdmissionService, RejectsSelfEdgeAtSubmission) {
  AdmissionConfig cfg;
  cfg.epoch.events_per_epoch = 0;
  AdmissionService svc(graph::GraphBuilder(4).BuildAugmented(),
                       detect::Seeds{}, cfg);
  EXPECT_THROW(svc.Submit({stream::EventType::kAddFriend, 2, 2}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rejecto
