// Detection over the compressed mmap view must be BIT-identical to the
// in-RAM pipeline: same MAAR cuts, same rounds, same detected sets, at any
// thread count (the acceptance bar for RJSNAP02 — compression must never
// change an answer). Covers the full stack of the out-of-core seam:
// InducedSubgraph over the view, MaarSolver's view mode, the iterative
// driver, and EpochDetector::FromSnapshot dispatch.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "detect/iterative.h"
#include "detect/maar.h"
#include "engine/epoch_detector.h"
#include "gen/holme_kim.h"
#include "graph/compressed_view.h"
#include "graph/layout.h"
#include "graph/snapshot.h"
#include "graph/subgraph.h"
#include "sim/scenario.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace rejecto {
namespace {

namespace fs = std::filesystem;

using graph::AugmentedGraph;
using graph::CompressedGraphView;
using graph::NodeId;

class CompressedDetectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("rejecto_cdetect_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

sim::Scenario MakeAttackScenario(std::uint64_t seed, NodeId n = 800,
                                 NodeId fakes = 80) {
  util::Rng rng(seed);
  const auto legit = gen::HolmeKim({.num_nodes = n, .edges_per_node = 3}, rng);
  sim::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.num_fakes = fakes;
  return sim::BuildScenario(legit, cfg);
}

// Saves g as identity-layout RJSNAP02 and opens the view.
CompressedGraphView SaveAndOpen(const std::string& path,
                                const AugmentedGraph& g,
                                std::uint32_t block_rows = 128) {
  graph::SnapshotOptions opts;
  opts.format = graph::SnapshotFormat::kRjsnap02;
  opts.block_rows = block_rows;
  graph::SaveSnapshot(path, g, graph::Layout{}, opts);
  return CompressedGraphView::Open(path);
}

void ExpectSameResult(const detect::DetectionResult& ram,
                      const detect::DetectionResult& mm,
                      const std::string& label) {
  EXPECT_EQ(ram.detected, mm.detected) << label;
  ASSERT_EQ(ram.rounds.size(), mm.rounds.size()) << label;
  for (std::size_t r = 0; r < ram.rounds.size(); ++r) {
    const detect::RoundInfo& a = ram.rounds[r];
    const detect::RoundInfo& b = mm.rounds[r];
    EXPECT_EQ(a.detected, b.detected) << label << " round " << r;
    EXPECT_EQ(a.cut.cross_friendships, b.cut.cross_friendships)
        << label << " round " << r;
    EXPECT_EQ(a.cut.rejections_into_u, b.cut.rejections_into_u)
        << label << " round " << r;
    EXPECT_EQ(a.cut.rejections_from_u, b.cut.rejections_from_u)
        << label << " round " << r;
    EXPECT_EQ(a.ratio, b.ratio) << label << " round " << r;
    EXPECT_EQ(a.k, b.k) << label << " round " << r;
  }
}

// ---------- induced subgraphs ----------

TEST_F(CompressedDetectTest, InducedSubgraphFromViewMatchesRamAtAnyThreads) {
  const auto scenario = MakeAttackScenario(3, 700, 70);
  const AugmentedGraph& g = scenario.graph;
  const auto view = SaveAndOpen(Path("g.snap2"), g, 64);

  util::Rng rng(11);
  for (int rep = 0; rep < 4; ++rep) {
    std::vector<char> keep(g.NumNodes());
    for (auto& k : keep) k = rng.NextUInt(100) < 70 ? 1 : 0;

    const auto want = graph::InducedSubgraph(g, keep);
    const auto serial = graph::InducedSubgraph(view, keep);
    EXPECT_EQ(serial.graph, want.graph) << "rep " << rep;
    EXPECT_EQ(serial.parent_id, want.parent_id) << "rep " << rep;

    for (const int threads : {2, 8}) {
      util::ThreadPool pool(threads);
      const auto parallel = graph::InducedSubgraph(view, keep, &pool);
      EXPECT_EQ(parallel.graph, want.graph)
          << "rep " << rep << " threads " << threads;
      EXPECT_EQ(parallel.parent_id, want.parent_id)
          << "rep " << rep << " threads " << threads;
    }
  }
}

// ---------- MAAR over the view ----------

TEST_F(CompressedDetectTest, MaarSolverViewModeMatchesRamBitForBit) {
  const auto scenario = MakeAttackScenario(5, 600, 60);
  const AugmentedGraph& g = scenario.graph;
  const auto view = SaveAndOpen(Path("g.snap2"), g);

  util::Rng seed_rng(7);
  const auto seeds = scenario.SampleSeeds(20, 8, seed_rng);
  detect::MaarConfig cfg;
  cfg.num_random_inits = 2;
  cfg.seed = 99;

  for (const int threads : {1, 2, 8}) {
    auto ram_cfg = cfg;
    ram_cfg.num_threads = threads;
    detect::MaarSolver ram_solver(g, seeds, ram_cfg);
    const auto ram = ram_solver.Solve();

    detect::MaarSolver view_solver(view, seeds, ram_cfg);
    const auto mm = view_solver.Solve();

    ASSERT_EQ(ram.valid, mm.valid) << "threads " << threads;
    EXPECT_EQ(ram.in_u, mm.in_u) << "threads " << threads;
    EXPECT_EQ(ram.cut.cross_friendships, mm.cut.cross_friendships);
    EXPECT_EQ(ram.cut.rejections_into_u, mm.cut.rejections_into_u);
    EXPECT_EQ(ram.cut.rejections_from_u, mm.cut.rejections_from_u);
    EXPECT_EQ(ram.ratio, mm.ratio) << "threads " << threads;
    EXPECT_EQ(ram.k, mm.k) << "threads " << threads;
  }
}

TEST_F(CompressedDetectTest, MaarSolverViewModeRejectsNonIdentityLayout) {
  const auto scenario = MakeAttackScenario(7, 300, 30);
  const auto view = SaveAndOpen(Path("g.snap2"), scenario.graph);
  util::Rng seed_rng(7);
  const auto seeds = scenario.SampleSeeds(5, 2, seed_rng);
  detect::MaarConfig cfg;
  cfg.layout = graph::LayoutPolicy::kBfs;
  EXPECT_THROW(detect::MaarSolver(view, seeds, cfg), std::invalid_argument);
}

// ---------- the full pipeline, property-style ----------

TEST_F(CompressedDetectTest, FullPipelineBitIdenticalAtOneTwoEightThreads) {
  for (const std::uint64_t seed : {11ULL, 13ULL}) {
    const auto scenario = MakeAttackScenario(seed, 800, 80);
    const AugmentedGraph& g = scenario.graph;
    const auto view =
        SaveAndOpen(Path("g" + std::to_string(seed) + ".snap2"), g);

    util::Rng seed_rng(seed * 3 + 1);
    const auto seeds = scenario.SampleSeeds(20, 8, seed_rng);
    detect::IterativeConfig cfg;
    cfg.target_detections = scenario.num_fakes;
    cfg.maar.seed = seed * 7919 + 13;
    cfg.maar.num_random_inits = 2;

    for (const int threads : {1, 2, 8}) {
      cfg.maar.num_threads = threads;
      const auto ram = detect::DetectFriendSpammers(g, seeds, cfg);
      const auto mm = detect::DetectFriendSpammersCompressed(view, seeds, cfg);
      ExpectSameResult(ram, mm,
                       "seed " + std::to_string(seed) + " threads " +
                           std::to_string(threads));
    }
  }
}

TEST_F(CompressedDetectTest, PipelineRejectsNonIdentityLayoutConfig) {
  const auto scenario = MakeAttackScenario(17, 300, 30);
  const auto view = SaveAndOpen(Path("g.snap2"), scenario.graph);
  util::Rng seed_rng(7);
  const auto seeds = scenario.SampleSeeds(5, 2, seed_rng);
  detect::IterativeConfig cfg;
  cfg.target_detections = scenario.num_fakes;
  cfg.maar.layout = graph::LayoutPolicy::kBfs;
  EXPECT_THROW(detect::DetectFriendSpammersCompressed(view, seeds, cfg),
               std::invalid_argument);
}

TEST_F(CompressedDetectTest, BlockSpanDoesNotChangeAnyAnswer) {
  // The block span is a storage knob, never an algorithmic one.
  const auto scenario = MakeAttackScenario(19, 600, 60);
  util::Rng seed_rng(23);
  const auto seeds = scenario.SampleSeeds(15, 6, seed_rng);
  detect::IterativeConfig cfg;
  cfg.target_detections = scenario.num_fakes;
  cfg.maar.seed = 31;
  cfg.maar.num_random_inits = 2;

  const auto ram = detect::DetectFriendSpammers(scenario.graph, seeds, cfg);
  for (const std::uint32_t rows : {64u, 128u, 256u}) {
    const auto view = SaveAndOpen(
        Path("g" + std::to_string(rows) + ".snap2"), scenario.graph, rows);
    const auto mm = detect::DetectFriendSpammersCompressed(view, seeds, cfg);
    ExpectSameResult(ram, mm, "block_rows " + std::to_string(rows));
  }
}

// ---------- engine dispatch ----------

TEST_F(CompressedDetectTest, EpochDetectorFromV2SnapshotMatchesV1) {
  const auto scenario = MakeAttackScenario(29, 500, 50);
  const AugmentedGraph& g = scenario.graph;
  const std::string v1 = Path("g.snap");
  const std::string v2 = Path("g.snap2");
  // Both saved with the BFS policy: FromSnapshot must translate back to
  // the original id space identically for either format.
  graph::SaveSnapshotWithPolicy(v1, g, graph::LayoutPolicy::kBfs);
  graph::SnapshotOptions opts;
  opts.format = graph::SnapshotFormat::kRjsnap02;
  graph::SaveSnapshotWithPolicy(v2, g, graph::LayoutPolicy::kBfs, opts);

  detect::Seeds seeds;
  seeds.legit = {0, 1};
  engine::EpochConfig cfg;
  cfg.detect.target_detections = 10;
  cfg.detect.maar.seed = 5;

  auto from_v1 = engine::EpochDetector::FromSnapshot(v1, seeds, cfg);
  auto from_v2 = engine::EpochDetector::FromSnapshot(v2, seeds, cfg);
  const auto& a = from_v1->RunEpoch();
  const auto& b = from_v2->RunEpoch();
  EXPECT_EQ(from_v1->LastResult().detected, from_v2->LastResult().detected);
  EXPECT_EQ(a.num_detected, b.num_detected);
  EXPECT_EQ(a.round_ratios, b.round_ratios);
}

}  // namespace
}  // namespace rejecto
