#include <gtest/gtest.h>

#include <tuple>

#include "detect/extended_kl.h"
#include "engine/cluster.h"
#include "engine/dist_kl.h"
#include "engine/dist_detector.h"
#include "engine/dist_maar.h"
#include "engine/prefetch.h"
#include "engine/shard_store.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace rejecto::engine {
namespace {

graph::AugmentedGraph SmallAugmented(util::Rng& rng, graph::NodeId n = 60) {
  graph::GraphBuilder b(n);
  const auto social = gen::ErdosRenyi(
      {.num_nodes = n, .num_edges = static_cast<graph::EdgeId>(n) * 3}, rng);
  for (const auto& e : social.Edges()) b.AddFriendship(e.u, e.v);
  for (graph::NodeId i = 0; i < n; ++i) {
    const auto u = static_cast<graph::NodeId>(rng.NextUInt(n));
    const auto v = static_cast<graph::NodeId>(rng.NextUInt(n));
    if (u != v) b.AddRejection(u, v);
  }
  return b.BuildAugmented();
}

// ---------- Cluster ----------

TEST(ClusterTest, InvalidPrefetchConfigThrows) {
  EXPECT_THROW(Cluster({.num_workers = 2, .prefetch_batch = 0}), std::invalid_argument);
  EXPECT_THROW(
      Cluster({.num_workers = 2, .prefetch_batch = 100, .buffer_capacity = 10}),
      std::invalid_argument);
}

// ---------- ShardedGraphStore ----------

TEST(ShardStoreTest, ZeroShardsThrow) {
  util::Rng rng(1);
  const auto g = SmallAugmented(rng);
  util::ThreadPool pool(2);
  EXPECT_THROW(ShardedGraphStore(g, 0, pool), std::invalid_argument);
}

TEST(ShardStoreTest, LocalMatchesGraph) {
  util::Rng rng(2);
  const auto g = SmallAugmented(rng);
  util::ThreadPool pool(2);
  const ShardedGraphStore store(g, 4, pool);
  for (graph::NodeId v = 0; v < g.NumNodes(); ++v) {
    const NodeAdjacency& a = store.Local(v);
    const auto fr = g.Friendships().Neighbors(v);
    ASSERT_EQ(a.friends.size(), fr.size());
    EXPECT_TRUE(std::equal(fr.begin(), fr.end(), a.friends.begin()));
    EXPECT_EQ(a.rejectors.size(), g.Rejections().InDegree(v));
    EXPECT_EQ(a.rejectees.size(), g.Rejections().OutDegree(v));
  }
}

TEST(ShardStoreTest, FetchBatchReturnsRequestedOrder) {
  util::Rng rng(3);
  const auto g = SmallAugmented(rng);
  util::ThreadPool pool(2);
  const ShardedGraphStore store(g, 3, pool);
  IoStats stats;
  const graph::NodeId ids[4] = {7, 1, 12, 5};
  const auto batch = store.FetchBatch(ids, stats);
  ASSERT_EQ(batch.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(batch[static_cast<std::size_t>(i)].friends.size(),
              g.Friendships().Degree(ids[i]));
  }
}

TEST(ShardStoreTest, FetchAccountingChargesPerShardTouched) {
  util::Rng rng(4);
  const auto g = SmallAugmented(rng);
  util::ThreadPool pool(2);
  const ShardedGraphStore store(g, 4, pool);
  IoStats stats;
  // Nodes 0 and 4 share shard 0; node 1 is shard 1 -> 2 RPCs.
  const graph::NodeId ids[3] = {0, 4, 1};
  store.FetchBatch(ids, stats);
  EXPECT_EQ(stats.fetch_requests, 2u);
  EXPECT_EQ(stats.nodes_fetched, 3u);
  EXPECT_GT(stats.bytes_transferred, 0u);
}

TEST(NetworkModelTest, MicrosFormula) {
  const NetworkModel m{.rpc_latency_us = 100.0, .bandwidth_gbps = 1.0};
  // 2 RPCs + 1e6 bytes: 200us latency + 8e6 bits / 1e3 bits-per-us = 8000us.
  EXPECT_NEAR(m.MicrosFor(2, 1'000'000), 200.0 + 8000.0, 1e-9);
}

TEST(ShardStoreTest, SimulatedNetworkTimeAccrues) {
  util::Rng rng(14);
  const auto g = SmallAugmented(rng);
  util::ThreadPool pool(2);
  const NetworkModel slow{.rpc_latency_us = 1000.0, .bandwidth_gbps = 0.001};
  const ShardedGraphStore store(g, 2, pool, slow);
  IoStats stats;
  const graph::NodeId ids[2] = {0, 1};
  store.FetchBatch(ids, stats);
  // One batch = one latency charge plus payload time.
  const double expected =
      slow.MicrosFor(1, stats.bytes_transferred);
  EXPECT_NEAR(stats.simulated_network_us, expected, 1e-9);
  store.FetchBatch(ids, stats);
  EXPECT_NEAR(stats.simulated_network_us, 2 * expected, 1e-9);
}

TEST(ShardStoreTest, FetchOutOfRangeThrows) {
  util::Rng rng(5);
  const auto g = SmallAugmented(rng);
  util::ThreadPool pool(2);
  const ShardedGraphStore store(g, 2, pool);
  IoStats stats;
  const graph::NodeId ids[1] = {static_cast<graph::NodeId>(g.NumNodes())};
  EXPECT_THROW(store.FetchBatch(ids, stats), std::out_of_range);
}

// ---------- PrefetchBuffer ----------

TEST(PrefetchTest, MissThenHit) {
  util::Rng rng(6);
  const auto g = SmallAugmented(rng);
  util::ThreadPool pool(2);
  const ShardedGraphStore store(g, 2, pool);
  PrefetchBuffer buf(store, 16, 1);
  buf.Get(3);
  EXPECT_EQ(buf.Stats().cache_misses, 1u);
  buf.Get(3);
  EXPECT_EQ(buf.Stats().cache_hits, 1u);
}

TEST(PrefetchTest, CandidatesArePrefetched) {
  util::Rng rng(7);
  const auto g = SmallAugmented(rng);
  util::ThreadPool pool(2);
  const ShardedGraphStore store(g, 2, pool);
  PrefetchBuffer buf(store, 16, 4);
  buf.Get(0, [](std::size_t want, std::vector<graph::NodeId>& out) {
    for (graph::NodeId v = 1; out.size() < want + 1 && v < 10; ++v) {
      out.push_back(v);
    }
  });
  EXPECT_EQ(buf.Stats().cache_misses, 1u);
  buf.Get(1);
  buf.Get(2);
  buf.Get(3);
  EXPECT_EQ(buf.Stats().cache_hits, 3u);
  EXPECT_EQ(buf.Stats().cache_misses, 1u);
}

TEST(PrefetchTest, LruEvictsOldest) {
  util::Rng rng(8);
  const auto g = SmallAugmented(rng);
  util::ThreadPool pool(2);
  const ShardedGraphStore store(g, 2, pool);
  PrefetchBuffer buf(store, 2, 1);  // capacity 2
  buf.Get(0);
  buf.Get(1);
  buf.Get(0);  // refresh 0; LRU order now [0, 1]
  buf.Get(2);  // evicts 1
  buf.Get(0);
  EXPECT_EQ(buf.Stats().cache_hits, 2u);  // the refresh + final Get(0)
  buf.Get(1);                             // must re-fetch
  EXPECT_EQ(buf.Stats().cache_misses, 4u);
}

TEST(PrefetchTest, DuplicateCandidatesDeduped) {
  util::Rng rng(9);
  const auto g = SmallAugmented(rng);
  util::ThreadPool pool(2);
  const ShardedGraphStore store(g, 2, pool);
  PrefetchBuffer buf(store, 16, 4);
  buf.Get(0, [](std::size_t, std::vector<graph::NodeId>& out) {
    out.push_back(0);  // the missed node itself
    out.push_back(5);
    out.push_back(5);  // duplicate
  });
  EXPECT_EQ(buf.Stats().nodes_fetched, 2u);  // 0 and 5 only
}

TEST(PrefetchTest, InvalidConfigThrows) {
  util::Rng rng(10);
  const auto g = SmallAugmented(rng);
  util::ThreadPool pool(2);
  const ShardedGraphStore store(g, 2, pool);
  EXPECT_THROW(PrefetchBuffer(store, 0, 1), std::invalid_argument);
  EXPECT_THROW(PrefetchBuffer(store, 4, 8), std::invalid_argument);
}

// ---------- DistributedKl equivalence ----------

class DistKlEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, double>> {};

TEST_P(DistKlEquivalenceTest, BitIdenticalToSerialKl) {
  const auto [shards, k] = GetParam();
  util::Rng rng(42 + shards);
  const auto g = SmallAugmented(rng, 120);
  std::vector<char> init(g.NumNodes(), 0);
  for (graph::NodeId v = 0; v < g.NumNodes(); ++v) {
    init[v] = g.Rejections().InDegree(v) > 0 ? 1 : 0;
  }
  std::vector<char> locked(g.NumNodes(), 0);
  locked[0] = 1;
  locked[5] = 1;

  const detect::KlConfig cfg{.k = k};
  const auto serial = detect::ExtendedKl(g, init, locked, cfg);

  Cluster cluster(
      {.num_workers = shards, .prefetch_batch = 8, .buffer_capacity = 64});
  const ShardedGraphStore store(g, shards, cluster.Pool());
  const auto dist = DistributedKl(store, init, locked, cfg, cluster);

  EXPECT_EQ(dist.kl.in_u, serial.in_u);
  EXPECT_EQ(dist.kl.cut.cross_friendships, serial.cut.cross_friendships);
  EXPECT_EQ(dist.kl.cut.rejections_into_u, serial.cut.rejections_into_u);
  EXPECT_EQ(dist.kl.cut.rejections_from_u, serial.cut.rejections_from_u);
  EXPECT_EQ(dist.kl.stats.passes, serial.stats.passes);
  EXPECT_EQ(dist.kl.stats.switches_applied, serial.stats.switches_applied);
  EXPECT_DOUBLE_EQ(dist.kl.stats.final_objective,
                   serial.stats.final_objective);
  EXPECT_GT(dist.io.nodes_fetched, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ShardAndK, DistKlEquivalenceTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u),
                       ::testing::Values(0.25, 1.0, 4.0)));

TEST(DistKlTest, PrefetchingReducesFetchRequests) {
  util::Rng rng(77);
  const auto g = SmallAugmented(rng, 150);
  std::vector<char> init(g.NumNodes(), 0);
  for (graph::NodeId v = 0; v < g.NumNodes(); ++v) {
    init[v] = g.Rejections().InDegree(v) > 0 ? 1 : 0;
  }
  const detect::KlConfig cfg{.k = 1.0};

  Cluster no_prefetch(
      {.num_workers = 2, .prefetch_batch = 1, .buffer_capacity = 256});
  const ShardedGraphStore store1(g, 2, no_prefetch.Pool());
  const auto a = DistributedKl(store1, init, {}, cfg, no_prefetch);

  Cluster with_prefetch(
      {.num_workers = 2, .prefetch_batch = 32, .buffer_capacity = 256});
  const ShardedGraphStore store2(g, 2, with_prefetch.Pool());
  const auto b = DistributedKl(store2, init, {}, cfg, with_prefetch);

  EXPECT_EQ(a.kl.in_u, b.kl.in_u);  // prefetching never changes the result
  EXPECT_LT(b.io.fetch_requests, a.io.fetch_requests);
}

TEST(DistMaarTest, MatchesSerialMaarSolver) {
  util::Rng rng(91);
  const auto g = SmallAugmented(rng, 100);
  detect::Seeds seeds;
  seeds.legit = {0, 1};
  detect::MaarConfig cfg;
  cfg.min_region_size = 2;
  cfg.seed = 4;

  detect::MaarSolver serial(g, seeds, cfg);
  const auto expected = serial.Solve();

  Cluster cluster(
      {.num_workers = 3, .prefetch_batch = 16, .buffer_capacity = 128});
  const ShardedGraphStore store(g, 3, cluster.Pool());
  const auto dist = SolveMaarDistributed(g, store, cluster, seeds, cfg);

  EXPECT_EQ(dist.cut.valid, expected.valid);
  if (expected.valid) {
    EXPECT_EQ(dist.cut.in_u, expected.in_u);
    EXPECT_DOUBLE_EQ(dist.cut.ratio, expected.ratio);
    EXPECT_DOUBLE_EQ(dist.cut.k, expected.k);
  }
  EXPECT_EQ(dist.cut.kl_runs, expected.kl_runs);
  EXPECT_GT(dist.io.nodes_fetched, 0u);
}

TEST(DistDetectorTest, MatchesSerialPipeline) {
  // A planted scenario with two fake groups exercises multiple rounds
  // (and thus multiple re-shardings) of the distributed pipeline.
  util::Rng rng(55);
  const auto legit =
      gen::ErdosRenyi({.num_nodes = 400, .num_edges = 1600}, rng);
  sim::ScenarioConfig scfg;
  scfg.seed = 5;
  scfg.num_fakes = 80;
  const auto scenario = sim::BuildScenario(legit, scfg);
  util::Rng seed_rng(6);
  const auto seeds = scenario.SampleSeeds(10, 4, seed_rng);

  detect::IterativeConfig cfg;
  cfg.target_detections = 80;
  cfg.maar.seed = 3;
  const auto serial =
      detect::DetectFriendSpammers(scenario.graph, seeds, cfg);

  Cluster cluster(
      {.num_workers = 3, .prefetch_batch = 32, .buffer_capacity = 512});
  const auto dist = DetectFriendSpammersDistributed(scenario.graph, seeds,
                                                    cfg, cluster);

  EXPECT_EQ(dist.detection.detected, serial.detected);
  EXPECT_EQ(dist.detection.rounds.size(), serial.rounds.size());
  EXPECT_EQ(dist.detection.hit_target, serial.hit_target);
  EXPECT_GE(dist.stores_built, 1);
  EXPECT_GT(dist.io.nodes_fetched, 0u);
}

TEST(DistKlTest, InvalidInputsThrow) {
  util::Rng rng(78);
  const auto g = SmallAugmented(rng, 40);
  Cluster cluster({.num_workers = 2});
  const ShardedGraphStore store(g, 2, cluster.Pool());
  EXPECT_THROW(DistributedKl(store, std::vector<char>(10, 0), {},
                             detect::KlConfig{.k = 1.0}, cluster),
               std::invalid_argument);
  EXPECT_THROW(DistributedKl(store, std::vector<char>(g.NumNodes(), 0), {},
                             detect::KlConfig{.k = 0.0}, cluster),
               std::invalid_argument);
}

}  // namespace
}  // namespace rejecto::engine
