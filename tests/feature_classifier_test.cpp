#include <gtest/gtest.h>

#include "baseline/feature_classifier.h"
#include "gen/erdos_renyi.h"
#include "metrics/classification.h"
#include "metrics/ranking.h"
#include "sim/scenario.h"

namespace rejecto::baseline {
namespace {

TEST(FeatureExtractionTest, CountsAndRates) {
  sim::RequestLog log(4);
  log.Add(0, 1, sim::Response::kAccepted);
  log.Add(0, 2, sim::Response::kRejected);
  log.Add(3, 0, sim::Response::kAccepted);
  const auto f = ExtractUserFeatures(log);
  ASSERT_EQ(f.size(), 4u);
  EXPECT_DOUBLE_EQ(f[0][0], 2.0);   // sent
  EXPECT_DOUBLE_EQ(f[0][1], 0.5);   // acceptance rate of sent
  EXPECT_DOUBLE_EQ(f[0][2], 1.0);   // rejections received as sender
  EXPECT_DOUBLE_EQ(f[0][3], 2.0);   // degree (edges 0-1, 0-3)
  EXPECT_DOUBLE_EQ(f[0][4], 1.0);   // received
  EXPECT_DOUBLE_EQ(f[0][5], 1.0);   // granted rate
  EXPECT_DOUBLE_EQ(f[2][1], 1.0);   // neutral: node 2 sent nothing
  EXPECT_DOUBLE_EQ(f[2][5], 0.0);   // rejected the one request it got
}

sim::Scenario MakeScenario(sim::ScenarioConfig cfg) {
  util::Rng rng(11);
  const auto legit = gen::ErdosRenyi({.num_nodes = 800, .num_edges = 3200},
                                     rng);
  return sim::BuildScenario(legit, cfg);
}

TEST(FeatureClassifierTest, RequiresBothSeedClasses) {
  sim::ScenarioConfig cfg;
  cfg.num_fakes = 100;
  const auto s = MakeScenario(cfg);
  const auto feats = ExtractUserFeatures(s.log);
  detect::Seeds only_legit;
  only_legit.legit = {0, 1, 2};
  EXPECT_THROW(FeatureClassifier(feats, only_legit, {}),
               std::invalid_argument);
}

TEST(FeatureClassifierTest, SeparatesHonestSpamScenario) {
  sim::ScenarioConfig cfg;
  cfg.seed = 21;
  cfg.num_fakes = 150;
  const auto s = MakeScenario(cfg);
  const auto feats = ExtractUserFeatures(s.log);
  util::Rng rng(5);
  const auto seeds = s.SampleSeeds(30, 15, rng);
  const FeatureClassifier clf(feats, seeds, {});
  const auto cm = metrics::EvaluateDetection(
      s.is_fake, metrics::LowestScored(clf.TrustScores(feats), 150));
  EXPECT_GE(cm.Precision(), 0.9);
}

TEST(FeatureClassifierTest, PredictionsAreProbabilities) {
  sim::ScenarioConfig cfg;
  cfg.num_fakes = 100;
  const auto s = MakeScenario(cfg);
  const auto feats = ExtractUserFeatures(s.log);
  util::Rng rng(6);
  const auto seeds = s.SampleSeeds(20, 10, rng);
  const FeatureClassifier clf(feats, seeds, {});
  for (double p : clf.Predict(feats)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(FeatureClassifierTest, CollusionDegradesClassifier) {
  // §II-B: dense intra-fake acceptance poisons the individual features.
  sim::ScenarioConfig honest;
  honest.seed = 31;
  honest.num_fakes = 150;
  honest.intra_fake_links_per_account = 4;
  sim::ScenarioConfig colluding = honest;
  colluding.intra_fake_links_per_account = 40;

  auto precision_of = [](const sim::Scenario& s) {
    const auto feats = ExtractUserFeatures(s.log);
    util::Rng rng(7);
    const auto seeds = s.SampleSeeds(30, 15, rng);
    const FeatureClassifier clf(feats, seeds, {});
    return metrics::EvaluateDetection(
               s.is_fake,
               metrics::LowestScored(clf.TrustScores(feats), s.num_fakes))
        .Precision();
  };
  const double p_honest = precision_of(MakeScenario(honest));
  const double p_colluding = precision_of(MakeScenario(colluding));
  // Note: the classifier retrains on the colluding data, so it can partly
  // adapt (e.g. lean on raw degree); the acceptance-rate margin still
  // shrinks measurably.
  EXPECT_LT(p_colluding, p_honest + 1e-9);
}

TEST(FeatureClassifierTest, DeterministicTraining) {
  sim::ScenarioConfig cfg;
  cfg.num_fakes = 100;
  const auto s = MakeScenario(cfg);
  const auto feats = ExtractUserFeatures(s.log);
  util::Rng rng(8);
  const auto seeds = s.SampleSeeds(20, 10, rng);
  const FeatureClassifier a(feats, seeds, {});
  const FeatureClassifier b(feats, seeds, {});
  EXPECT_EQ(a.weights(), b.weights());
}

}  // namespace
}  // namespace rejecto::baseline
