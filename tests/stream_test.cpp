// Unit and property tests for the streaming subsystem's data layer:
// stream::MutationLog (event model, validation, persistence, batch oracle)
// and stream::DeltaGraph (overlay semantics, compaction). The heavier
// replay-vs-batch differential at multiple thread counts lives in
// stream_differential_test.cpp.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "sim/stream_feed.h"
#include "stream/delta_graph.h"
#include "stream/mutation_log.h"
#include "util/rng.h"

namespace rejecto {
namespace {

using stream::DeltaConfig;
using stream::DeltaGraph;
using stream::Event;
using stream::EventType;
using stream::MutationLog;

// ---------- MutationLog ----------

TEST(MutationLogTest, ValidatesEvents) {
  MutationLog log(4);
  EXPECT_THROW(log.AddFriend(1, 1), std::invalid_argument);
  EXPECT_THROW(log.Reject(2, 2), std::invalid_argument);
  EXPECT_THROW(log.Append({EventType::kAccept, graph::kInvalidNode, 0}),
               std::invalid_argument);
  EXPECT_THROW(log.Append({EventType::kAccept, 0, graph::kInvalidNode}),
               std::invalid_argument);
  EXPECT_THROW(
      log.Append({EventType::kRemoveNode, graph::kInvalidNode, 0}),
      std::invalid_argument);
  EXPECT_EQ(log.NumEvents(), 0u);
}

TEST(MutationLogTest, IdSpaceGrowsAndNeverShrinks) {
  MutationLog log;
  EXPECT_EQ(log.NumNodes(), 0u);
  log.AddFriend(0, 7);
  EXPECT_EQ(log.NumNodes(), 8u);
  log.RemoveNode(7);  // removal isolates the slot, never shrinks the range
  EXPECT_EQ(log.NumNodes(), 8u);
  log.GrowTo(12);
  EXPECT_EQ(log.NumNodes(), 12u);
  EXPECT_THROW(log.GrowTo(3), std::invalid_argument);
}

TEST(MutationLogTest, OracleHonorsEventOrderAndRemovals) {
  MutationLog log(5);
  log.AddFriend(0, 1);
  log.Reject(2, 3);  // 3 rejected 2's request: arc <3, 2>
  log.RemoveNode(1);
  log.AddFriend(1, 4);  // re-populated after removal
  const auto g = log.BuildAugmentedGraph();
  EXPECT_EQ(g.NumNodes(), 5u);
  EXPECT_FALSE(g.Friendships().HasEdge(0, 1));  // erased by the removal
  EXPECT_TRUE(g.Friendships().HasEdge(1, 4));
  EXPECT_TRUE(g.Rejections().HasArc(3, 2));
  EXPECT_FALSE(g.Rejections().HasArc(2, 3));
}

TEST(MutationLogTest, AcceptAfterRejectKeepsBothEdgeAndArc) {
  // The rejection is historical evidence (§III-A); a later acceptance of
  // the same pair must not erase it.
  MutationLog log(3);
  log.Reject(0, 1);
  log.Accept(0, 1);
  const auto g = log.BuildAugmentedGraph();
  EXPECT_TRUE(g.Friendships().HasEdge(0, 1));
  EXPECT_TRUE(g.Rejections().HasArc(1, 0));
}

TEST(MutationLogTest, SaveLoadRoundTrips) {
  MutationLog log(9);
  log.AddFriend(0, 1);
  log.Accept(2, 3);
  log.Reject(4, 5);
  log.RemoveNode(6);
  const std::string path =
      ::testing::TempDir() + "/mutation_log_roundtrip.txt";
  log.Save(path);
  const MutationLog loaded = MutationLog::Load(path);
  EXPECT_EQ(loaded.NumNodes(), log.NumNodes());
  ASSERT_EQ(loaded.NumEvents(), log.NumEvents());
  for (std::size_t i = 0; i < log.NumEvents(); ++i) {
    EXPECT_EQ(loaded.Events()[i], log.Events()[i]) << "event " << i;
  }
  EXPECT_EQ(loaded.BuildAugmentedGraph(), log.BuildAugmentedGraph());
  std::remove(path.c_str());
}

// Writes raw text and expects Load to reject it with a line-numbered error.
void ExpectLoadRejects(const std::string& contents, const char* what) {
  const std::string path = ::testing::TempDir() + "/mutation_log_bad.txt";
  {
    std::ofstream out(path);
    out << contents;
  }
  EXPECT_THROW(MutationLog::Load(path), std::runtime_error) << what;
  std::remove(path.c_str());
}

TEST(MutationLogTest, LoadRejectsMalformedHeader) {
  // stoull-era bugs: trailing garbage after the count parsed silently, and
  // the events= count was never checked at all.
  ExpectLoadRejects("# rejecto mutation log: nodes=12garbage events=1\nF 0 1\n",
                    "garbage after nodes count");
  ExpectLoadRejects("# rejecto mutation log: nodes=-4 events=0\n",
                    "negative node count");
  ExpectLoadRejects(
      "# rejecto mutation log: nodes=99999999999999999999 events=0\n",
      "node count overflowing u64");
  ExpectLoadRejects("# rejecto mutation log: nodes=8589934592 events=0\n",
                    "node count overflowing NodeId");
  ExpectLoadRejects("# rejecto mutation log: nodes=5\nF 0 1\n",
                    "header missing events=");
  ExpectLoadRejects("# rejecto mutation log: nodes=5 events=3\nF 0 1\n",
                    "events count mismatch (truncated log)");
}

TEST(MutationLogTest, LoadRejectsMalformedEventLines) {
  const std::string header = "# rejecto mutation log: nodes=9 events=1\n";
  ExpectLoadRejects(header + "F 0\n", "missing second id");
  ExpectLoadRejects(header + "F -1 2\n", "negative id");
  ExpectLoadRejects(header + "F 1 2x\n", "garbage suffix on id");
  ExpectLoadRejects(header + "F 1 2 3\n", "trailing token");
  ExpectLoadRejects(header + "Q 1 2\n", "unknown tag");
  ExpectLoadRejects(header + "FF 1 2\n", "multi-char tag");
  ExpectLoadRejects(header + "F 1 4294967295\n", "id == kInvalidNode");
}

TEST(MutationLogTest, LoadAcceptsPlainCommentsWithoutCounts) {
  const std::string path = ::testing::TempDir() + "/mutation_log_comment.txt";
  {
    std::ofstream out(path);
    out << "# just a comment\nF 0 1\n";
  }
  const MutationLog log = MutationLog::Load(path);
  EXPECT_EQ(log.NumEvents(), 1u);
  EXPECT_EQ(log.NumNodes(), 2u);
  std::remove(path.c_str());
}

// ---------- DeltaGraph units ----------

TEST(DeltaGraphTest, OverlayAccessorsTrackEvents) {
  DeltaGraph d(graph::NodeId{6});
  EXPECT_TRUE(d.Apply({EventType::kAccept, 0, 1}));
  EXPECT_TRUE(d.Apply({EventType::kReject, 2, 3}));
  EXPECT_TRUE(d.HasFriendship(0, 1));
  EXPECT_TRUE(d.HasFriendship(1, 0));
  EXPECT_TRUE(d.HasArc(3, 2));  // 3 rejected 2's request
  EXPECT_FALSE(d.HasArc(2, 3));
  EXPECT_EQ(d.NumFriendships(), 1u);
  EXPECT_EQ(d.NumArcs(), 1u);
  EXPECT_EQ(d.FriendshipDegree(0), 1u);
  EXPECT_EQ(d.RejectionOutDegree(3), 1u);
  EXPECT_EQ(d.RejectionInDegree(2), 1u);
}

TEST(DeltaGraphTest, DuplicateEventsAreNoOps) {
  DeltaGraph d(graph::NodeId{4});
  EXPECT_TRUE(d.Apply({EventType::kAccept, 0, 1}));
  EXPECT_FALSE(d.Apply({EventType::kAccept, 0, 1}));
  EXPECT_FALSE(d.Apply({EventType::kAddFriend, 1, 0}));  // mirrored duplicate
  EXPECT_TRUE(d.Apply({EventType::kReject, 2, 3}));
  EXPECT_FALSE(d.Apply({EventType::kReject, 2, 3}));
  EXPECT_TRUE(d.Apply({EventType::kRemoveNode, 1, 1}));   // erases 0–1
  EXPECT_FALSE(d.Apply({EventType::kRemoveNode, 1, 1}));  // already isolated
  EXPECT_EQ(d.Stats().events_noop, 4u);
  EXPECT_EQ(d.NumFriendships(), 0u);  // removal of 1 erased the edge
  EXPECT_EQ(d.NumArcs(), 1u);
}

TEST(DeltaGraphTest, RemoveNodeIsolatesButKeepsIdSlot) {
  MutationLog log(5);
  log.AddFriend(0, 1);
  log.AddFriend(1, 2);
  log.Reject(1, 3);
  log.Reject(4, 1);
  DeltaGraph d(log.BuildAugmentedGraph());
  EXPECT_TRUE(d.Apply({EventType::kRemoveNode, 1, 1}));
  EXPECT_EQ(d.NumNodes(), 5u);
  EXPECT_EQ(d.FriendshipDegree(1), 0u);
  EXPECT_EQ(d.RejectionOutDegree(1), 0u);
  EXPECT_EQ(d.RejectionInDegree(1), 0u);
  EXPECT_EQ(d.NumFriendships(), 0u);
  EXPECT_EQ(d.NumArcs(), 0u);
  // Re-populating the same slot works.
  EXPECT_TRUE(d.Apply({EventType::kAccept, 1, 4}));
  EXPECT_TRUE(d.HasFriendship(4, 1));
}

TEST(DeltaGraphTest, UnRemoveCancelsInsteadOfGrowingOverlay) {
  MutationLog log(3);
  log.AddFriend(0, 1);
  DeltaGraph d(log.BuildAugmentedGraph());
  EXPECT_TRUE(d.Apply({EventType::kRemoveNode, 1, 1}));
  EXPECT_EQ(d.OverlaySize(), 2u);
  EXPECT_TRUE(d.Apply({EventType::kAddFriend, 0, 1}));
  EXPECT_EQ(d.OverlaySize(), 0u);  // un-removed, not re-added
  EXPECT_EQ(d.Graph(), log.BuildAugmentedGraph());  // base untouched
}

TEST(DeltaGraphTest, AutoCompactionRespectsPolicy) {
  DeltaConfig cfg;
  cfg.compact_fraction = 0.5;
  cfg.min_compact_overlay = 8;
  DeltaGraph d(graph::NodeId{64}, cfg);
  // Empty base: base_csr_entries == 0, so the fraction test passes as soon
  // as the absolute floor is met.
  for (graph::NodeId v = 1; v <= 3; ++v) {
    d.Apply({EventType::kAccept, 0, v});
  }
  EXPECT_EQ(d.Stats().compactions, 0u);
  d.Apply({EventType::kAccept, 0, 4});  // overlay hits 8 entries
  EXPECT_EQ(d.Stats().compactions, 1u);
  EXPECT_EQ(d.OverlaySize(), 0u);
  EXPECT_EQ(d.Graph().Friendships().NumEdges(), 4u);
}

TEST(DeltaGraphTest, ZeroFractionDisablesAutoCompaction) {
  DeltaConfig cfg;
  cfg.compact_fraction = 0.0;
  cfg.min_compact_overlay = 1;
  DeltaGraph d(graph::NodeId{16}, cfg);
  for (graph::NodeId v = 1; v < 16; ++v) {
    d.Apply({EventType::kAccept, 0, v});
  }
  EXPECT_EQ(d.Stats().compactions, 0u);
  d.Compact();
  EXPECT_EQ(d.Stats().compactions, 1u);
}

// ---------- randomized property suite ----------

// Random event log over a small id space: every event type, guaranteed
// duplicate deliveries and node removals.
MutationLog RandomLog(util::Rng& rng, graph::NodeId n, std::size_t events) {
  MutationLog log(n);
  for (std::size_t i = 0; i < events; ++i) {
    const double roll = rng.NextDouble();
    if (roll < 0.12 && log.NumEvents() > 0) {
      // Redeliver an earlier event verbatim (duplicate / out-of-order).
      log.Append(log.Events()[rng.NextUInt(log.NumEvents())]);
      continue;
    }
    const auto u = static_cast<graph::NodeId>(rng.NextUInt(n));
    if (roll < 0.20) {
      log.RemoveNode(u);
      continue;
    }
    auto v = static_cast<graph::NodeId>(rng.NextUInt(n - 1));
    if (v >= u) ++v;  // uniform over pairs, never a self-edge
    if (roll < 0.45) {
      log.Reject(u, v);
    } else if (roll < 0.55) {
      log.AddFriend(u, v);
    } else {
      log.Accept(u, v);
    }
  }
  return log;
}

class StreamPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamPropertyTest, ReplayMatchesOracleAndConservesCounts) {
  util::Rng rng(GetParam() * 0x9e3779b9ULL + 17);
  const graph::NodeId n =
      8 + static_cast<graph::NodeId>(rng.NextUInt(40));
  const MutationLog log = RandomLog(rng, n, 60 + rng.NextUInt(120));

  // Random compaction policy, so compactions interleave with ingest at
  // arbitrary points across the 200 instances.
  DeltaConfig cfg;
  cfg.compact_fraction = rng.NextBool(0.5) ? rng.NextDouble(0.05, 1.0) : 0.0;
  cfg.min_compact_overlay = 1 + rng.NextUInt(64);
  DeltaGraph d(log.NumNodes(), cfg);
  d.ApplyAll(log.Events());

  // Count conservation: the overlay bookkeeping must agree with the oracle
  // before any final compaction happens.
  const graph::AugmentedGraph batch = log.BuildAugmentedGraph();
  EXPECT_EQ(d.NumNodes(), batch.NumNodes());
  EXPECT_EQ(d.NumFriendships(), batch.Friendships().NumEdges());
  EXPECT_EQ(d.NumArcs(), batch.Rejections().NumArcs());
  for (graph::NodeId v = 0; v < batch.NumNodes(); ++v) {
    ASSERT_EQ(d.FriendshipDegree(v), batch.Friendships().Degree(v)) << v;
    ASSERT_EQ(d.RejectionOutDegree(v), batch.Rejections().OutDegree(v)) << v;
    ASSERT_EQ(d.RejectionInDegree(v), batch.Rejections().InDegree(v)) << v;
  }

  // Replay + compaction is byte-identical to batch construction, and
  // compaction changes no effective quantity.
  d.Compact();
  EXPECT_EQ(d.Graph(), batch);
  EXPECT_EQ(d.NumFriendships(), batch.Friendships().NumEdges());
  EXPECT_EQ(d.NumArcs(), batch.Rejections().NumArcs());
  EXPECT_EQ(d.OverlaySize(), 0u);
}

TEST_P(StreamPropertyTest, DuplicateDeliveryIsIdempotent) {
  util::Rng rng(GetParam() * 7919ULL + 3);
  const graph::NodeId n =
      8 + static_cast<graph::NodeId>(rng.NextUInt(24));
  const MutationLog log = RandomLog(rng, n, 40 + rng.NextUInt(60));

  // Redelivering a random suffix of the log (no interleaved mutations, so
  // the graph state they act on is unchanged) must be all no-ops.
  DeltaGraph once(log.NumNodes());
  once.ApplyAll(log.Events());
  DeltaGraph twice(log.NumNodes());
  twice.ApplyAll(log.Events());
  const std::size_t tail =
      log.NumEvents() - log.NumEvents() / 4;  // last quarter again
  std::uint64_t changed = 0;
  for (std::size_t i = tail; i < log.NumEvents(); ++i) {
    const Event& e = log.Events()[i];
    // Only events whose effect is still live are guaranteed no-ops; a
    // removal re-delivered after the node was re-populated does change
    // state. Replay only the idempotent kinds.
    if (e.type == EventType::kRemoveNode) continue;
    // An add whose endpoint was later removed is not a duplicate either —
    // skip unless the edge/arc is still present.
    const bool live = (e.type == EventType::kReject)
                          ? twice.HasArc(e.v, e.u)
                          : twice.HasFriendship(e.u, e.v);
    if (!live) continue;
    changed += twice.Apply(e) ? 1 : 0;
  }
  EXPECT_EQ(changed, 0u);
  once.Compact();
  twice.Compact();
  EXPECT_EQ(once.Graph(), twice.Graph());
}

TEST_P(StreamPropertyTest, AcceptAfterRejectYieldsEdgeAndArc) {
  util::Rng rng(GetParam() * 104729ULL + 11);
  const graph::NodeId n =
      6 + static_cast<graph::NodeId>(rng.NextUInt(20));
  MutationLog log = RandomLog(rng, n, 30 + rng.NextUInt(40));
  // Append a fresh reject→accept pair guaranteed to survive (no later
  // removals touch it).
  const auto u = static_cast<graph::NodeId>(rng.NextUInt(n));
  auto v = static_cast<graph::NodeId>(rng.NextUInt(n - 1));
  if (v >= u) ++v;
  log.Reject(u, v);
  log.Accept(u, v);
  DeltaGraph d(log.NumNodes());
  d.ApplyAll(log.Events());
  EXPECT_TRUE(d.HasFriendship(u, v));
  EXPECT_TRUE(d.HasArc(v, u));
  d.Compact();
  EXPECT_EQ(d.Graph(), log.BuildAugmentedGraph());
}

INSTANTIATE_TEST_SUITE_P(RandomLogs, StreamPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 200));

// ---------- sim feed ----------

TEST(StreamFeedTest, TranslationPreservesTheBatchGraph) {
  sim::RequestLog log(6);
  log.Add(0, 1, sim::Response::kAccepted);
  log.Add(2, 3, sim::Response::kRejected);
  log.Add(4, 5, sim::Response::kAccepted);
  const MutationLog mlog = sim::ToMutationLog(log);
  EXPECT_EQ(mlog.NumNodes(), log.NumNodes());
  EXPECT_EQ(mlog.NumEvents(), log.NumRequests());
  EXPECT_EQ(mlog.BuildAugmentedGraph(), log.BuildAugmentedGraph());
}

TEST(StreamFeedTest, ChurnLogIsDeterministicAndSelfConsistent) {
  sim::RequestLog log(20);
  util::Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    const auto s = static_cast<graph::NodeId>(rng.NextUInt(20));
    auto r = static_cast<graph::NodeId>(rng.NextUInt(19));
    if (r >= s) ++r;
    log.Add(s, r,
            rng.NextBool(0.5) ? sim::Response::kAccepted
                              : sim::Response::kRejected);
  }
  sim::ChurnConfig cfg;
  cfg.seed = 77;
  const MutationLog a = sim::GenerateChurnLog(log, cfg);
  const MutationLog b = sim::GenerateChurnLog(log, cfg);
  ASSERT_EQ(a.NumEvents(), b.NumEvents());
  for (std::size_t i = 0; i < a.NumEvents(); ++i) {
    ASSERT_EQ(a.Events()[i], b.Events()[i]);
  }
  EXPECT_GT(a.NumEvents(), log.NumRequests());  // churn added events
  // The perturbed stream still replays cleanly against its own oracle.
  DeltaGraph d(a.NumNodes());
  d.ApplyAll(a.Events());
  d.Compact();
  EXPECT_EQ(d.Graph(), a.BuildAugmentedGraph());
}

}  // namespace
}  // namespace rejecto
