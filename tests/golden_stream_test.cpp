// Golden end-to-end streaming regression: a fixed scenario streamed through
// the EpochDetector must keep producing the exact pinned detected-Sybil set
// and MAAR ratio. Catches any silent behaviour change anywhere in the
// stack — event semantics, compaction, warm starts, the MAAR sweep.
//
// Regenerating the golden file after an INTENDED behaviour change:
//   REJECTO_REGEN_GOLDEN=1 ./build/tests/golden_stream_test
// then inspect the diff of tests/golden/stream_detection.txt and commit it
// alongside the change that moved the numbers.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/epoch_detector.h"
#include "gen/holme_kim.h"
#include "metrics/classification.h"
#include "sim/scenario.h"
#include "sim/stream_feed.h"
#include "util/flags.h"

#ifndef REJECTO_GOLDEN_DIR
#error "REJECTO_GOLDEN_DIR must be defined by the build"
#endif

namespace rejecto {
namespace {

struct GoldenResult {
  double maar_ratio = 0.0;                // first-round ratio, final epoch
  std::vector<graph::NodeId> detected;    // final epoch, sorted by rounds
};

GoldenResult RunPinnedWorkload() {
  // Everything below is seeded; the whole pipeline is deterministic and
  // thread-invariant, so the outputs are stable across machines.
  util::Rng rng(2024);
  const auto legit = gen::HolmeKim(
      {.num_nodes = 1'200, .edges_per_node = 4, .triad_probability = 0.5},
      rng);
  sim::ScenarioConfig cfg;
  cfg.seed = 99;
  cfg.num_fakes = 240;
  const auto scenario = sim::BuildScenario(legit, cfg);
  util::Rng seed_rng(7);
  const auto seeds = scenario.SampleSeeds(20, 8, seed_rng);

  sim::ChurnConfig churn;
  churn.seed = 4242;
  const auto log = sim::GenerateChurnLog(scenario.log, churn);

  engine::EpochConfig ecfg;
  ecfg.detect.target_detections = cfg.num_fakes;
  ecfg.detect.maar.seed = 31;
  ecfg.detect.maar.num_threads = util::ThreadCount();
  ecfg.warm_start = true;
  ecfg.events_per_epoch = log.NumEvents() / 2 + 1;  // one mid-stream epoch
  engine::EpochDetector det(log.NumNodes(), seeds, ecfg);
  det.IngestAll(log.Events());
  const auto& last = det.RunEpoch();

  // Sanity floor so the golden never pins a degenerate run: the pinned
  // detection should remain a near-perfect catch of the injected fakes.
  const auto cm =
      metrics::EvaluateDetection(scenario.is_fake, det.LastResult().detected);
  EXPECT_GE(cm.Precision(), 0.9);
  EXPECT_GE(last.num_detected, 200u);

  return {last.first_round_ratio, det.LastResult().detected};
}

const char* GoldenPath() {
  return REJECTO_GOLDEN_DIR "/stream_detection.txt";
}

void WriteGolden(const GoldenResult& r) {
  std::ofstream out(GoldenPath());
  ASSERT_TRUE(out) << "cannot write " << GoldenPath();
  out.precision(17);
  out << "# pinned by golden_stream_test; regenerate with "
         "REJECTO_REGEN_GOLDEN=1\n";
  out << "maar_ratio " << r.maar_ratio << '\n';
  out << "detected " << r.detected.size();
  for (graph::NodeId v : r.detected) out << ' ' << v;
  out << '\n';
}

GoldenResult ReadGolden() {
  std::ifstream in(GoldenPath());
  EXPECT_TRUE(in) << "missing golden file " << GoldenPath()
                  << " — regenerate with REJECTO_REGEN_GOLDEN=1";
  GoldenResult r;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "maar_ratio") {
      ls >> r.maar_ratio;
    } else if (key == "detected") {
      std::size_t count = 0;
      ls >> count;
      r.detected.resize(count);
      for (std::size_t i = 0; i < count; ++i) ls >> r.detected[i];
    }
  }
  return r;
}

TEST(GoldenStreamTest, DetectedSetAndMaarValuePinned) {
  const GoldenResult actual = RunPinnedWorkload();
  if (util::GetEnvBool("REJECTO_REGEN_GOLDEN", false)) {
    WriteGolden(actual);
    GTEST_SKIP() << "golden regenerated at " << GoldenPath();
  }
  const GoldenResult expected = ReadGolden();
  EXPECT_NEAR(actual.maar_ratio, expected.maar_ratio, 1e-9);
  EXPECT_EQ(actual.detected, expected.detected);
}

}  // namespace
}  // namespace rejecto
