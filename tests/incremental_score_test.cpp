// Sub-epoch incremental scoring (detect/incremental.h and the DeltaGraph /
// EpochDetector seam): the O(deg) gain must be EXACTLY the objective delta
// W(U ∪ {s}) − W(U) against the batch ComputeCut oracle, the overlay-aware
// detector variant must match the compacted-CSR variant with events still
// in the overlay, and — the acceptance bar — the incremental classification
// must agree with a full re-detection's round-0 membership on at least 95%
// of clearly-shaped new senders.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "detect/incremental.h"
#include "detect/iterative.h"
#include "engine/epoch_detector.h"
#include "gen/erdos_renyi.h"
#include "sim/scenario.h"
#include "stream/mutation_log.h"
#include "util/rng.h"

namespace rejecto {
namespace {

double Objective(const graph::AugmentedGraph& g, const std::vector<char>& u,
                 double k) {
  const graph::CutQuantities cut = g.ComputeCut(u);
  return static_cast<double>(cut.cross_friendships) -
         k * static_cast<double>(cut.rejections_into_u);
}

sim::Scenario SmallScenario(std::uint64_t seed) {
  util::Rng rng(seed + 17);
  const auto legit =
      gen::ErdosRenyi({.num_nodes = 400, .num_edges = 1600}, rng);
  sim::ScenarioConfig cfg;
  cfg.seed = seed * 5 + 3;
  cfg.num_fakes = 80;
  return sim::BuildScenario(legit, cfg);
}

// ---------- exact-gain oracle ----------

TEST(IncrementalScoreTest, GainIsExactObjectiveDelta) {
  const auto scenario = SmallScenario(1);
  const graph::AugmentedGraph& g = scenario.graph;
  util::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<char> in_u(g.NumNodes(), 0);
    for (graph::NodeId v = 0; v < g.NumNodes(); ++v) {
      in_u[v] = rng.NextBool(0.2) ? 1 : 0;
    }
    const double k = rng.NextDouble(0.25, 4.0);
    auto s = static_cast<graph::NodeId>(rng.NextUInt(g.NumNodes()));
    in_u[s] = 0;  // score a sender outside U

    const auto score = detect::ScoreSenderIncremental(g, in_u, k, s);
    std::vector<char> with_s = in_u;
    with_s[s] = 1;
    const double oracle = Objective(g, with_s, k) - Objective(g, in_u, k);
    EXPECT_NEAR(score.gain, oracle, 1e-9) << "trial " << trial << " s=" << s;
    EXPECT_EQ(score.suspicious, score.gain < 0.0);
  }
}

TEST(IncrementalScoreTest, MemberOfMaskIsSuspiciousWithZeroGain) {
  const auto scenario = SmallScenario(2);
  std::vector<char> in_u(scenario.graph.NumNodes(), 0);
  in_u[7] = 1;
  const auto score = detect::ScoreSenderIncremental(scenario.graph, in_u,
                                                    1.0, 7);
  EXPECT_TRUE(score.suspicious);
  EXPECT_EQ(score.gain, 0.0);
}

TEST(IncrementalScoreTest, RejectsInvalidArguments) {
  const auto scenario = SmallScenario(3);
  const graph::AugmentedGraph& g = scenario.graph;
  std::vector<char> in_u(g.NumNodes(), 0);
  EXPECT_THROW(detect::ScoreSenderIncremental(g, in_u, 0.0, 0),
               std::invalid_argument);
  EXPECT_THROW(detect::ScoreSenderIncremental(g, in_u, -1.0, 0),
               std::invalid_argument);
  EXPECT_THROW(detect::ScoreSenderIncremental(g, in_u, 1.0, g.NumNodes()),
               std::out_of_range);
  std::vector<char> short_mask(g.NumNodes() - 1, 0);
  EXPECT_THROW(detect::ScoreSenderIncremental(g, short_mask, 1.0, 0),
               std::invalid_argument);
}

// ---------- the overlay-aware detector variant ----------

TEST(IncrementalScoreTest, DetectorScoreMatchesCsrScoreWithOverlayEvents) {
  const auto scenario = SmallScenario(4);
  util::Rng seed_rng(11);
  const auto seeds = scenario.SampleSeeds(15, 5, seed_rng);

  engine::EpochConfig ecfg;
  ecfg.detect.target_detections = scenario.num_fakes;
  ecfg.detect.maar.seed = 23;
  ecfg.events_per_epoch = 0;
  engine::EpochDetector det(scenario.graph, seeds, ecfg);
  det.RunEpoch();
  ASSERT_TRUE(det.HasIncrementalBaseline());

  // New sender joins AFTER the baseline epoch; its entire history sits in
  // the un-compacted overlay.
  const graph::NodeId s = scenario.graph.NumNodes();
  util::Rng rng(5);
  for (int i = 0; i < 6; ++i) {
    const auto v = static_cast<graph::NodeId>(
        rng.NextUInt(scenario.num_legit));
    det.Ingest({stream::EventType::kReject, s, v});
    det.Ingest({stream::EventType::kAccept, s,
                static_cast<graph::NodeId>(scenario.num_legit +
                                           rng.NextUInt(scenario.num_fakes))});
  }
  const auto overlay_score = det.ScoreSenderIncremental(s);

  // Compacting must not change the answer (visitors read effective rows).
  const std::vector<char> mask = det.IncrementalMask();
  const double k = det.IncrementalK();
  // Rebuild the same overlay on a standalone DeltaGraph, compact it into a
  // full CSR, and score against the pure-CSR implementation.
  util::Rng rng2(5);
  stream::DeltaGraph delta(scenario.graph);
  for (int i = 0; i < 6; ++i) {
    const auto v = static_cast<graph::NodeId>(
        rng2.NextUInt(scenario.num_legit));
    delta.Apply({stream::EventType::kReject, s, v});
    delta.Apply({stream::EventType::kAccept, s,
                 static_cast<graph::NodeId>(
                     scenario.num_legit + rng2.NextUInt(scenario.num_fakes))});
  }
  delta.Compact();
  std::vector<char> grown_mask = mask;
  grown_mask.resize(delta.Graph().NumNodes(), 0);
  const auto csr_score =
      detect::ScoreSenderIncremental(delta.Graph(), grown_mask, k, s);
  EXPECT_NEAR(overlay_score.gain, csr_score.gain, 1e-12);
  EXPECT_EQ(overlay_score.suspicious, csr_score.suspicious);
}

TEST(IncrementalScoreTest, DetectorThrowsWithoutBaseline) {
  const auto scenario = SmallScenario(5);
  util::Rng seed_rng(11);
  const auto seeds = scenario.SampleSeeds(15, 5, seed_rng);
  engine::EpochConfig ecfg;
  ecfg.detect.target_detections = scenario.num_fakes;
  ecfg.events_per_epoch = 0;
  engine::EpochDetector det(scenario.graph, seeds, ecfg);
  EXPECT_FALSE(det.HasIncrementalBaseline());
  EXPECT_THROW(det.ScoreSenderIncremental(0), std::logic_error);
}

// ---------- agreement with full re-detection (the acceptance bar) ----------

// New senders with a clear shape — spammy (mostly-rejected requests plus
// friendships into the fake region) or benign (accepted requests to
// legitimate users) — must be classified by the O(deg) incremental score
// the same way a full batch re-detection's round-0 region places them, on
// at least 95% of samples. The floor is pinned; a regression in either the
// solver or the incremental math trips it.
TEST(IncrementalScoreTest, AgreesWithFullRedetectionOnNewSenders) {
  const auto scenario = SmallScenario(6);
  detect::IterativeConfig dcfg;
  dcfg.target_detections = scenario.num_fakes;
  dcfg.maar.seed = 23;
  util::Rng seed_rng(11);
  const auto seeds = scenario.SampleSeeds(15, 5, seed_rng);

  const auto base = detect::DetectFriendSpammers(scenario.graph, seeds, dcfg);
  ASSERT_FALSE(base.rounds.empty());
  const double k = base.rounds.front().k;
  std::vector<char> mask(scenario.graph.NumNodes() + 1, 0);
  for (graph::NodeId v : base.rounds.front().detected) mask[v] = 1;

  util::Rng rng(2718);
  const graph::NodeId s = scenario.graph.NumNodes();  // the new sender's id
  int trials = 0;
  int agreements = 0;
  for (int t = 0; t < 40; ++t) {
    const bool spammy = (t % 2) == 0;
    sim::RequestLog log(s + 1);
    for (const sim::FriendRequest& r : scenario.log.Requests()) {
      log.Add(r.sender, r.receiver, r.response);
    }
    if (spammy) {
      for (std::uint64_t v :
           rng.SampleWithoutReplacement(scenario.num_legit, 10)) {
        log.Add(s, static_cast<graph::NodeId>(v),
                rng.NextBool(0.75) ? sim::Response::kRejected
                                   : sim::Response::kAccepted);
      }
      for (std::uint64_t f :
           rng.SampleWithoutReplacement(scenario.num_fakes, 5)) {
        log.Add(s, static_cast<graph::NodeId>(scenario.num_legit + f),
                sim::Response::kAccepted);
      }
    } else {
      for (std::uint64_t v :
           rng.SampleWithoutReplacement(scenario.num_legit, 8)) {
        log.Add(s, static_cast<graph::NodeId>(v),
                rng.NextBool(0.9) ? sim::Response::kAccepted
                                  : sim::Response::kRejected);
      }
    }
    const graph::AugmentedGraph with_s = log.BuildAugmentedGraph();
    const auto incr = detect::ScoreSenderIncremental(with_s, mask, k, s);

    // Full re-detection sees one more account in its population estimate.
    detect::IterativeConfig rcfg = dcfg;
    rcfg.target_detections = scenario.num_fakes + 1;
    const auto redetect = detect::DetectFriendSpammers(with_s, seeds, rcfg);
    ASSERT_FALSE(redetect.rounds.empty());
    bool in_round0 = false;
    for (graph::NodeId v : redetect.rounds.front().detected) {
      if (v == s) in_round0 = true;
    }
    ++trials;
    if (in_round0 == incr.suspicious) ++agreements;
  }
  const double agreement =
      static_cast<double>(agreements) / static_cast<double>(trials);
  EXPECT_GE(agreement, 0.95) << agreements << "/" << trials;
}

}  // namespace
}  // namespace rejecto
