// Verifies the tentpole "zero heap allocations in the steady-state pass
// loop" claim with a counting global allocator: once a KlScratch has been
// warmed on a graph, a second ExtendedKl run on the same graph may allocate
// only the returned result mask (≤ 2 allocations end to end, nothing per
// pass or per switch). Lives in its own test binary because the operator
// new/delete replacements are global.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "detect/extended_kl.h"
#include "graph/builder.h"
#include "util/rng.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};

void* CountedAlloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t padded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, padded == 0 ? align : padded);
}
}  // namespace

void* operator new(std::size_t size) {
  if (void* p = CountedAlloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  if (void* p = CountedAlloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace rejecto::detect {
namespace {

graph::AugmentedGraph BuildGraph(graph::NodeId n, util::Rng& rng) {
  graph::GraphBuilder b(n);
  for (std::size_t e = 0; e < static_cast<std::size_t>(4) * n; ++e) {
    const auto u = static_cast<graph::NodeId>(rng.NextUInt(n));
    auto v = static_cast<graph::NodeId>(rng.NextUInt(n));
    if (u == v) v = (v + 1) % n;
    b.AddFriendship(u, v);
    if (rng.NextBool(0.4)) b.AddRejection(u, v);
  }
  return b.BuildAugmented();
}

TEST(KlAllocationTest, SteadyStateRunAllocatesOnlyTheResultMask) {
  util::Rng rng(17);
  const graph::NodeId n = 200;
  const auto g = BuildGraph(n, rng);
  std::vector<char> init(n, 0);
  for (auto& c : init) c = rng.NextBool(0.3) ? 1 : 0;
  const std::vector<char> locked;
  const KlConfig cfg{.k = 1.0};

  KlScratch scratch;
  const auto warm = ExtendedKl(g, init, locked, cfg, &scratch);
  ASSERT_GT(warm.stats.passes, 0);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  const auto second = ExtendedKl(g, init, locked, cfg, &scratch);
  const std::uint64_t delta =
      g_allocations.load(std::memory_order_relaxed) - before;

  // The workspace is warm: partition arrays, bucket arrays, seq and touched
  // all reuse capacity, so the entire call may allocate at most the
  // returned mask copy (one vector, counted once; allow one spare for the
  // result's move-out).
  EXPECT_LE(delta, 2u) << "steady-state ExtendedKl allocated " << delta
                       << " times";
  EXPECT_EQ(second.in_u, warm.in_u);
  EXPECT_EQ(second.cut.cross_friendships, warm.cut.cross_friendships);
  EXPECT_EQ(second.cut.rejections_into_u, warm.cut.rejections_into_u);
}

TEST(KlAllocationTest, CounterObservesOrdinaryAllocations) {
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  std::vector<int>* v = new std::vector<int>(100);
  delete v;
  EXPECT_GT(g_allocations.load(std::memory_order_relaxed), before);
}

}  // namespace
}  // namespace rejecto::detect
