// Golden pins for the three ADAPTIVE temporal adversaries: a fixed seeded
// world driven through the early-detection harness must keep producing the
// exact final detected set and the exact time-to-detection histogram.
// Catches silent behaviour drift anywhere in the temporal stack — the
// adversary policies, propensity draws, suspension feedback, the epoch
// pipeline, or the incremental scoring tier that assigns first-flags.
//
// Regenerating after an INTENDED behaviour change:
//   REJECTO_REGEN_GOLDEN=1 ./build/tests/golden_temporal_test
// then inspect the diffs of tests/golden/temporal_*.txt and commit them
// alongside the change that moved the numbers.
#include <gtest/gtest.h>

#include <array>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gen/erdos_renyi.h"
#include "sim/temporal_eval.h"
#include "study/early_detection.h"
#include "util/flags.h"

#ifndef REJECTO_GOLDEN_DIR
#error "REJECTO_GOLDEN_DIR must be defined by the build"
#endif

namespace rejecto {
namespace {

// Histogram buckets over spam-requests-sent-before-first-flag:
// [0,5) [5,10) [10,20) [20,50) [50,inf) plus a never-detected bucket.
constexpr std::size_t kNumBuckets = 6;
constexpr std::uint32_t kBucketEdges[] = {5, 10, 20, 50};

struct GoldenResult {
  std::vector<graph::NodeId> detected;        // final epoch, pipeline order
  std::array<std::uint64_t, kNumBuckets> ttd_histogram{};
};

std::size_t BucketOf(std::int64_t ttd) {
  if (ttd < 0) return kNumBuckets - 1;  // never detected
  for (std::size_t b = 0; b < 4; ++b) {
    if (ttd < kBucketEdges[b]) return b;
  }
  return 4;
}

GoldenResult RunPinnedWorkload(sim::AdversaryKind kind) {
  // Fully seeded and thread-invariant, so the outputs are stable across
  // machines and pool widths.
  // Sized so the attack unfolds across the intervals rather than the
  // prelude epoch isolating the arrival-linked fake cluster outright.
  util::Rng graph_rng(321);
  const auto legit =
      gen::ErdosRenyi({.num_nodes = 400, .num_edges = 1600}, graph_rng);
  sim::TemporalEvalConfig cfg;
  cfg.seed = 99;
  cfg.num_fakes = 60;
  cfg.num_intervals = 4;
  cfg.requests_per_spammer_per_interval = 5;
  cfg.adversary = kind;

  sim::TemporalWorld world(legit, cfg);
  sim::AdaptiveAdversary adversary(world);
  util::Rng seed_rng(7);
  const auto seeds = world.SampleSeeds(12, 6, seed_rng);

  study::EarlyDetectionConfig ecfg;
  ecfg.detect.target_detections = world.NumFakes();
  ecfg.detect.maar.seed = 31;
  ecfg.detect.maar.num_threads = util::ThreadCount();
  const auto res = study::RunEarlyDetection(world, adversary, seeds, ecfg);

  // Sanity floors so a golden never pins a degenerate run: the campaign
  // must actually happen and most of the region must get caught.
  EXPECT_GT(res.total_spam_requests, 0u);
  EXPECT_GE(res.spammers_detected, res.spammers_total / 2);

  GoldenResult r;
  r.detected = res.final_detection.detected;
  for (graph::NodeId f : world.Spammers()) {
    ++r.ttd_histogram[BucketOf(res.time_to_detection[f])];
  }
  return r;
}

std::string GoldenPath(sim::AdversaryKind kind) {
  return std::string(REJECTO_GOLDEN_DIR "/temporal_") +
         std::string(sim::AdversaryName(kind)) + ".txt";
}

void WriteGolden(sim::AdversaryKind kind, const GoldenResult& r) {
  std::ofstream out(GoldenPath(kind));
  ASSERT_TRUE(out) << "cannot write " << GoldenPath(kind);
  out << "# pinned by golden_temporal_test; regenerate with "
         "REJECTO_REGEN_GOLDEN=1\n";
  out << "ttd_histogram";
  for (std::uint64_t c : r.ttd_histogram) out << ' ' << c;
  out << '\n';
  out << "detected " << r.detected.size();
  for (graph::NodeId v : r.detected) out << ' ' << v;
  out << '\n';
}

GoldenResult ReadGolden(sim::AdversaryKind kind) {
  std::ifstream in(GoldenPath(kind));
  EXPECT_TRUE(in) << "missing golden file " << GoldenPath(kind)
                  << " — regenerate with REJECTO_REGEN_GOLDEN=1";
  GoldenResult r;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "ttd_histogram") {
      for (std::size_t b = 0; b < kNumBuckets; ++b) ls >> r.ttd_histogram[b];
    } else if (key == "detected") {
      std::size_t count = 0;
      ls >> count;
      r.detected.resize(count);
      for (std::size_t i = 0; i < count; ++i) ls >> r.detected[i];
    }
  }
  return r;
}

class GoldenTemporalTest
    : public ::testing::TestWithParam<sim::AdversaryKind> {};

TEST_P(GoldenTemporalTest, DetectedSetAndTtdHistogramPinned) {
  const sim::AdversaryKind kind = GetParam();
  const GoldenResult actual = RunPinnedWorkload(kind);
  if (util::GetEnvBool("REJECTO_REGEN_GOLDEN", false)) {
    WriteGolden(kind, actual);
    GTEST_SKIP() << "golden regenerated at " << GoldenPath(kind);
  }
  const GoldenResult expected = ReadGolden(kind);
  EXPECT_EQ(actual.ttd_histogram, expected.ttd_histogram);
  EXPECT_EQ(actual.detected, expected.detected);
}

INSTANTIATE_TEST_SUITE_P(
    AdaptiveAdversaries, GoldenTemporalTest,
    ::testing::Values(sim::AdversaryKind::kProbeThenFlood,
                      sim::AdversaryKind::kRejectionRetarget,
                      sim::AdversaryKind::kSlowDripCollusion),
    [](const ::testing::TestParamInfo<sim::AdversaryKind>& info) {
      return std::string(sim::AdversaryName(info.param));
    });

}  // namespace
}  // namespace rejecto
