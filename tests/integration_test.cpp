// End-to-end pipeline tests: scenario -> detectors -> metrics, at reduced
// scale, asserting the paper's qualitative claims hold.
#include <gtest/gtest.h>

#include "baseline/acceptance_filter.h"
#include "baseline/sybilrank.h"
#include "baseline/votetrust.h"
#include "detect/iterative.h"
#include "engine/epoch_detector.h"
#include "gen/barabasi_albert.h"
#include "gen/holme_kim.h"
#include "graph/subgraph.h"
#include "metrics/classification.h"
#include "metrics/ranking.h"
#include "sim/scenario.h"
#include "sim/stream_feed.h"
#include "sim/temporal.h"

namespace rejecto {
namespace {

struct Pipeline {
  sim::Scenario scenario;
  detect::Seeds seeds;

  static Pipeline Make(sim::ScenarioConfig cfg, graph::NodeId legit_nodes) {
    util::Rng rng(17);
    const auto legit = gen::HolmeKim({.num_nodes = legit_nodes,
                                      .edges_per_node = 4,
                                      .triad_probability = 0.5},
                                     rng);
    Pipeline p{sim::BuildScenario(legit, cfg), {}};
    util::Rng seed_rng(23);
    p.seeds = p.scenario.SampleSeeds(20, 8, seed_rng);
    return p;
  }

  metrics::ConfusionCounts RunRejecto() const {
    detect::IterativeConfig cfg;
    cfg.target_detections = scenario.num_fakes;
    cfg.maar.seed = 31;
    const auto result =
        detect::DetectFriendSpammers(scenario.graph, seeds, cfg);
    return metrics::EvaluateDetection(scenario.is_fake, result.detected);
  }

  metrics::ConfusionCounts RunVoteTrust() const {
    baseline::VoteTrustConfig cfg;
    cfg.trust_seeds = seeds.legit;
    const auto vt = baseline::RunVoteTrust(scenario.log, cfg);
    return metrics::EvaluateDetection(
        scenario.is_fake,
        metrics::LowestScored(vt.ratings, scenario.num_fakes));
  }
};

TEST(IntegrationTest, BaselineAttackRejectoNearPerfect) {
  sim::ScenarioConfig cfg;
  cfg.seed = 3;
  cfg.num_fakes = 400;
  const auto p = Pipeline::Make(cfg, 2000);
  const auto cm = p.RunRejecto();
  EXPECT_GE(cm.Precision(), 0.95);
  EXPECT_DOUBLE_EQ(cm.Precision(), cm.Recall());  // declared == injected
}

TEST(IntegrationTest, RejectoBeatsVoteTrustUnderStealth) {
  // Fig 10's claim: with half the fakes spamming, VoteTrust misses the
  // silent half while Rejecto stays high.
  sim::ScenarioConfig cfg;
  cfg.seed = 4;
  cfg.num_fakes = 400;
  cfg.spamming_fraction = 0.5;
  const auto p = Pipeline::Make(cfg, 2000);
  const auto rejecto = p.RunRejecto();
  const auto votetrust = p.RunVoteTrust();
  EXPECT_GE(rejecto.Precision(), 0.9);
  EXPECT_LE(votetrust.Precision(), 0.7);
}

TEST(IntegrationTest, CollusionLeavesRejectoUnaffected) {
  // Fig 13's claim: intra-fake edges don't move the aggregate acceptance
  // rate toward legitimate users.
  sim::ScenarioConfig sparse_cfg;
  sparse_cfg.seed = 5;
  sparse_cfg.num_fakes = 400;
  sparse_cfg.intra_fake_links_per_account = 4;
  sim::ScenarioConfig dense_cfg = sparse_cfg;
  dense_cfg.intra_fake_links_per_account = 40;
  const auto sparse = Pipeline::Make(sparse_cfg, 2000).RunRejecto();
  const auto dense = Pipeline::Make(dense_cfg, 2000).RunRejecto();
  EXPECT_GE(sparse.Precision(), 0.9);
  EXPECT_GE(dense.Precision(), 0.9);
}

TEST(IntegrationTest, CollusionDefeatsAcceptanceFilter) {
  // The strawman §II-B filter collapses under collusion while Rejecto does
  // not — the motivating comparison for the graph-cut formulation.
  sim::ScenarioConfig cfg;
  cfg.seed = 6;
  cfg.num_fakes = 400;
  cfg.intra_fake_links_per_account = 40;
  const auto p = Pipeline::Make(cfg, 2000);
  const auto scores = baseline::AcceptanceRateScores(p.scenario.log, {});
  const auto cm = metrics::EvaluateDetection(
      p.scenario.is_fake,
      metrics::LowestScored(scores, p.scenario.num_fakes));
  EXPECT_LE(cm.Precision() + 0.05, p.RunRejecto().Precision());
}

TEST(IntegrationTest, SelfRejectionCaughtAcrossRounds) {
  // Fig 14's claim at high self-rejection rate: senders surface first, the
  // whitewashed fall in a later round.
  sim::ScenarioConfig cfg;
  cfg.seed = 7;
  cfg.num_fakes = 400;
  cfg.whitewashed_fakes = 200;
  cfg.self_rejection_rate = 0.9;
  const auto p = Pipeline::Make(cfg, 2000);
  const auto cm = p.RunRejecto();
  EXPECT_GE(cm.Precision(), 0.9);
}

TEST(IntegrationTest, DefenseInDepthImprovesSybilRank) {
  // Fig 16's claim: removing Rejecto's detections (and their links) lifts
  // SybilRank's ranking quality on the residual graph.
  sim::ScenarioConfig cfg;
  cfg.seed = 8;
  cfg.num_fakes = 600;
  cfg.spamming_fraction = 0.5;
  cfg.requests_per_spammer = 50;  // heavier pollution: ~15 attack edges each
  const auto p = Pipeline::Make(cfg, 2000);

  baseline::SybilRankConfig sr;
  sr.trust_seeds = p.seeds.legit;
  const auto before_scores =
      baseline::RunSybilRank(p.scenario.graph.Friendships(), sr);
  const double auc_before =
      metrics::AreaUnderRoc(before_scores, p.scenario.is_fake);

  detect::IterativeConfig icfg;
  icfg.target_detections = 300;  // remove the spamming half
  icfg.maar.seed = 31;
  const auto detected =
      detect::DetectFriendSpammers(p.scenario.graph, p.seeds, icfg);

  std::vector<char> keep(p.scenario.NumNodes(), 1);
  for (graph::NodeId v : detected.detected) keep[v] = 0;
  const auto residual = graph::InducedSubgraph(p.scenario.graph, keep);

  baseline::SybilRankConfig sr2;
  for (graph::NodeId nid = 0;
       nid < static_cast<graph::NodeId>(residual.parent_id.size()); ++nid) {
    for (graph::NodeId s : p.seeds.legit) {
      if (residual.parent_id[nid] == s) sr2.trust_seeds.push_back(nid);
    }
  }
  const auto after_scores =
      baseline::RunSybilRank(residual.graph.Friendships(), sr2);
  std::vector<char> residual_fake(residual.parent_id.size(), 0);
  for (std::size_t nid = 0; nid < residual.parent_id.size(); ++nid) {
    residual_fake[nid] = p.scenario.is_fake[residual.parent_id[nid]];
  }
  const double auc_after =
      metrics::AreaUnderRoc(after_scores, residual_fake);

  EXPECT_GT(auc_after, auc_before + 0.05);
  EXPECT_GT(auc_after, 0.9);
}

TEST(IntegrationTest, IntervalDetectionUnchangedUnderEpochDetector) {
  // examples/interval_detection.cpp now drives each interval through the
  // streaming EpochDetector (warm starts off). This pins the port: for
  // every interval the streamed run must produce exactly the batch
  // pipeline's output — same detected ids, same round diagnostics — which
  // is what keeps the example's printed results unchanged.
  sim::TemporalConfig cfg;
  cfg.seed = 42;
  cfg.num_users = 1'200;
  cfg.num_intervals = 3;
  cfg.num_compromised = 80;
  cfg.compromise_interval = 2;
  const auto scenario = sim::BuildTemporalScenario(cfg);

  for (int interval = 0; interval < cfg.num_intervals; ++interval) {
    const auto& log = scenario.intervals[static_cast<std::size_t>(interval)];

    detect::Seeds seeds;
    util::Rng s_rng(900 + static_cast<std::uint64_t>(interval));
    for (std::uint64_t v : s_rng.SampleWithoutReplacement(cfg.num_users, 40)) {
      if (!scenario.is_compromised[static_cast<std::size_t>(v)]) {
        seeds.legit.push_back(static_cast<graph::NodeId>(v));
      }
    }
    detect::IterativeConfig dcfg;
    dcfg.target_detections = 0;
    dcfg.acceptance_rate_threshold = 0.40;
    dcfg.maar.max_region_fraction = 0.2;
    dcfg.maar.seed = 31;

    const auto batch_graph = log.BuildAugmentedGraph();
    const auto batch =
        detect::DetectFriendSpammers(batch_graph, seeds, dcfg);

    engine::EpochConfig ecfg;
    ecfg.detect = dcfg;
    ecfg.warm_start = false;  // cold epochs are exactly the batch pipeline
    ecfg.events_per_epoch = 0;
    engine::EpochDetector det(cfg.num_users, seeds, ecfg);
    det.IngestAll(sim::ToMutationLog(log).Events());
    det.RunEpoch();

    EXPECT_EQ(det.Graph().Graph(), batch_graph) << "interval " << interval;
    EXPECT_EQ(det.LastResult().detected, batch.detected)
        << "interval " << interval;
    EXPECT_EQ(det.LastResult().rounds.size(), batch.rounds.size())
        << "interval " << interval;
  }
}

TEST(IntegrationTest, WholePipelineDeterministic) {
  sim::ScenarioConfig cfg;
  cfg.seed = 9;
  cfg.num_fakes = 150;
  auto run = [&] {
    const auto p = Pipeline::Make(cfg, 800);
    detect::IterativeConfig icfg;
    icfg.target_detections = 150;
    icfg.maar.seed = 31;
    return detect::DetectFriendSpammers(p.scenario.graph, p.seeds, icfg)
        .detected;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace rejecto
