// Randomized whole-pipeline property tests: for arbitrary scenario
// configurations the detector must uphold its structural invariants —
// regardless of whether the attack is detectable.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "detect/iterative.h"
#include "gen/erdos_renyi.h"
#include "gen/holme_kim.h"
#include "metrics/classification.h"
#include "sim/scenario.h"

namespace rejecto {
namespace {

sim::ScenarioConfig RandomConfig(util::Rng& rng) {
  sim::ScenarioConfig cfg;
  cfg.seed = rng();
  cfg.num_fakes = 50 + static_cast<graph::NodeId>(rng.NextUInt(200));
  cfg.intra_fake_links_per_account =
      static_cast<std::uint32_t>(rng.NextUInt(20));
  cfg.spamming_fraction = rng.NextDouble(0.2, 1.0);
  cfg.requests_per_spammer =
      5 + static_cast<std::uint32_t>(rng.NextUInt(40));
  cfg.spam_rejection_rate = rng.NextDouble(0.3, 0.95);
  cfg.legit_rejection_rate = rng.NextDouble(0.0, 0.5);
  cfg.careless_fraction = rng.NextDouble(0.0, 0.3);
  if (rng.NextBool(0.3)) {
    cfg.whitewashed_fakes = cfg.num_fakes / 2;
    cfg.self_rejection_rate = rng.NextDouble(0.0, 0.95);
  }
  if (rng.NextBool(0.3)) {
    cfg.legit_requests_rejected_by_fakes = rng.NextUInt(3000);
  }
  return cfg;
}

class PipelineFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineFuzzTest, DetectorInvariantsHoldOnArbitraryScenarios) {
  util::Rng rng(GetParam() * 7717 + 5);
  const auto legit =
      gen::ErdosRenyi({.num_nodes = 800, .num_edges = 3200}, rng);
  const auto cfg = RandomConfig(rng);
  const auto scenario = sim::BuildScenario(legit, cfg);

  util::Rng seed_rng(GetParam() + 1);
  const auto seeds = scenario.SampleSeeds(15, 5, seed_rng);

  detect::IterativeConfig dcfg;
  dcfg.target_detections = cfg.num_fakes;
  dcfg.maar.seed = GetParam();
  const auto result =
      detect::DetectFriendSpammers(scenario.graph, seeds, dcfg);

  // Invariant 1: never over-declares the target.
  EXPECT_LE(result.detected.size(), dcfg.target_detections);

  // Invariant 2: ids valid and unique.
  std::set<graph::NodeId> distinct;
  for (graph::NodeId v : result.detected) {
    EXPECT_LT(v, scenario.NumNodes());
    EXPECT_TRUE(distinct.insert(v).second) << "duplicate detection " << v;
  }

  // Invariant 3: pinned legitimate seeds are never flagged.
  for (graph::NodeId s : seeds.legit) {
    EXPECT_FALSE(distinct.contains(s)) << "legit seed flagged";
  }

  // Invariant 4: per-round cuts carry consistent diagnostics and rounds
  // come out in non-decreasing ratio order.
  for (std::size_t i = 0; i < result.rounds.size(); ++i) {
    const auto& r = result.rounds[i];
    EXPECT_GT(r.cut.rejections_into_u, 0u);
    EXPECT_GE(r.acceptance_rate, 0.0);
    EXPECT_LE(r.acceptance_rate, 1.0);
    if (i > 0) {
      EXPECT_GE(r.ratio, result.rounds[i - 1].ratio - 1e-9);
    }
  }

  // Invariant 5: the union of round detections equals the result list.
  std::size_t total = 0;
  for (const auto& r : result.rounds) total += r.detected.size();
  EXPECT_EQ(total, result.detected.size());
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, PipelineFuzzTest,
                         ::testing::Range<std::uint64_t>(0, 10));

class DetectabilityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DetectabilityTest, StandardAttackAlwaysCaughtAcrossSeeds) {
  // The paper's default attack must be detected regardless of the RNG
  // stream — a regression guard on heuristic brittleness.
  util::Rng rng(GetParam() + 31);
  const auto legit = gen::HolmeKim(
      {.num_nodes = 1'500, .edges_per_node = 4, .triad_probability = 0.5},
      rng);
  sim::ScenarioConfig cfg;
  cfg.seed = GetParam() * 13 + 1;
  cfg.num_fakes = 300;
  const auto scenario = sim::BuildScenario(legit, cfg);
  util::Rng seed_rng(GetParam() + 99);
  const auto seeds = scenario.SampleSeeds(20, 8, seed_rng);

  detect::IterativeConfig dcfg;
  dcfg.target_detections = cfg.num_fakes;
  dcfg.maar.seed = GetParam();
  const auto result =
      detect::DetectFriendSpammers(scenario.graph, seeds, dcfg);
  const auto cm = metrics::EvaluateDetection(scenario.is_fake, result.detected);
  EXPECT_GE(cm.Precision(), 0.9) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectabilityTest,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace rejecto
