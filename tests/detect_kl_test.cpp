#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "detect/extended_kl.h"
#include "detect/maar.h"
#include "detect/partition.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "util/rng.h"

namespace rejecto::detect {
namespace {

// Two dense communities with a spam pattern: fakes (ids 10..19) have a few
// attack edges into legit (0..9) and many rejections from legit.
graph::AugmentedGraph PlantedSpamGraph() {
  graph::GraphBuilder b(20);
  auto clique = [&](graph::NodeId lo, graph::NodeId hi) {
    for (graph::NodeId u = lo; u < hi; ++u) {
      for (graph::NodeId v = u + 1; v < hi; ++v) b.AddFriendship(u, v);
    }
  };
  clique(0, 10);
  clique(10, 20);
  // 3 attack edges.
  b.AddFriendship(0, 10);
  b.AddFriendship(1, 11);
  b.AddFriendship(2, 12);
  // 12 rejections from legit onto fakes.
  for (graph::NodeId f = 10; f < 16; ++f) {
    b.AddRejection(3, f);
    b.AddRejection(4, f);
  }
  return b.BuildAugmented();
}

TEST(ExtendedKlTest, RecoversPlantedCutFromAllZeroInit) {
  const auto g = PlantedSpamGraph();
  const KlConfig cfg{.k = 1.0};
  const auto r = ExtendedKl(g, std::vector<char>(20, 0), {}, cfg);
  // Optimal W = 3 - 1*12 = -9 at the planted cut.
  std::vector<char> expected(20, 0);
  for (graph::NodeId f = 10; f < 20; ++f) expected[f] = 1;
  EXPECT_EQ(r.in_u, expected);
  EXPECT_EQ(r.cut.cross_friendships, 3u);
  EXPECT_EQ(r.cut.rejections_into_u, 12u);
  EXPECT_DOUBLE_EQ(r.stats.final_objective, -9.0);
}

TEST(ExtendedKlTest, ResultObjectiveNeverWorseThanInit) {
  util::Rng rng(1);
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    graph::GraphBuilder b(30);
    const auto social =
        gen::ErdosRenyi({.num_nodes = 30, .num_edges = 90}, rng);
    for (const auto& e : social.Edges()) b.AddFriendship(e.u, e.v);
    for (int i = 0; i < 40; ++i) {
      const auto u = static_cast<graph::NodeId>(rng.NextUInt(30));
      const auto v = static_cast<graph::NodeId>(rng.NextUInt(30));
      if (u != v) b.AddRejection(u, v);
    }
    const auto g = b.BuildAugmented();
    std::vector<char> init(30, 0);
    for (auto& c : init) c = rng.NextBool(0.5) ? 1 : 0;
    const double k = 0.5 + rng.NextDouble() * 2;

    Partition p(g, init);
    const double init_obj = p.Objective(k);
    const auto r = ExtendedKl(g, init, {}, KlConfig{.k = k});
    EXPECT_LE(r.stats.final_objective, init_obj + 1e-9);
  }
}

TEST(ExtendedKlTest, ReportedCutMatchesMask) {
  const auto g = PlantedSpamGraph();
  const auto r = ExtendedKl(g, std::vector<char>(20, 0), {}, KlConfig{.k = 2.0});
  const auto oracle = g.ComputeCut(r.in_u);
  EXPECT_EQ(r.cut.cross_friendships, oracle.cross_friendships);
  EXPECT_EQ(r.cut.rejections_into_u, oracle.rejections_into_u);
  EXPECT_EQ(r.cut.rejections_from_u, oracle.rejections_from_u);
}

TEST(ExtendedKlTest, LockedSeedsNeverSwitch) {
  const auto g = PlantedSpamGraph();
  std::vector<char> init(20, 0);
  std::vector<char> locked(20, 0);
  // Pin legit node 5 into U and fake 15 into W — on the "wrong" sides.
  init[5] = 1;
  locked[5] = 1;
  locked[15] = 1;
  const auto r = ExtendedKl(g, init, {}, KlConfig{.k = 1.0});
  // Without locks KL would move them; with locks they must stay.
  const auto locked_r = ExtendedKl(g, init, locked, KlConfig{.k = 1.0});
  EXPECT_EQ(locked_r.in_u[5], 1);
  EXPECT_EQ(locked_r.in_u[15], 0);
  (void)r;
}

TEST(ExtendedKlTest, InvalidKThrows) {
  const auto g = PlantedSpamGraph();
  EXPECT_THROW(ExtendedKl(g, std::vector<char>(20, 0), {}, KlConfig{.k = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(
      ExtendedKl(g, std::vector<char>(20, 0), {}, KlConfig{.k = -1.0}),
      std::invalid_argument);
}

TEST(ExtendedKlTest, BadLockSizeThrows) {
  const auto g = PlantedSpamGraph();
  EXPECT_THROW(ExtendedKl(g, std::vector<char>(20, 0), std::vector<char>(3, 0),
                          KlConfig{.k = 1.0}),
               std::invalid_argument);
}

TEST(ExtendedKlTest, NoRejectionsConvergesToTrivialCut) {
  // With no rejections, W(U) = |F(Ū,U)| >= 0 and the best value is 0: KL
  // must drain any initial region to a zero-cross cut.
  graph::GraphBuilder b(8);
  for (graph::NodeId u = 0; u < 8; ++u) {
    for (graph::NodeId v = u + 1; v < 8; ++v) b.AddFriendship(u, v);
  }
  const auto g = b.BuildAugmented();
  std::vector<char> init(8, 0);
  init[0] = init[1] = 1;
  const auto r = ExtendedKl(g, init, {}, KlConfig{.k = 1.0});
  EXPECT_EQ(r.cut.cross_friendships, 0u);
}

// Brute-force optimality check: on tiny graphs KL (multi-init via MAAR's
// machinery is not used here, so allow KL from the heuristic init) should
// reach the exhaustive optimum of the linear objective for the planted
// structure. We assert it is within the best 5% of all cuts, and exactly
// optimal when starting from the all-rejected heuristic.
double BruteForceBestObjective(const graph::AugmentedGraph& g, double k) {
  const graph::NodeId n = g.NumNodes();
  double best = std::numeric_limits<double>::infinity();
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<char> in_u(n, 0);
    for (graph::NodeId v = 0; v < n; ++v) in_u[v] = (mask >> v) & 1;
    const auto q = g.ComputeCut(in_u);
    best = std::min(best, static_cast<double>(q.cross_friendships) -
                              k * static_cast<double>(q.rejections_into_u));
  }
  return best;
}

class KlBruteForceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KlBruteForceTest, ReachesExhaustiveOptimumOnTinyGraphs) {
  util::Rng rng(GetParam() + 500);
  const graph::NodeId n = 10;
  graph::GraphBuilder b(n);
  const auto social = gen::ErdosRenyi({.num_nodes = n, .num_edges = 18}, rng);
  for (const auto& e : social.Edges()) b.AddFriendship(e.u, e.v);
  for (int i = 0; i < 14; ++i) {
    const auto u = static_cast<graph::NodeId>(rng.NextUInt(n));
    const auto v = static_cast<graph::NodeId>(rng.NextUInt(n));
    if (u != v) b.AddRejection(u, v);
  }
  const auto g = b.BuildAugmented();
  const double k = 0.5 + rng.NextDouble() * 1.5;
  const double optimum = BruteForceBestObjective(g, k);

  // KL from several inits: best of them should match the optimum on graphs
  // this small (the heuristic is near-exact at n=10).
  double best_kl = std::numeric_limits<double>::infinity();
  std::vector<std::vector<char>> inits;
  inits.emplace_back(n, 0);
  std::vector<char> heur(n, 0);
  for (graph::NodeId v = 0; v < n; ++v) {
    heur[v] = g.Rejections().InDegree(v) > 0 ? 1 : 0;
  }
  inits.push_back(heur);
  for (int t = 0; t < 4; ++t) {
    std::vector<char> m(n, 0);
    for (auto& c : m) c = rng.NextBool(0.5) ? 1 : 0;
    inits.push_back(m);
  }
  for (const auto& init : inits) {
    const auto r = ExtendedKl(g, init, {}, KlConfig{.k = k});
    best_kl = std::min(best_kl, r.stats.final_objective);
  }
  EXPECT_NEAR(best_kl, optimum, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, KlBruteForceTest,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace rejecto::detect
