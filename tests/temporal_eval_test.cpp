// sim/temporal_eval.h: temporal worlds, heterogeneous rejection
// propensities, and the adaptive-adversary contracts (determinism, the
// one-request-per-ordered-pair invariant, budget caps, and suspension of
// flagged spammers).
#include <gtest/gtest.h>

#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "gen/erdos_renyi.h"
#include "sim/temporal_eval.h"
#include "util/rng.h"

namespace rejecto {
namespace {

graph::SocialGraph SmallLegit(std::uint64_t seed) {
  util::Rng rng(seed);
  return gen::ErdosRenyi({.num_nodes = 300, .num_edges = 1200}, rng);
}

sim::TemporalEvalConfig SmallConfig(sim::AdversaryKind kind) {
  sim::TemporalEvalConfig cfg;
  cfg.seed = 7;
  cfg.num_fakes = 40;
  cfg.num_intervals = 4;
  cfg.requests_per_spammer_per_interval = 5;
  cfg.adversary = kind;
  return cfg;
}

std::uint64_t PairKey(graph::NodeId s, graph::NodeId r) {
  return (static_cast<std::uint64_t>(s) << 32) | r;
}

// Drives a world through all its intervals with no detection feedback.
void RunAllIntervals(sim::TemporalWorld& world,
                     sim::AdaptiveAdversary& adversary) {
  const std::vector<char> no_flags;
  for (int i = 0; i < world.Config().num_intervals; ++i) {
    adversary.EmitInterval(i, no_flags);
  }
}

TEST(TemporalEvalTest, AdversaryNamesAreStable) {
  EXPECT_EQ(sim::AdversaryName(sim::AdversaryKind::kStaticCampaign),
            "static_campaign");
  EXPECT_EQ(sim::AdversaryName(sim::AdversaryKind::kProbeThenFlood),
            "probe_then_flood");
  EXPECT_EQ(sim::AdversaryName(sim::AdversaryKind::kRejectionRetarget),
            "rejection_retarget");
  EXPECT_EQ(sim::AdversaryName(sim::AdversaryKind::kSlowDripCollusion),
            "slow_drip_collusion");
}

TEST(TemporalEvalTest, ConstructorValidatesConfig) {
  const auto legit = SmallLegit(1);
  auto cfg = SmallConfig(sim::AdversaryKind::kStaticCampaign);
  cfg.num_fakes = 0;
  EXPECT_THROW(sim::TemporalWorld(legit, cfg), std::invalid_argument);
  cfg = SmallConfig(sim::AdversaryKind::kStaticCampaign);
  cfg.spamming_fraction = 1.5;
  EXPECT_THROW(sim::TemporalWorld(legit, cfg), std::invalid_argument);
  cfg = SmallConfig(sim::AdversaryKind::kStaticCampaign);
  cfg.organic_request_fraction = -0.1;
  EXPECT_THROW(sim::TemporalWorld(legit, cfg), std::invalid_argument);
  const graph::SocialGraph empty;
  EXPECT_THROW(
      sim::TemporalWorld(empty, SmallConfig(sim::AdversaryKind::kStaticCampaign)),
      std::invalid_argument);
}

TEST(TemporalEvalTest, SameSeedSameRun) {
  const auto legit = SmallLegit(2);
  for (sim::AdversaryKind kind :
       {sim::AdversaryKind::kStaticCampaign, sim::AdversaryKind::kProbeThenFlood,
        sim::AdversaryKind::kRejectionRetarget,
        sim::AdversaryKind::kSlowDripCollusion}) {
    const auto cfg = SmallConfig(kind);
    sim::TemporalWorld a(legit, cfg);
    sim::TemporalWorld b(legit, cfg);
    sim::AdaptiveAdversary aa(a);
    sim::AdaptiveAdversary ab(b);
    RunAllIntervals(a, aa);
    RunAllIntervals(b, ab);
    ASSERT_EQ(a.Log().NumRequests(), b.Log().NumRequests())
        << sim::AdversaryName(kind);
    for (std::size_t i = 0; i < a.Log().NumRequests(); ++i) {
      ASSERT_TRUE(a.Log().Requests()[i] == b.Log().Requests()[i])
          << sim::AdversaryName(kind) << " request " << i;
    }
  }
}

// Each ordered pair carries at most one request over the WHOLE run —
// prelude, organic history, spam, and collusion links alike. This is the
// invariant RequestLog::Load now enforces on disk.
TEST(TemporalEvalTest, LogNeverRepeatsAnOrderedPair) {
  const auto legit = SmallLegit(3);
  for (sim::AdversaryKind kind :
       {sim::AdversaryKind::kStaticCampaign,
        sim::AdversaryKind::kRejectionRetarget,
        sim::AdversaryKind::kSlowDripCollusion}) {
    sim::TemporalWorld world(legit, SmallConfig(kind));
    sim::AdaptiveAdversary adversary(world);
    RunAllIntervals(world, adversary);
    std::unordered_set<std::uint64_t> seen;
    for (const sim::FriendRequest& r : world.Log().Requests()) {
      EXPECT_NE(r.sender, r.receiver);
      EXPECT_TRUE(seen.insert(PairKey(r.sender, r.receiver)).second)
          << sim::AdversaryName(kind) << ": duplicate " << r.sender << "->"
          << r.receiver;
    }
  }
}

TEST(TemporalEvalTest, PropensitiesRespectTheConfiguredBand) {
  const auto legit = SmallLegit(4);
  sim::PropensityConfig cfg;  // mean .7 spread .2, careless .12 @ .05
  util::Rng rng(11);
  const auto p = sim::DrawPropensities(legit, cfg, rng);
  ASSERT_EQ(p.size(), legit.NumNodes());
  std::size_t careless = 0;
  for (double v : p) {
    if (v == cfg.careless_propensity) {
      ++careless;
      continue;
    }
    EXPECT_GE(v, cfg.mean - cfg.spread - 1e-12);
    EXPECT_LE(v, cfg.mean + cfg.spread + 1e-12);
  }
  // The patch loop marks centers + whole neighborhoods until the target
  // fraction is reached, so it can only overshoot.
  EXPECT_GE(careless, static_cast<std::size_t>(cfg.careless_fraction *
                                               legit.NumNodes()));
  EXPECT_LT(careless, p.size());  // but not everyone is careless
}

TEST(TemporalEvalTest, SendSpamRequestValidatesRolesAndDedup) {
  const auto legit = SmallLegit(5);
  sim::TemporalWorld world(legit,
                           SmallConfig(sim::AdversaryKind::kStaticCampaign));
  const graph::NodeId fake = world.NumLegit();
  // legit sender / fake victim are role errors.
  EXPECT_THROW(world.SendSpamRequest(0, 1), std::invalid_argument);
  EXPECT_THROW(world.SendSpamRequest(fake, world.NumLegit() + 1),
               std::invalid_argument);
  // Find an untried victim, send once, then the retry is a logic error.
  graph::NodeId victim = graph::kInvalidNode;
  for (graph::NodeId v = 0; v < world.NumLegit(); ++v) {
    if (!world.Tried(fake, v)) {
      victim = v;
      break;
    }
  }
  ASSERT_NE(victim, graph::kInvalidNode);
  const std::uint64_t sent_before = world.SpamRequestsSent(fake);
  world.SendSpamRequest(fake, victim);
  EXPECT_TRUE(world.Tried(fake, victim));
  EXPECT_EQ(world.SpamRequestsSent(fake), sent_before + 1);
  EXPECT_THROW(world.SendSpamRequest(fake, victim), std::logic_error);
}

TEST(TemporalEvalTest, CollusionLinkIsIdempotentAndSkipsSelf) {
  const auto legit = SmallLegit(6);
  sim::TemporalWorld world(legit,
                           SmallConfig(sim::AdversaryKind::kStaticCampaign));
  const graph::NodeId f = world.NumLegit();
  const graph::NodeId g = world.NumLegit() + 1;
  const std::size_t before = world.Log().NumRequests();
  world.AddCollusionLink(f, f);  // self: no-op
  EXPECT_EQ(world.Log().NumRequests(), before);
  world.AddCollusionLink(f, g);
  const std::size_t after_first = world.Log().NumRequests();
  EXPECT_GE(after_first, before);  // may be a no-op if arrival-linked already
  world.AddCollusionLink(f, g);    // repeat: no-op
  world.AddCollusionLink(g, f);    // reverse direction: still the same pair
  EXPECT_EQ(world.Log().NumRequests(), after_first);
}

// Flagged spammers are suspended: with every spammer flagged, an interval
// emits nothing and the log stops growing — under EVERY adversary kind.
TEST(TemporalEvalTest, FlaggedSpammersEmitNothing) {
  const auto legit = SmallLegit(7);
  for (sim::AdversaryKind kind :
       {sim::AdversaryKind::kStaticCampaign, sim::AdversaryKind::kProbeThenFlood,
        sim::AdversaryKind::kRejectionRetarget,
        sim::AdversaryKind::kSlowDripCollusion}) {
    sim::TemporalWorld world(legit, SmallConfig(kind));
    sim::AdaptiveAdversary adversary(world);
    std::vector<char> flagged(world.NumNodes(), 0);
    for (graph::NodeId f : world.Spammers()) flagged[f] = 1;
    const std::size_t before = world.Log().NumRequests();
    const std::uint64_t emitted = adversary.EmitInterval(0, flagged);
    EXPECT_EQ(emitted, 0u) << sim::AdversaryName(kind);
    EXPECT_EQ(world.Log().NumRequests(), before) << sim::AdversaryName(kind);
  }
}

// Per-interval budget caps: static/retarget spend the full per-spammer
// budget target, probe intervals stay at the probe budget, and slow drip
// never exceeds its rate threshold.
TEST(TemporalEvalTest, BudgetCapsHold) {
  const auto legit = SmallLegit(8);
  const std::vector<char> no_flags;

  {
    auto cfg = SmallConfig(sim::AdversaryKind::kProbeThenFlood);
    sim::TemporalWorld world(legit, cfg);
    sim::AdaptiveAdversary adversary(world);
    const std::size_t before = world.Log().NumRequests();
    adversary.EmitInterval(0, no_flags);  // inside the probe phase
    std::vector<std::uint64_t> per_sender(world.NumNodes(), 0);
    for (std::size_t i = before; i < world.Log().NumRequests(); ++i) {
      ++per_sender[world.Log().Requests()[i].sender];
    }
    for (graph::NodeId f : world.Spammers()) {
      EXPECT_LE(per_sender[f], cfg.probe_requests_per_interval);
    }
  }
  {
    auto cfg = SmallConfig(sim::AdversaryKind::kSlowDripCollusion);
    sim::TemporalWorld world(legit, cfg);
    sim::AdaptiveAdversary adversary(world);
    for (int interval = 0; interval < cfg.num_intervals; ++interval) {
      std::vector<std::uint64_t> spam_before(world.NumNodes(), 0);
      for (graph::NodeId f : world.Spammers()) {
        spam_before[f] = world.SpamRequestsSent(f);
      }
      adversary.EmitInterval(interval, no_flags);
      for (graph::NodeId f : world.Spammers()) {
        EXPECT_LE(world.SpamRequestsSent(f) - spam_before[f],
                  cfg.drip_max_requests_per_interval)
            << "interval " << interval << " spammer " << f;
      }
    }
  }
}

TEST(TemporalEvalTest, SpamAccountingMatchesTheLog) {
  const auto legit = SmallLegit(9);
  sim::TemporalWorld world(legit,
                           SmallConfig(sim::AdversaryKind::kStaticCampaign));
  sim::AdaptiveAdversary adversary(world);
  RunAllIntervals(world, adversary);
  std::vector<std::uint64_t> sent(world.NumNodes(), 0);
  std::vector<std::uint64_t> accepted(world.NumNodes(), 0);
  const auto& is_fake = world.IsFake();
  for (const sim::FriendRequest& r : world.Log().Requests()) {
    if (is_fake[r.sender] == 0 || is_fake[r.receiver] != 0) continue;
    ++sent[r.sender];
    if (r.response == sim::Response::kAccepted) ++accepted[r.sender];
  }
  std::uint64_t total = 0;
  for (graph::NodeId f : world.Spammers()) {
    EXPECT_EQ(world.SpamRequestsSent(f), sent[f]);
    EXPECT_EQ(world.SpamAccepted(f), accepted[f]);
    total += sent[f];
  }
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace rejecto
