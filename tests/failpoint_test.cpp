// Unit tests for the deterministic fault-injection registry
// (util/failpoint.h): trigger policies, spec parsing, counters, and the
// RAII arming helper. The sites exercised here are test-local names — the
// real IO/worker sites are covered by wal_test and engine_fault_test.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/failpoint.h"

namespace rejecto::util {
namespace {

TEST(FailpointPolicyTest, ParsesEveryForm) {
  EXPECT_EQ(FailpointPolicy::Parse("off").kind, FailpointPolicy::Kind::kOff);

  const auto on = FailpointPolicy::Parse("on:3");
  EXPECT_EQ(on.kind, FailpointPolicy::Kind::kOnNth);
  EXPECT_EQ(on.n, 3u);

  const auto every = FailpointPolicy::Parse("every:10");
  EXPECT_EQ(every.kind, FailpointPolicy::Kind::kEveryNth);
  EXPECT_EQ(every.n, 10u);

  const auto prob = FailpointPolicy::Parse("p:0.25:7");
  EXPECT_EQ(prob.kind, FailpointPolicy::Kind::kProbability);
  EXPECT_DOUBLE_EQ(prob.p, 0.25);
  EXPECT_EQ(prob.seed, 7u);

  const auto prob_default_seed = FailpointPolicy::Parse("p:0.5");
  EXPECT_DOUBLE_EQ(prob_default_seed.p, 0.5);
  EXPECT_EQ(prob_default_seed.seed, 42u);
}

TEST(FailpointPolicyTest, RejectsMalformedSpecs) {
  EXPECT_THROW(FailpointPolicy::Parse(""), std::invalid_argument);
  EXPECT_THROW(FailpointPolicy::Parse("on"), std::invalid_argument);
  EXPECT_THROW(FailpointPolicy::Parse("on:0"), std::invalid_argument);
  EXPECT_THROW(FailpointPolicy::Parse("on:3x"), std::invalid_argument);
  EXPECT_THROW(FailpointPolicy::Parse("every:-2"), std::invalid_argument);
  EXPECT_THROW(FailpointPolicy::Parse("p:1.5"), std::invalid_argument);
  EXPECT_THROW(FailpointPolicy::Parse("p:abc"), std::invalid_argument);
  EXPECT_THROW(FailpointPolicy::Parse("maybe:1"), std::invalid_argument);
}

TEST(FailpointTest, UnarmedSiteNeverFiresOrCounts) {
  Failpoints& fp = Failpoints::Instance();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(fp.ShouldFail("test/unarmed"));
  }
  EXPECT_EQ(fp.Hits("test/unarmed"), 0u);
  EXPECT_EQ(fp.Fires("test/unarmed"), 0u);
}

TEST(FailpointTest, OnNthFiresExactlyOnce) {
  Failpoints& fp = Failpoints::Instance();
  ScopedFailpoint guard("test/on_nth", FailpointPolicy::OnNth(3));
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(fp.ShouldFail("test/on_nth"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                      false}));
  EXPECT_EQ(fp.Hits("test/on_nth"), 6u);
  EXPECT_EQ(fp.Fires("test/on_nth"), 1u);
}

TEST(FailpointTest, EveryNthFiresPeriodically) {
  Failpoints& fp = Failpoints::Instance();
  ScopedFailpoint guard("test/every_nth", FailpointPolicy::EveryNth(2));
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(fp.ShouldFail("test/every_nth"));
  EXPECT_EQ(fired, (std::vector<bool>{false, true, false, true, false, true}));
  EXPECT_EQ(fp.Fires("test/every_nth"), 3u);
}

TEST(FailpointTest, ProbabilityIsDeterministicPerSeed) {
  Failpoints& fp = Failpoints::Instance();
  const auto sequence = [&](std::uint64_t seed) {
    std::vector<bool> fired;
    ScopedFailpoint guard("test/prob", FailpointPolicy::Probability(0.3, seed));
    for (int i = 0; i < 200; ++i) fired.push_back(fp.ShouldFail("test/prob"));
    return fired;
  };
  const auto a = sequence(7);
  const auto b = sequence(7);
  EXPECT_EQ(a, b) << "same seed must reproduce the same firing sequence";
  EXPECT_NE(a, sequence(8)) << "different seeds should diverge";
  const auto fires = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 200 * 0.3 / 3);  // loose rate sanity bounds
  EXPECT_LT(fires, 200 * 0.3 * 3);
}

TEST(FailpointTest, RearmResetsCountersAndStream) {
  Failpoints& fp = Failpoints::Instance();
  ScopedFailpoint guard("test/rearm", FailpointPolicy::OnNth(1));
  EXPECT_TRUE(fp.ShouldFail("test/rearm"));
  EXPECT_FALSE(fp.ShouldFail("test/rearm"));
  fp.Arm("test/rearm", FailpointPolicy::OnNth(1));
  EXPECT_EQ(fp.Hits("test/rearm"), 0u);
  EXPECT_TRUE(fp.ShouldFail("test/rearm")) << "re-armed Nth starts over";
}

TEST(FailpointTest, ArmFromSpecArmsMultipleSites) {
  Failpoints& fp = Failpoints::Instance();
  fp.ArmFromSpec("test/spec_a=on:1;test/spec_b=every:2;");
  EXPECT_TRUE(fp.ShouldFail("test/spec_a"));
  EXPECT_FALSE(fp.ShouldFail("test/spec_b"));
  EXPECT_TRUE(fp.ShouldFail("test/spec_b"));
  fp.Disarm("test/spec_a");
  fp.Disarm("test/spec_b");
  EXPECT_THROW(fp.ArmFromSpec("missing-equals"), std::invalid_argument);
  EXPECT_THROW(fp.ArmFromSpec("test/spec_c=bogus:1"), std::invalid_argument);
  EXPECT_FALSE(fp.ShouldFail("test/spec_c"));
}

TEST(FailpointTest, ScopedFailpointDisarmsOnExit) {
  Failpoints& fp = Failpoints::Instance();
  {
    ScopedFailpoint guard("test/scoped", FailpointPolicy::EveryNth(1));
    EXPECT_TRUE(fp.ShouldFail("test/scoped"));
  }
  EXPECT_FALSE(fp.ShouldFail("test/scoped"));
  EXPECT_EQ(fp.Hits("test/scoped"), 0u);
}

}  // namespace
}  // namespace rejecto::util
