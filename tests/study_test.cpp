#include <gtest/gtest.h>

#include <algorithm>

#include "study/marketplace.h"

namespace rejecto::study {
namespace {

TEST(MarketplaceTest, DefaultConfigMatchesPaperPopulation) {
  const MarketplaceStudy s = GenerateStudy({});
  EXPECT_EQ(s.accounts.size(), 43u);
  // The paper totals: 2804 friends, 2065 pending. The synthetic model should
  // land in the same ballpark (±35%).
  EXPECT_NEAR(static_cast<double>(s.TotalFriends()), 2804.0, 2804.0 * 0.35);
  EXPECT_NEAR(static_cast<double>(s.TotalPending()), 2065.0, 2065.0 * 0.5);
}

TEST(MarketplaceTest, EveryAccountMeetsTheOrderRequirement) {
  const MarketplaceStudy s = GenerateStudy({});
  for (const auto& a : s.accounts) EXPECT_GE(a.friends, 50u);
}

TEST(MarketplaceTest, PendingFractionInMeasuredBand) {
  const MarketplaceStudy s = GenerateStudy({});
  for (const auto& a : s.accounts) {
    // Rounding of pending counts can nudge the fraction slightly outside.
    EXPECT_GE(a.PendingFraction(), 0.15);
    EXPECT_LE(a.PendingFraction(), 0.70);
  }
}

TEST(MarketplaceTest, FriendEntriesMatchFriendCounts) {
  const MarketplaceStudy s = GenerateStudy({});
  EXPECT_EQ(s.friends.size(), s.TotalFriends());
}

TEST(MarketplaceTest, DegreeTailContainsSuspiciousHighDegreeFriends) {
  const MarketplaceStudy s = GenerateStudy({});
  // Figs 3: a visible fraction of friends exceed 1000 friends themselves.
  const auto high = std::count_if(
      s.friends.begin(), s.friends.end(),
      [](const FriendAttributes& f) { return f.social_degree > 1000; });
  EXPECT_GT(high, 0);
  EXPECT_LT(static_cast<double>(high) / static_cast<double>(s.friends.size()),
            0.25);
}

TEST(MarketplaceTest, ActivityDistributionsAreHeavyTailedButBounded) {
  const MarketplaceStudy s = GenerateStudy({});
  for (const auto& f : s.friends) {
    EXPECT_LE(f.posts, 300u);
    EXPECT_LE(f.photos, 250u);
    EXPECT_LE(f.social_degree, 5000u);
  }
}

TEST(MarketplaceTest, DeterministicForSeed) {
  const MarketplaceStudy a = GenerateStudy({});
  const MarketplaceStudy b = GenerateStudy({});
  ASSERT_EQ(a.accounts.size(), b.accounts.size());
  for (std::size_t i = 0; i < a.accounts.size(); ++i) {
    EXPECT_EQ(a.accounts[i].friends, b.accounts[i].friends);
    EXPECT_EQ(a.accounts[i].pending_requests, b.accounts[i].pending_requests);
  }
}

TEST(MarketplaceTest, SeedChangesOutput) {
  MarketplaceConfig cfg;
  cfg.seed = 1;
  const auto a = GenerateStudy(cfg);
  cfg.seed = 2;
  const auto b = GenerateStudy(cfg);
  EXPECT_NE(a.TotalFriends(), b.TotalFriends());
}

TEST(MarketplaceTest, InvalidBandThrows) {
  MarketplaceConfig cfg;
  cfg.min_pending_fraction = 0.8;
  cfg.max_pending_fraction = 0.2;
  EXPECT_THROW(GenerateStudy(cfg), std::invalid_argument);
}

TEST(CdfQuantilesTest, SortedQuantiles) {
  std::vector<std::uint32_t> samples = {5, 1, 9, 3, 7};
  const auto q = CdfQuantiles(samples, {0.0, 0.5, 1.0});
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q[0], 1u);
  EXPECT_EQ(q[1], 5u);  // index floor(0.5*5)=2 of sorted {1,3,5,7,9}
  EXPECT_EQ(q[2], 9u);
}

TEST(CdfQuantilesTest, MonotoneInQuantile) {
  std::vector<std::uint32_t> samples;
  for (std::uint32_t i = 0; i < 100; ++i) samples.push_back(i * 3 % 97);
  const auto q = CdfQuantiles(samples, {0.1, 0.25, 0.5, 0.75, 0.9});
  for (std::size_t i = 1; i < q.size(); ++i) EXPECT_GE(q[i], q[i - 1]);
}

TEST(CdfQuantilesTest, EmptySamplesThrow) {
  EXPECT_THROW(CdfQuantiles({}, {0.5}), std::invalid_argument);
}

TEST(CdfQuantilesTest, OutOfRangeQuantileThrows) {
  EXPECT_THROW(CdfQuantiles({1, 2}, {1.5}), std::invalid_argument);
}

}  // namespace
}  // namespace rejecto::study
