// Crash-safety tests for the binary WAL and checkpoints (stream/wal.h):
// round trips, segment rotation, injected torn writes, the
// truncate-at-every-byte-offset recovery property, checkpoint atomicity
// under injected failures, and the EpochDetector checkpoint + WAL-tail
// recovery differential (a crashed-and-recovered detector is bit-identical
// to one that never crashed).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "engine/epoch_detector.h"
#include "gen/erdos_renyi.h"
#include "sim/scenario.h"
#include "sim/stream_feed.h"
#include "stream/delta_graph.h"
#include "stream/mutation_log.h"
#include "stream/wal.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace rejecto::stream {
namespace {

std::string TempBase(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Removes every segment of a WAL base so tests never see a predecessor's
// files (TempDir is shared across the binary's tests).
void RemoveWal(const std::string& base) {
  for (std::uint32_t seg = 1; seg < 100; ++seg) {
    char suffix[16];
    std::snprintf(suffix, sizeof(suffix), ".%06u.wal", seg);
    std::remove((base + suffix).c_str());
  }
}

std::vector<unsigned char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void WriteFileBytes(const std::string& path,
                    const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::vector<Event> SmallEventSequence() {
  return {
      {EventType::kAddFriend, 0, 1}, {EventType::kAccept, 2, 3},
      {EventType::kReject, 4, 5},    {EventType::kRemoveNode, 1, 0},
      {EventType::kAddFriend, 1, 6}, {EventType::kAccept, 0, 2},
      {EventType::kReject, 3, 6},    {EventType::kAddFriend, 5, 2},
  };
}

// ---------- WalWriter / RecoverWal ----------

TEST(WalTest, RoundTripsEventsAndGrowMarker) {
  const std::string base = TempBase("wal_roundtrip");
  RemoveWal(base);
  const auto events = SmallEventSequence();
  {
    WalWriter wal(base);
    for (const Event& e : events) wal.Append(e);
    wal.AppendGrowTo(32);
    wal.Close();
    EXPECT_EQ(wal.NumAppended(), events.size() + 1);
  }
  const WalRecoverResult rec = RecoverWal(base);
  EXPECT_TRUE(rec.clean);
  EXPECT_EQ(rec.segments_scanned, 1u);
  EXPECT_EQ(rec.valid_records, events.size() + 1);
  EXPECT_EQ(rec.truncated_bytes, 0u);
  ASSERT_EQ(rec.events.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(rec.events[i], events[i]) << "event " << i;
  }
  const MutationLog log = rec.BuildLog();
  EXPECT_EQ(log.NumNodes(), 32u);
  RemoveWal(base);
}

TEST(WalTest, MissingWalRecoversEmptyAndClean) {
  const std::string base = TempBase("wal_missing");
  RemoveWal(base);
  const WalRecoverResult rec = RecoverWal(base);
  EXPECT_TRUE(rec.clean);
  EXPECT_EQ(rec.segments_scanned, 0u);
  EXPECT_TRUE(rec.events.empty());
}

TEST(WalTest, RejectsInvalidEvents) {
  const std::string base = TempBase("wal_invalid");
  RemoveWal(base);
  WalWriter wal(base);
  EXPECT_THROW(wal.Append({EventType::kAccept, 1, 1}), std::invalid_argument);
  EXPECT_THROW(wal.Append({EventType::kAccept, graph::kInvalidNode, 0}),
               std::invalid_argument);
  EXPECT_EQ(wal.NumAppended(), 0u);
  wal.Close();
  RemoveWal(base);
}

TEST(WalTest, RotatesSegmentsAndRestartsPastThem) {
  const std::string base = TempBase("wal_rotate");
  RemoveWal(base);
  const auto events = SmallEventSequence();
  // Tiny cap: 8-byte magic + one 17-byte record exceeds it, so every
  // append rotates — one record per segment.
  {
    WalWriter wal(base, {.max_segment_bytes = 16});
    for (const Event& e : events) wal.Append(e);
    wal.Close();
    EXPECT_GT(wal.SegmentIndex(), 1u);
  }
  const WalRecoverResult rec = RecoverWal(base);
  EXPECT_TRUE(rec.clean);
  EXPECT_GT(rec.segments_scanned, 1u);
  ASSERT_EQ(rec.events.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(rec.events[i], events[i]) << "event " << i;
  }
  // A restarted writer opens a fresh segment after the highest existing
  // one and never touches the old tail.
  WalWriter restarted(base);
  EXPECT_GT(restarted.SegmentIndex(), rec.segments_scanned);
  restarted.Append(events[0]);
  restarted.Close();
  const WalRecoverResult rec2 = RecoverWal(base);
  EXPECT_EQ(rec2.events.size(), events.size() + 1);
  RemoveWal(base);
}

TEST(WalTest, TornWriteFailpointBreaksWriterAndRecoveryDropsTail) {
  const std::string base = TempBase("wal_torn");
  RemoveWal(base);
  const auto events = SmallEventSequence();
  {
    WalWriter wal(base);
    util::ScopedFailpoint torn("wal/append_write",
                               util::FailpointPolicy::OnNth(4));
    std::size_t acked = 0;
    try {
      for (const Event& e : events) {
        wal.Append(e);
        ++acked;
      }
      FAIL() << "injected torn write did not surface";
    } catch (const std::runtime_error&) {
    }
    EXPECT_EQ(acked, 3u);
    // The writer is broken: the file tail past the last ack is undefined.
    EXPECT_THROW(wal.Append(events[0]), std::runtime_error);
  }
  const WalRecoverResult rec = RecoverWal(base);
  EXPECT_FALSE(rec.clean);
  EXPECT_GT(rec.truncated_bytes, 0u);
  ASSERT_EQ(rec.events.size(), 3u) << "exactly the acked prefix";
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(rec.events[i], events[i]);
  RemoveWal(base);
}

TEST(WalTest, SyncFailpointBreaksWriter) {
  const std::string base = TempBase("wal_syncfail");
  RemoveWal(base);
  WalWriter wal(base);
  wal.Append(SmallEventSequence()[0]);
  util::ScopedFailpoint fail("wal/sync", util::FailpointPolicy::OnNth(1));
  EXPECT_THROW(wal.Sync(), std::runtime_error);
  EXPECT_THROW(wal.Append(SmallEventSequence()[1]), std::runtime_error);
  RemoveWal(base);
}

// ---------- Torn-write recovery property ----------

// Truncating the segment at EVERY byte offset must (a) never throw,
// (b) recover a strict prefix of the appended events, and (c) replaying
// that prefix through DeltaGraph + compaction must equal batch-building
// the same prefix — the WAL's core crash-safety contract.
TEST(WalPropertyTest, TruncationAtEveryByteOffsetRecoversAValidPrefix) {
  const std::string base = TempBase("wal_truncate_prop");
  RemoveWal(base);
  util::Rng rng(97);
  std::vector<Event> events;
  for (int i = 0; i < 30; ++i) {
    const auto u = static_cast<graph::NodeId>(rng.NextUInt(24));
    const auto v = static_cast<graph::NodeId>(rng.NextUInt(24));
    switch (rng.NextUInt(8)) {
      case 0:
        events.push_back({EventType::kRemoveNode, u, 0});
        break;
      case 1:
      case 2:
        if (u == v) continue;
        events.push_back({EventType::kReject, u, v});
        break;
      default:
        if (u == v) continue;
        events.push_back({EventType::kAddFriend, u, v});
        break;
    }
  }
  {
    WalWriter wal(base);
    for (const Event& e : events) wal.Append(e);
    wal.Close();
  }
  const std::string segment = base + ".000001.wal";
  const std::vector<unsigned char> bytes = ReadFileBytes(segment);
  ASSERT_EQ(bytes.size(), 8 + 17 * events.size());

  const std::string truncated = TempBase("wal_truncate_prop_cut.000001.wal");
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    WriteFileBytes(truncated,
                   {bytes.begin(), bytes.begin() + static_cast<long>(cut)});
    WalRecoverResult rec;
    ASSERT_NO_THROW(rec = RecoverWalSegment(truncated)) << "cut=" << cut;
    // Exactly the records fully present and intact survive.
    const std::size_t expect_events = cut < 8 ? 0 : (cut - 8) / 17;
    ASSERT_EQ(rec.events.size(), expect_events) << "cut=" << cut;
    // A cut on a record boundary is indistinguishable from a short-but-
    // complete log; anything else must be flagged as truncated.
    EXPECT_EQ(rec.clean, cut >= 8 && (cut - 8) % 17 == 0) << "cut=" << cut;
    for (std::size_t i = 0; i < expect_events; ++i) {
      ASSERT_EQ(rec.events[i], events[i]) << "cut=" << cut << " event " << i;
    }
    // Replay + compact == batch build of the recovered prefix.
    MutationLog prefix_log;
    for (std::size_t i = 0; i < expect_events; ++i) {
      prefix_log.Append(events[i]);
    }
    const MutationLog replayed = rec.BuildLog();
    ASSERT_EQ(replayed.NumEvents(), prefix_log.NumEvents());
    DeltaGraph d(replayed.NumNodes());
    d.ApplyAll(replayed.Events());
    d.Compact();
    EXPECT_EQ(d.Graph(), prefix_log.BuildAugmentedGraph()) << "cut=" << cut;
  }
  std::remove(truncated.c_str());
  RemoveWal(base);
}

TEST(WalPropertyTest, CorruptedByteTruncatesFromThatRecord) {
  const std::string base = TempBase("wal_corrupt");
  RemoveWal(base);
  const auto events = SmallEventSequence();
  {
    WalWriter wal(base);
    for (const Event& e : events) wal.Append(e);
    wal.Close();
  }
  const std::string segment = base + ".000001.wal";
  const std::vector<unsigned char> bytes = ReadFileBytes(segment);
  // Flip one payload byte in record k: CRC catches it; records 0..k-1
  // survive, everything from k on is discarded.
  for (std::size_t k = 0; k < events.size(); ++k) {
    auto corrupted = bytes;
    corrupted[8 + 17 * k + 8] ^= 0x40;  // first payload byte of record k
    WriteFileBytes(segment, corrupted);
    const WalRecoverResult rec = RecoverWal(base);
    EXPECT_FALSE(rec.clean) << "k=" << k;
    ASSERT_EQ(rec.events.size(), k) << "k=" << k;
    for (std::size_t i = 0; i < k; ++i) EXPECT_EQ(rec.events[i], events[i]);
    EXPECT_GT(rec.truncated_bytes, 0u);
  }
  RemoveWal(base);
}

TEST(WalPropertyTest, CorruptionAbandonsLaterSegments) {
  const std::string base = TempBase("wal_multi_corrupt");
  RemoveWal(base);
  const auto events = SmallEventSequence();
  {
    WalWriter wal(base, {.max_segment_bytes = 16});  // one record/segment
    for (const Event& e : events) wal.Append(e);
    wal.Close();
  }
  // Corrupt segment 3's record: recovery keeps segments 1-2, discards 3
  // and every later segment (their events were acked after the hole).
  const std::string seg3 = base + ".000003.wal";
  auto bytes = ReadFileBytes(seg3);
  bytes[8 + 8] ^= 0x01;
  WriteFileBytes(seg3, bytes);
  const WalRecoverResult rec = RecoverWal(base);
  EXPECT_FALSE(rec.clean);
  ASSERT_EQ(rec.events.size(), 2u);
  EXPECT_EQ(rec.events[0], events[0]);
  EXPECT_EQ(rec.events[1], events[1]);
  EXPECT_GT(rec.truncated_bytes,
            17u * (events.size() - 3));  // later segments charged too
  RemoveWal(base);
}

// ---------- Checkpoints ----------

TEST(CheckpointTest, DeltaGraphRoundTrips) {
  const std::string path = TempBase("ckpt_roundtrip.bin");
  MutationLog log(16);
  for (const Event& e : SmallEventSequence()) log.Append(e);
  DeltaGraph d(log.NumNodes());
  d.ApplyAll(log.Events());
  CheckpointDeltaGraph(d, path);
  const DeltaGraph restored = RestoreDeltaGraph(path);
  EXPECT_EQ(restored.Graph(), log.BuildAugmentedGraph());
  EXPECT_EQ(restored.NumNodes(), d.NumNodes());
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingTruncatedOrCorruptCheckpointThrows) {
  const std::string path = TempBase("ckpt_corrupt.bin");
  std::remove(path.c_str());
  EXPECT_THROW(RestoreDeltaGraph(path), std::runtime_error);

  MutationLog log(8);
  log.Append({EventType::kAddFriend, 0, 1});
  log.Append({EventType::kReject, 2, 3});
  DeltaGraph d(log.NumNodes());
  d.ApplyAll(log.Events());
  CheckpointDeltaGraph(d, path);

  const std::vector<unsigned char> good = ReadFileBytes(path);
  for (std::size_t cut : {std::size_t{0}, std::size_t{7}, good.size() / 2,
                          good.size() - 1}) {
    WriteFileBytes(path, {good.begin(), good.begin() + static_cast<long>(cut)});
    EXPECT_THROW(RestoreDeltaGraph(path), std::runtime_error) << "cut=" << cut;
  }
  auto corrupt = good;
  corrupt[corrupt.size() / 2] ^= 0x10;
  WriteFileBytes(path, corrupt);
  EXPECT_THROW(RestoreDeltaGraph(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(CheckpointTest, FailedSaveLeavesPreviousCheckpointIntact) {
  const std::string path = TempBase("ckpt_atomic.bin");
  MutationLog log(8);
  log.Append({EventType::kAddFriend, 0, 1});
  DeltaGraph d(log.NumNodes());
  d.ApplyAll(log.Events());
  CheckpointDeltaGraph(d, path);

  d.Apply({EventType::kAddFriend, 2, 3});
  {
    util::ScopedFailpoint fail("checkpoint/write",
                               util::FailpointPolicy::OnNth(1));
    EXPECT_THROW(CheckpointDeltaGraph(d, path), std::runtime_error);
  }
  {
    util::ScopedFailpoint fail("checkpoint/rename",
                               util::FailpointPolicy::OnNth(1));
    EXPECT_THROW(CheckpointDeltaGraph(d, path), std::runtime_error);
  }
  // Both failures happen before the atomic publish: the old checkpoint
  // still loads, and no .tmp litter remains.
  const DeltaGraph restored = RestoreDeltaGraph(path);
  EXPECT_EQ(restored.Graph(), log.BuildAugmentedGraph());
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
  std::remove(path.c_str());
}

// ---------- EpochDetector checkpoint + WAL-tail recovery ----------

// A detector that crashes after a checkpoint and recovers by restoring it
// and replaying the WAL tail past EventsIngested() must be bit-identical —
// graph, warm-start state, detections, epoch numbering — to a detector
// that never crashed. Warm starts are ON so the checkpointed round-0 mask
// and k actually influence the post-recovery epoch.
TEST(CheckpointTest, EpochDetectorRecoversBitIdenticalFromWalTail) {
  const std::string wal_base = TempBase("epoch_wal");
  const std::string ckpt = TempBase("epoch_ckpt.bin");
  RemoveWal(wal_base);

  util::Rng rng(411);
  const auto legit = gen::ErdosRenyi({.num_nodes = 300, .num_edges = 1200}, rng);
  sim::ScenarioConfig scfg;
  scfg.seed = 11;
  scfg.num_fakes = 60;
  const auto scenario = sim::BuildScenario(legit, scfg);
  util::Rng seed_rng(12);
  const auto seeds = scenario.SampleSeeds(12, 4, seed_rng);
  sim::ChurnConfig churn;
  churn.seed = 13;
  const MutationLog log = sim::GenerateChurnLog(scenario.log, churn);

  // Durable ingestion: every event is WAL-logged (and acked) before the
  // detector absorbs it.
  {
    WalWriter wal(wal_base, {.sync_every_n = 64});
    for (const Event& e : log.Events()) wal.Append(e);
    wal.AppendGrowTo(log.NumNodes());
    wal.Close();
  }

  engine::EpochConfig ecfg;
  ecfg.detect.target_detections = scfg.num_fakes;
  ecfg.detect.maar.seed = 23;
  ecfg.warm_start = true;
  ecfg.events_per_epoch = 0;  // epochs run explicitly below

  const std::size_t split = log.NumEvents() * 3 / 5;

  // Reference run: no crash.
  engine::EpochDetector ref(log.NumNodes(), seeds, ecfg);
  ref.IngestAll(log.Events().subspan(0, split));
  ref.RunEpoch();
  ref.IngestAll(log.Events().subspan(split));
  ref.RunEpoch();

  // Crashing run: ingest the head, run an epoch, checkpoint... crash.
  {
    engine::EpochDetector victim(log.NumNodes(), seeds, ecfg);
    victim.IngestAll(log.Events().subspan(0, split));
    victim.RunEpoch();
    victim.SaveCheckpoint(ckpt);
    EXPECT_EQ(victim.EventsIngested(), split);
  }  // the "crash": victim is gone, only ckpt + WAL survive

  // Recovery: restore the checkpoint, replay the WAL tail past the cursor.
  auto recovered = engine::EpochDetector::RestoreCheckpoint(ckpt, seeds, ecfg);
  EXPECT_EQ(recovered->EventsIngested(), split);
  const WalRecoverResult rec = RecoverWal(wal_base);
  ASSERT_TRUE(rec.clean);
  ASSERT_EQ(rec.events.size(), log.NumEvents());
  recovered->IngestAll(
      std::span<const Event>(rec.events).subspan(recovered->EventsIngested()));
  recovered->RunEpoch();

  EXPECT_EQ(recovered->Graph().Graph(), ref.Graph().Graph());
  EXPECT_EQ(recovered->LastResult().detected, ref.LastResult().detected);
  ASSERT_EQ(recovered->LastResult().rounds.size(),
            ref.LastResult().rounds.size());
  for (std::size_t r = 0; r < ref.LastResult().rounds.size(); ++r) {
    EXPECT_EQ(recovered->LastResult().rounds[r].detected,
              ref.LastResult().rounds[r].detected);
    EXPECT_EQ(recovered->LastResult().rounds[r].ratio,
              ref.LastResult().rounds[r].ratio);
    EXPECT_EQ(recovered->LastResult().rounds[r].k,
              ref.LastResult().rounds[r].k);
  }
  // History only holds post-restore epochs, but numbering continues.
  ASSERT_EQ(recovered->History().size(), 1u);
  EXPECT_EQ(recovered->History().back().epoch, ref.History().back().epoch);
  EXPECT_EQ(recovered->History().back().warm_started,
            ref.History().back().warm_started);
  EXPECT_TRUE(recovered->History().back().warm_started);
  EXPECT_EQ(recovered->EventsIngested(), ref.EventsIngested());

  std::remove(ckpt.c_str());
  RemoveWal(wal_base);
}

}  // namespace
}  // namespace rejecto::stream
