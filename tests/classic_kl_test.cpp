#include <gtest/gtest.h>

#include <limits>
#include <numeric>

#include "detect/classic_kl.h"
#include "gen/erdos_renyi.h"
#include "gen/planted_partition.h"
#include "graph/builder.h"

namespace rejecto::detect {
namespace {

TEST(ClassicKlTest, InvalidBalanceThrows) {
  graph::GraphBuilder b(4);
  b.AddFriendship(0, 1);
  const auto g = b.BuildSocial();
  EXPECT_THROW(ClassicKl(g, {.balance = 0.0}), std::invalid_argument);
  EXPECT_THROW(ClassicKl(g, {.balance = 1.0}), std::invalid_argument);
}

TEST(ClassicKlTest, PartSizePreserved) {
  util::Rng rng(1);
  const auto g = gen::ErdosRenyi({.num_nodes = 40, .num_edges = 120}, rng);
  for (double balance : {0.25, 0.5, 0.75}) {
    const auto r = ClassicKl(g, {.balance = balance, .seed = 2});
    graph::NodeId size_u = 0;
    for (char c : r.in_u) size_u += (c != 0);
    EXPECT_EQ(size_u, static_cast<graph::NodeId>(balance * 40 + 0.5))
        << "balance " << balance;
  }
}

TEST(ClassicKlTest, SeparatesTwoCliques) {
  // Two 8-cliques with one bridge: the optimal balanced bisection cuts
  // exactly the bridge.
  graph::GraphBuilder b(16);
  for (graph::NodeId u = 0; u < 8; ++u) {
    for (graph::NodeId v = u + 1; v < 8; ++v) b.AddFriendship(u, v);
  }
  for (graph::NodeId u = 8; u < 16; ++u) {
    for (graph::NodeId v = u + 1; v < 16; ++v) b.AddFriendship(u, v);
  }
  b.AddFriendship(0, 8);
  const auto r = ClassicKl(b.BuildSocial(), {.balance = 0.5, .seed = 7});
  EXPECT_EQ(r.cross_edges, 1u);
  for (graph::NodeId v = 1; v < 8; ++v) EXPECT_EQ(r.in_u[v], r.in_u[0]);
  EXPECT_NE(r.in_u[0], r.in_u[8]);
}

TEST(ClassicKlTest, ReportedCrossEdgesMatchMask) {
  util::Rng rng(3);
  const auto g = gen::ErdosRenyi({.num_nodes = 30, .num_edges = 90}, rng);
  const auto r = ClassicKl(g, {.balance = 0.5, .seed = 4});
  std::uint64_t cross = 0;
  for (const auto& e : g.Edges()) cross += (r.in_u[e.u] != r.in_u[e.v]);
  EXPECT_EQ(r.cross_edges, cross);
}

TEST(ClassicKlTest, RecoversPlantedCommunities) {
  util::Rng rng(5);
  const auto planted = gen::PlantedPartition(
      {.num_nodes = 100, .num_communities = 2, .p_in = 0.3, .p_out = 0.01},
      rng);
  const auto r = ClassicKl(planted.graph, {.balance = 0.5, .seed = 6});
  // The found bisection should align with the planted one (up to side
  // relabeling): count agreements both ways.
  graph::NodeId agree = 0;
  for (graph::NodeId v = 0; v < 100; ++v) {
    agree += (static_cast<std::uint32_t>(r.in_u[v]) ==
              planted.community_of[v]);
  }
  const graph::NodeId aligned = std::max(agree, 100 - agree);
  EXPECT_GE(aligned, 95u);
}

TEST(ClassicKlTest, NeverWorseThanRandomInit) {
  util::Rng rng(8);
  const auto g = gen::ErdosRenyi({.num_nodes = 60, .num_edges = 240}, rng);
  // The random init with the same seed, unoptimized:
  util::Rng init_rng(9);
  std::vector<graph::NodeId> perm(60);
  std::iota(perm.begin(), perm.end(), 0);
  init_rng.Shuffle(perm);
  std::vector<char> init(60, 0);
  for (graph::NodeId i = 0; i < 30; ++i) init[perm[i]] = 1;
  std::uint64_t init_cross = 0;
  for (const auto& e : g.Edges()) init_cross += (init[e.u] != init[e.v]);

  const auto r = ClassicKl(g, {.balance = 0.5, .seed = 9});
  EXPECT_LE(r.cross_edges, init_cross);
}

TEST(ClassicKlTest, DeterministicForSeed) {
  util::Rng rng(10);
  const auto g = gen::ErdosRenyi({.num_nodes = 50, .num_edges = 150}, rng);
  const auto a = ClassicKl(g, {.balance = 0.5, .seed = 11});
  const auto b = ClassicKl(g, {.balance = 0.5, .seed = 11});
  EXPECT_EQ(a.in_u, b.in_u);
  EXPECT_EQ(a.cross_edges, b.cross_edges);
}

}  // namespace
}  // namespace rejecto::detect
