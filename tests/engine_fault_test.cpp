// Fault-injection tests for the distributed engine: shard-fetch retries
// with exponential simulated backoff, degraded-mode failover of dead or
// unreachable shards to lineage-rebuilt replicas, cluster-level worker
// death, and the end-to-end differential — distributed detection under a
// mid-sweep worker crash plus a 10% flaky-fetch rate is bit-identical to
// the failure-free run, with the faults visible in IoStats.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <stdexcept>
#include <vector>

#include "detect/iterative.h"
#include "engine/cluster.h"
#include "engine/dist_detector.h"
#include "engine/shard_store.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "sim/scenario.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace rejecto::engine {
namespace {

graph::AugmentedGraph SmallAugmented(util::Rng& rng, graph::NodeId n = 60) {
  graph::GraphBuilder b(n);
  const auto social = gen::ErdosRenyi(
      {.num_nodes = n, .num_edges = static_cast<graph::EdgeId>(n) * 3}, rng);
  for (const auto& e : social.Edges()) b.AddFriendship(e.u, e.v);
  for (graph::NodeId i = 0; i < n; ++i) {
    const auto u = static_cast<graph::NodeId>(rng.NextUInt(n));
    const auto v = static_cast<graph::NodeId>(rng.NextUInt(n));
    if (u != v) b.AddRejection(u, v);
  }
  return b.BuildAugmented();
}

void ExpectAdjacencyMatchesGraph(const ShardedGraphStore& store,
                                 const graph::AugmentedGraph& g,
                                 std::span<const graph::NodeId> ids,
                                 std::span<const NodeAdjacency> batch) {
  ASSERT_EQ(batch.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto fr = g.Friendships().Neighbors(ids[i]);
    ASSERT_EQ(batch[i].friends.size(), fr.size()) << "node " << ids[i];
    EXPECT_TRUE(std::equal(fr.begin(), fr.end(), batch[i].friends.begin()));
  }
  (void)store;
}

// ---------- Retry / backoff ----------

TEST(FetchFaultTest, TransientFailureRetriesWithBackoff) {
  util::Rng rng(21);
  const auto g = SmallAugmented(rng);
  util::ThreadPool pool(2);
  const FetchPolicy policy{.max_attempts = 3,
                           .backoff_us = 100.0,
                           .backoff_multiplier = 2.0,
                           .attempt_timeout_us = 500.0};
  const ShardedGraphStore store(g, 2, pool, {}, policy);
  IoStats stats;
  const graph::NodeId ids[2] = {0, 2};  // both shard 0 -> one shard RPC
  // First evaluation fails, the retry succeeds.
  util::ScopedFailpoint flaky("engine/fetch_shard",
                              util::FailpointPolicy::OnNth(1));
  const auto batch = store.FetchBatch(ids, stats);
  ExpectAdjacencyMatchesGraph(store, g, ids, batch);
  EXPECT_EQ(stats.fetch_retries, 1u);
  EXPECT_DOUBLE_EQ(stats.simulated_backoff_us, 100.0);
  EXPECT_EQ(stats.shard_failovers, 0u);
  EXPECT_GE(stats.simulated_network_us, 500.0);  // the failed attempt's timeout
  EXPECT_FALSE(store.IsReplica(0));
}

TEST(FetchFaultTest, BackoffGrowsExponentially) {
  util::Rng rng(22);
  const auto g = SmallAugmented(rng);
  util::ThreadPool pool(2);
  const FetchPolicy policy{.max_attempts = 4,
                           .backoff_us = 100.0,
                           .backoff_multiplier = 2.0,
                           .attempt_timeout_us = 0.0};
  const ShardedGraphStore store(g, 2, pool, {}, policy);
  IoStats stats;
  const graph::NodeId ids[1] = {0};
  // every:1 fails all 4 attempts -> failover (degraded mode default on).
  std::vector<NodeAdjacency> batch;
  {
    util::ScopedFailpoint down("engine/fetch_shard",
                               util::FailpointPolicy::EveryNth(1));
    batch = store.FetchBatch(ids, stats);
  }
  ExpectAdjacencyMatchesGraph(store, g, ids, batch);
  EXPECT_EQ(stats.fetch_retries, 3u);  // attempts 1-3 retried, 4th failed over
  // 100 + 200 + 400 backoff waits.
  EXPECT_DOUBLE_EQ(stats.simulated_backoff_us, 700.0);
  EXPECT_EQ(stats.shard_failovers, 1u);
  EXPECT_TRUE(store.IsReplica(0));
}

TEST(FetchFaultTest, ExhaustionWithoutDegradedModeThrows) {
  util::Rng rng(23);
  const auto g = SmallAugmented(rng);
  util::ThreadPool pool(2);
  const FetchPolicy policy{.max_attempts = 2, .degraded_mode = false};
  const ShardedGraphStore store(g, 2, pool, {}, policy);
  IoStats stats;
  const graph::NodeId ids[1] = {0};
  util::ScopedFailpoint down("engine/fetch_shard",
                             util::FailpointPolicy::EveryNth(1));
  EXPECT_THROW(store.FetchBatch(ids, stats), std::runtime_error);
}

// ---------- Worker death / failover ----------

TEST(FetchFaultTest, WorkerCrashFailsOverAndMarksClusterWorkerDead) {
  util::Rng rng(24);
  const auto g = SmallAugmented(rng);
  Cluster cluster({.num_workers = 3, .prefetch_batch = 8,
                   .buffer_capacity = 64});
  const ShardedGraphStore store(g, cluster);
  IoStats stats;
  const graph::NodeId ids[1] = {1};  // shard 1
  util::ScopedFailpoint crash("engine/worker_crash",
                              util::FailpointPolicy::OnNth(1));
  const auto batch = store.FetchBatch(ids, stats);
  ExpectAdjacencyMatchesGraph(store, g, ids, batch);
  EXPECT_EQ(stats.shard_failovers, 1u);
  EXPECT_TRUE(store.IsReplica(1));
  EXPECT_TRUE(cluster.WorkerDead(1));
  EXPECT_EQ(cluster.NumDeadWorkers(), 1u);
  // The replica keeps serving; Local data survived the rebuild.
  IoStats stats2;
  const auto batch2 = store.FetchBatch(ids, stats2);
  ExpectAdjacencyMatchesGraph(store, g, ids, batch2);
  EXPECT_EQ(stats2.shard_failovers, 0u);
}

TEST(FetchFaultTest, StoreBuiltAfterWorkerDeathStartsWithReplica) {
  util::Rng rng(25);
  const auto g = SmallAugmented(rng);
  Cluster cluster({.num_workers = 3, .prefetch_batch = 8,
                   .buffer_capacity = 64});
  cluster.KillWorker(2);
  const ShardedGraphStore store(g, cluster);
  EXPECT_EQ(store.Failovers(), 1u);
  EXPECT_TRUE(store.IsReplica(2));
  EXPECT_FALSE(store.IsReplica(0));
  // The replica's data is bit-identical to a healthy shard's.
  for (graph::NodeId v = 2; v < g.NumNodes(); v += 3) {
    const auto fr = g.Friendships().Neighbors(v);
    ASSERT_EQ(store.Local(v).friends.size(), fr.size());
    EXPECT_TRUE(
        std::equal(fr.begin(), fr.end(), store.Local(v).friends.begin()));
  }
  cluster.ReviveWorker(2);
  EXPECT_EQ(cluster.NumDeadWorkers(), 0u);
}

TEST(FetchFaultTest, DeadWorkerWithoutDegradedModeThrowsOnBuild) {
  util::Rng rng(26);
  const auto g = SmallAugmented(rng);
  ClusterConfig cfg{.num_workers = 2, .prefetch_batch = 8,
                    .buffer_capacity = 64};
  cfg.fetch.degraded_mode = false;
  Cluster cluster(cfg);
  cluster.KillWorker(0);
  EXPECT_THROW(ShardedGraphStore(g, cluster), std::runtime_error);
}

TEST(ClusterFaultTest, ConfigValidation) {
  ClusterConfig bad{.num_workers = 2};
  bad.fetch.max_attempts = 0;
  EXPECT_THROW(Cluster{bad}, std::invalid_argument);
  bad = ClusterConfig{.num_workers = 2};
  bad.fetch.backoff_multiplier = 0.5;
  EXPECT_THROW(Cluster{bad}, std::invalid_argument);
  bad = ClusterConfig{.num_workers = 2};
  bad.fetch.backoff_us = -1.0;
  EXPECT_THROW(Cluster{bad}, std::invalid_argument);
  Cluster cluster({.num_workers = 2});
  EXPECT_THROW(cluster.KillWorker(5), std::out_of_range);
}

// ---------- End-to-end differential under injected faults ----------

// ISSUE acceptance: distributed detection with one worker shard killed
// mid-sweep AND a 10% per-attempt fetch-failure rate must complete and be
// bit-identical to the failure-free run, with retries, backoff, and the
// failover visible in IoStats.
TEST(DistFaultDifferentialTest, DetectionBitIdenticalUnderInjectedFaults) {
  util::Rng rng(55);
  const auto legit =
      gen::ErdosRenyi({.num_nodes = 400, .num_edges = 1600}, rng);
  sim::ScenarioConfig scfg;
  scfg.seed = 5;
  scfg.num_fakes = 80;
  const auto scenario = sim::BuildScenario(legit, scfg);
  util::Rng seed_rng(6);
  const auto seeds = scenario.SampleSeeds(10, 4, seed_rng);

  detect::IterativeConfig cfg;
  cfg.target_detections = 80;
  cfg.maar.seed = 3;

  const ClusterConfig ccfg{.num_workers = 3, .prefetch_batch = 32,
                           .buffer_capacity = 512};

  // Failure-free baseline.
  Cluster healthy(ccfg);
  const auto baseline =
      DetectFriendSpammersDistributed(scenario.graph, seeds, cfg, healthy);
  EXPECT_EQ(baseline.io.fetch_retries, 0u);
  EXPECT_EQ(baseline.io.shard_failovers, 0u);

  // Faulty run: worker crash on the 40th shard touch (well inside the
  // first sweep) plus 10% flaky fetches for the whole detection.
  Cluster faulty(ccfg);
  util::ScopedFailpoint crash("engine/worker_crash",
                              util::FailpointPolicy::OnNth(40));
  util::ScopedFailpoint flaky("engine/fetch_shard",
                              util::FailpointPolicy::Probability(0.1, 7));
  const auto faulted =
      DetectFriendSpammersDistributed(scenario.graph, seeds, cfg, faulty);

  EXPECT_EQ(faulted.detection.detected, baseline.detection.detected);
  ASSERT_EQ(faulted.detection.rounds.size(), baseline.detection.rounds.size());
  for (std::size_t r = 0; r < baseline.detection.rounds.size(); ++r) {
    EXPECT_EQ(faulted.detection.rounds[r].detected,
              baseline.detection.rounds[r].detected);
    EXPECT_EQ(faulted.detection.rounds[r].ratio,
              baseline.detection.rounds[r].ratio);
  }
  EXPECT_EQ(faulted.detection.hit_target, baseline.detection.hit_target);

  // The faults actually happened and were metered.
  EXPECT_EQ(faulty.NumDeadWorkers(), 1u) << "the crash fired mid-sweep";
  EXPECT_GT(faulted.io.fetch_retries, 0u);
  EXPECT_GT(faulted.io.simulated_backoff_us, 0.0);
  EXPECT_GE(faulted.io.shard_failovers, 1u);
  EXPECT_GT(faulted.io.simulated_network_us,
            baseline.io.simulated_network_us)
      << "timeouts and retries cost simulated time";
}

}  // namespace
}  // namespace rejecto::engine
