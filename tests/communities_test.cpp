#include <gtest/gtest.h>

#include <set>

#include "detect/seed_selection.h"
#include "gen/planted_partition.h"
#include "graph/builder.h"
#include "graph/communities.h"

namespace rejecto {
namespace {

graph::SocialGraph TwoCliquesBridged() {
  graph::GraphBuilder b(16);
  for (graph::NodeId u = 0; u < 8; ++u) {
    for (graph::NodeId v = u + 1; v < 8; ++v) b.AddFriendship(u, v);
  }
  for (graph::NodeId u = 8; u < 16; ++u) {
    for (graph::NodeId v = u + 1; v < 16; ++v) b.AddFriendship(u, v);
  }
  b.AddFriendship(0, 8);
  return b.BuildSocial();
}

TEST(LabelPropagationTest, TwoCliquesTwoCommunities) {
  util::Rng rng(1);
  const auto r = graph::LabelPropagation(TwoCliquesBridged(), rng);
  EXPECT_EQ(r.num_communities, 2u);
  for (graph::NodeId v = 1; v < 8; ++v) {
    EXPECT_EQ(r.community_of[v], r.community_of[0]);
  }
  for (graph::NodeId v = 9; v < 16; ++v) {
    EXPECT_EQ(r.community_of[v], r.community_of[8]);
  }
  EXPECT_NE(r.community_of[0], r.community_of[8]);
}

TEST(LabelPropagationTest, IsolatedNodesAreSingletons) {
  graph::GraphBuilder b(5);
  b.AddFriendship(0, 1);
  util::Rng rng(2);
  const auto r = graph::LabelPropagation(b.BuildSocial(), rng);
  // {0,1} merge; 2, 3, 4 stay singletons -> 4 communities.
  EXPECT_EQ(r.num_communities, 4u);
  EXPECT_EQ(r.community_of[0], r.community_of[1]);
}

TEST(LabelPropagationTest, CliqueCollapsesToOne) {
  graph::GraphBuilder b(10);
  for (graph::NodeId u = 0; u < 10; ++u) {
    for (graph::NodeId v = u + 1; v < 10; ++v) b.AddFriendship(u, v);
  }
  util::Rng rng(3);
  const auto r = graph::LabelPropagation(b.BuildSocial(), rng);
  EXPECT_EQ(r.num_communities, 1u);
}

TEST(LabelPropagationTest, CommunityIdsAreDense) {
  util::Rng rng(4);
  const auto r = graph::LabelPropagation(TwoCliquesBridged(), rng);
  for (auto c : r.community_of) EXPECT_LT(c, r.num_communities);
  EXPECT_EQ(r.Members().size(), r.num_communities);
}

TEST(LabelPropagationTest, RecoversPlantedPartition) {
  util::Rng grng(5);
  const auto planted = gen::PlantedPartition(
      {.num_nodes = 300, .num_communities = 3, .p_in = 0.25, .p_out = 0.002},
      grng);
  util::Rng rng(6);
  const auto r = graph::LabelPropagation(planted.graph, rng);
  // Most pairs in the same planted community should share a label.
  std::uint64_t agree = 0, total = 0;
  for (graph::NodeId u = 0; u < 300; u += 7) {
    for (graph::NodeId v = u + 1; v < 300; v += 11) {
      if (planted.community_of[u] == planted.community_of[v]) {
        ++total;
        agree += (r.community_of[u] == r.community_of[v]);
      }
    }
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.9);
}

TEST(LabelPropagationTest, DeterministicForSeed) {
  util::Rng a(7), b(7);
  const auto g = TwoCliquesBridged();
  EXPECT_EQ(graph::LabelPropagation(g, a).community_of,
            graph::LabelPropagation(g, b).community_of);
}

TEST(ModularityTest, SingleCommunityIsZeroish) {
  // All nodes in one label: Q = m/m − 1² = 0.
  graph::GraphBuilder b(4);
  b.AddFriendship(0, 1);
  b.AddFriendship(2, 3);
  EXPECT_NEAR(graph::Modularity(b.BuildSocial(),
                                std::vector<std::uint32_t>(4, 0)),
              0.0, 1e-12);
}

TEST(ModularityTest, PerfectSplitOfDisconnectedCliques) {
  // Two disjoint edges labeled separately: Q = 1 − 2·(1/2)² = 1/2.
  graph::GraphBuilder b(4);
  b.AddFriendship(0, 1);
  b.AddFriendship(2, 3);
  EXPECT_NEAR(graph::Modularity(b.BuildSocial(), {0, 0, 1, 1}), 0.5, 1e-12);
}

TEST(ModularityTest, WorstSplitIsNegative) {
  // Splitting each edge across labels: no intra edges -> Q < 0.
  graph::GraphBuilder b(4);
  b.AddFriendship(0, 1);
  b.AddFriendship(2, 3);
  EXPECT_LT(graph::Modularity(b.BuildSocial(), {0, 1, 0, 1}), 0.0);
}

TEST(ModularityTest, LabelPropagationBeatsRandomLabels) {
  const auto g = TwoCliquesBridged();
  util::Rng rng(21);
  const auto lp = graph::LabelPropagation(g, rng);
  std::vector<std::uint32_t> random_labels(16);
  for (auto& l : random_labels) {
    l = static_cast<std::uint32_t>(rng.NextUInt(2));
  }
  EXPECT_GT(graph::Modularity(g, lp.community_of),
            graph::Modularity(g, random_labels));
}

TEST(ModularityTest, SizeMismatchThrows) {
  const auto g = TwoCliquesBridged();
  EXPECT_THROW(graph::Modularity(g, std::vector<std::uint32_t>(3, 0)),
               std::invalid_argument);
}

TEST(ConductanceTest, IsolatedCommunityNearZero) {
  const auto g = TwoCliquesBridged();
  std::vector<char> side(16, 0);
  for (graph::NodeId v = 0; v < 8; ++v) side[v] = 1;
  // One bridge edge over volume 8*7+1 = 57 -> tiny conductance.
  EXPECT_NEAR(graph::Conductance(g, side), 1.0 / 57.0, 1e-12);
}

TEST(ConductanceTest, EmptySideIsOne) {
  const auto g = TwoCliquesBridged();
  EXPECT_DOUBLE_EQ(graph::Conductance(g, std::vector<char>(16, 0)), 1.0);
  EXPECT_DOUBLE_EQ(graph::Conductance(g, std::vector<char>(16, 1)), 1.0);
}

TEST(ConductanceTest, StarCenterVsLeaves) {
  // S = {center} of a 4-star: cut 4, vol(S) 4, vol(S̄) 4 -> 1.0.
  graph::GraphBuilder b(5);
  for (graph::NodeId v = 1; v < 5; ++v) b.AddFriendship(0, v);
  std::vector<char> side(5, 0);
  side[0] = 1;
  EXPECT_DOUBLE_EQ(graph::Conductance(b.BuildSocial(), side), 1.0);
}

TEST(ConductanceTest, SizeMismatchThrows) {
  const auto g = TwoCliquesBridged();
  EXPECT_THROW(graph::Conductance(g, std::vector<char>(4, 0)),
               std::invalid_argument);
}

TEST(SeedSelectionTest, CoversBothCommunities) {
  const auto g = TwoCliquesBridged();
  const auto c = detect::SelectSeedCandidates(
      g, {.total_candidates = 6, .seed = 9});
  EXPECT_EQ(c.num_communities, 2u);
  EXPECT_EQ(c.communities_covered, 2u);
  EXPECT_LE(c.nodes.size(), 6u);
  std::set<bool> sides;
  for (graph::NodeId v : c.nodes) sides.insert(v < 8);
  EXPECT_EQ(sides.size(), 2u);
}

TEST(SeedSelectionTest, CandidatesDistinctAndInRange) {
  util::Rng grng(10);
  const auto planted = gen::PlantedPartition(
      {.num_nodes = 200, .num_communities = 4, .p_in = 0.3, .p_out = 0.002},
      grng);
  const auto c = detect::SelectSeedCandidates(
      planted.graph, {.total_candidates = 40, .seed = 11});
  std::set<graph::NodeId> distinct(c.nodes.begin(), c.nodes.end());
  EXPECT_EQ(distinct.size(), c.nodes.size());
  for (graph::NodeId v : c.nodes) EXPECT_LT(v, 200u);
  EXPECT_GE(c.communities_covered, 4u);
}

TEST(SeedSelectionTest, BudgetRespected) {
  const auto g = TwoCliquesBridged();
  const auto c = detect::SelectSeedCandidates(
      g, {.total_candidates = 3, .seed = 12});
  EXPECT_LE(c.nodes.size(), 3u);
}

TEST(SeedSelectionTest, InvalidConfigThrows) {
  const auto g = TwoCliquesBridged();
  EXPECT_THROW(
      detect::SelectSeedCandidates(g, {.total_candidates = 0}),
      std::invalid_argument);
  EXPECT_THROW(detect::SelectSeedCandidates(
                   g, {.total_candidates = 5, .max_community_fraction = 0.0}),
               std::invalid_argument);
}

TEST(SeedSelectionTest, CapPreventsConsumingTinyCommunities) {
  // One big clique + one 2-node community; with a 0.5 cap at most 1 node of
  // the pair is nominated.
  graph::GraphBuilder b(12);
  for (graph::NodeId u = 0; u < 10; ++u) {
    for (graph::NodeId v = u + 1; v < 10; ++v) b.AddFriendship(u, v);
  }
  b.AddFriendship(10, 11);
  const auto c = detect::SelectSeedCandidates(
      b.BuildSocial(),
      {.total_candidates = 12, .max_community_fraction = 0.5, .seed = 13});
  int tiny = 0;
  for (graph::NodeId v : c.nodes) tiny += (v >= 10);
  EXPECT_LE(tiny, 1);
}

}  // namespace
}  // namespace rejecto
