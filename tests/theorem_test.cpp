// Properties derived from the paper's formal claims:
//   * Theorem 1 (§IV-D): the MAAR cut with ratio k* is optimal for the
//     linear objective W(U) = |F| − k*·|R⃗| — so at k = k*, W(U*) = 0 and
//     no single-node switch may strictly decrease W (local optimality of
//     the returned cut under the solver's own refinement).
//   * §IV-B's 2-approximation bridge: the MAAR ratio relates to the
//     symmetric both-direction ratio within a factor of two.
#include <gtest/gtest.h>

#include <cmath>

#include "detect/maar.h"
#include "detect/partition.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "util/rng.h"

namespace rejecto::detect {
namespace {

graph::AugmentedGraph RandomAugmented(graph::NodeId n, util::Rng& rng) {
  graph::GraphBuilder b(n);
  const auto social = gen::ErdosRenyi(
      {.num_nodes = n, .num_edges = static_cast<graph::EdgeId>(n) * 3}, rng);
  for (const auto& e : social.Edges()) b.AddFriendship(e.u, e.v);
  for (graph::NodeId i = 0; i < 2 * n; ++i) {
    const auto u = static_cast<graph::NodeId>(rng.NextUInt(n));
    const auto v = static_cast<graph::NodeId>(rng.NextUInt(n));
    if (u != v) b.AddRejection(u, v);
  }
  return b.BuildAugmented();
}

class TheoremOneTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TheoremOneTest, ObjectiveAtOwnRatioIsZero) {
  util::Rng rng(GetParam() + 70);
  const auto g = RandomAugmented(60, rng);
  MaarConfig cfg;
  cfg.min_region_size = 2;
  cfg.seed = GetParam();
  MaarSolver solver(g, {}, cfg);
  const MaarCut cut = solver.Solve();
  if (!cut.valid) return;
  // W(U*) at k = ratio(U*) is exactly F − (F/R)·R = 0.
  Partition p(g, cut.in_u);
  EXPECT_NEAR(p.Objective(cut.ratio), 0.0, 1e-6);
}

TEST_P(TheoremOneTest, FinalCutIsNearLocallyOptimal) {
  // The heuristic contract: the Dinkelbach rounds end when a *full KL run*
  // at k = ratio(U*) stops producing a strictly better valid cut, which is
  // weaker than single-switch local optimality (KL's best prefix can
  // overshoot the validity constraints and get discarded). Pin the actual
  // behavior: only a small residue of nodes may still have improving
  // single switches at the final ratio.
  util::Rng rng(GetParam() + 170);
  const auto g = RandomAugmented(60, rng);
  MaarConfig cfg;
  cfg.min_region_size = 2;
  cfg.dinkelbach_rounds = 6;
  cfg.seed = GetParam();
  MaarSolver solver(g, {}, cfg);
  const MaarCut cut = solver.Solve();
  if (!cut.valid) return;
  Partition p(g, cut.in_u);
  graph::NodeId improving = 0;
  for (graph::NodeId v = 0; v < g.NumNodes(); ++v) {
    if (-p.DeltaObjective(v, cut.ratio) > 1e-6) ++improving;
  }
  EXPECT_LE(improving, g.NumNodes() / 10)
      << "final cut is far from locally optimal";
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, TheoremOneTest,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(TwoApproximationTest, MaarRatioWithinFactorTwoOfSymmetricRatio) {
  // §IV-B: for any cut, picking U as the side with the larger incoming
  // rejection mass gives OMAAR(U) <= 2 * OMR(U) where OMR counts both
  // directions. Check the inequality on random cuts.
  util::Rng rng(7);
  const auto g = RandomAugmented(40, rng);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<char> mask(g.NumNodes(), 0);
    for (auto& c : mask) c = rng.NextBool(0.5) ? 1 : 0;
    auto q = g.ComputeCut(mask);
    // Choose U as the side receiving the majority of cross rejections.
    if (q.rejections_from_u > q.rejections_into_u) {
      for (auto& c : mask) c = c ? 0 : 1;
      q = g.ComputeCut(mask);
    }
    const std::uint64_t both = q.rejections_into_u + q.rejections_from_u;
    if (q.rejections_into_u == 0 || both == 0) continue;
    const double o_maar = static_cast<double>(q.cross_friendships) /
                          static_cast<double>(q.rejections_into_u);
    const double o_mr = static_cast<double>(q.cross_friendships) /
                        static_cast<double>(both);
    EXPECT_LE(o_maar, 2.0 * o_mr + 1e-9);
  }
}

}  // namespace
}  // namespace rejecto::detect
