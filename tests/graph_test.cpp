#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/augmented_graph.h"
#include "graph/builder.h"
#include "graph/rejection_graph.h"
#include "graph/social_graph.h"
#include "graph/subgraph.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace rejecto::graph {
namespace {

// ---------- GraphBuilder / SocialGraph ----------

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder b;
  const SocialGraph g = b.BuildSocial();
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(GraphBuilderTest, AddNodeReturnsSequentialIds) {
  GraphBuilder b;
  EXPECT_EQ(b.AddNode(), 0u);
  EXPECT_EQ(b.AddNode(), 1u);
  EXPECT_EQ(b.AddNodes(3), 2u);
  EXPECT_EQ(b.NumNodes(), 5u);
}

TEST(GraphBuilderTest, SelfFriendshipThrows) {
  GraphBuilder b(2);
  EXPECT_THROW(b.AddFriendship(1, 1), std::invalid_argument);
}

TEST(GraphBuilderTest, SelfRejectionArcThrows) {
  GraphBuilder b(2);
  EXPECT_THROW(b.AddRejection(0, 0), std::invalid_argument);
}

TEST(GraphBuilderTest, EdgesImplicitlyGrowNodeRange) {
  GraphBuilder b;
  b.AddFriendship(3, 7);
  EXPECT_EQ(b.NumNodes(), 8u);
  const SocialGraph g = b.BuildSocial();
  EXPECT_EQ(g.NumNodes(), 8u);
  EXPECT_TRUE(g.HasEdge(3, 7));
  EXPECT_EQ(g.Degree(0), 0u);
}

TEST(GraphBuilderTest, DuplicateEdgesCollapse) {
  GraphBuilder b(3);
  b.AddFriendship(0, 1);
  b.AddFriendship(1, 0);
  b.AddFriendship(0, 1);
  const SocialGraph g = b.BuildSocial();
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 1u);
}

TEST(SocialGraphTest, NeighborsAreSorted) {
  GraphBuilder b(5);
  b.AddFriendship(2, 4);
  b.AddFriendship(2, 0);
  b.AddFriendship(2, 3);
  const SocialGraph g = b.BuildSocial();
  const auto nbrs = g.Neighbors(2);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 3u);
}

TEST(SocialGraphTest, HasEdgeSymmetric) {
  GraphBuilder b(4);
  b.AddFriendship(1, 3);
  const SocialGraph g = b.BuildSocial();
  EXPECT_TRUE(g.HasEdge(1, 3));
  EXPECT_TRUE(g.HasEdge(3, 1));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

// Accessor bounds checks are REJECTO_DCHECKs: they throw in debug builds
// and compile out entirely under NDEBUG (Release), so the contract is only
// testable when NDEBUG is off.
#ifndef NDEBUG
TEST(SocialGraphTest, OutOfRangeNodeThrows) {
  GraphBuilder b(2);
  b.AddFriendship(0, 1);
  const SocialGraph g = b.BuildSocial();
  EXPECT_THROW(g.Degree(2), std::out_of_range);
  EXPECT_THROW(g.Neighbors(9), std::out_of_range);
  EXPECT_THROW((void)g.HasEdge(0, 5), std::out_of_range);
}
#endif  // NDEBUG

TEST(SocialGraphTest, EdgesReportsEachOnceNormalized) {
  GraphBuilder b(4);
  b.AddFriendship(3, 1);
  b.AddFriendship(0, 2);
  const SocialGraph g = b.BuildSocial();
  auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 2u);
  for (const Edge& e : edges) EXPECT_LT(e.u, e.v);
}

TEST(SocialGraphTest, MaxDegreeTracked) {
  GraphBuilder b(5);
  for (NodeId v = 1; v < 5; ++v) b.AddFriendship(0, v);
  EXPECT_EQ(b.BuildSocial().MaxDegree(), 4u);
}

TEST(GraphBuilderTest, BuilderReusableAfterBuild) {
  GraphBuilder b(3);
  b.AddFriendship(0, 1);
  const SocialGraph g1 = b.BuildSocial();
  b.AddFriendship(1, 2);
  const SocialGraph g2 = b.BuildSocial();
  EXPECT_EQ(g1.NumEdges(), 1u);
  EXPECT_EQ(g2.NumEdges(), 2u);
}

// ---------- RejectionGraph ----------

TEST(RejectionGraphTest, DirectionalityPreserved) {
  GraphBuilder b(3);
  b.AddRejection(0, 1);  // 0 rejected 1's request
  const RejectionGraph r = b.BuildRejection();
  EXPECT_TRUE(r.HasArc(0, 1));
  EXPECT_FALSE(r.HasArc(1, 0));
  EXPECT_EQ(r.OutDegree(0), 1u);
  EXPECT_EQ(r.InDegree(1), 1u);
  EXPECT_EQ(r.InDegree(0), 0u);
}

TEST(RejectionGraphTest, RepeatedRejectionsCollapse) {
  GraphBuilder b(2);
  b.AddRejection(0, 1);
  b.AddRejection(0, 1);
  b.AddRejection(0, 1);
  EXPECT_EQ(b.BuildRejection().NumArcs(), 1u);
}

TEST(RejectionGraphTest, BothDirectionsAreDistinctArcs) {
  GraphBuilder b(2);
  b.AddRejection(0, 1);
  b.AddRejection(1, 0);
  const RejectionGraph r = b.BuildRejection();
  EXPECT_EQ(r.NumArcs(), 2u);
}

TEST(RejectionGraphTest, InAdjacencyMirrorsOut) {
  GraphBuilder b(5);
  b.AddRejection(0, 2);
  b.AddRejection(1, 2);
  b.AddRejection(3, 2);
  b.AddRejection(2, 4);
  const RejectionGraph r = b.BuildRejection();
  const auto rejectors = r.Rejectors(2);
  ASSERT_EQ(rejectors.size(), 3u);
  EXPECT_TRUE(std::is_sorted(rejectors.begin(), rejectors.end()));
  EXPECT_EQ(r.Rejectees(2).size(), 1u);
  EXPECT_EQ(r.Rejectees(2)[0], 4u);
}

TEST(RejectionGraphTest, ArcsEnumerationMatchesCount) {
  GraphBuilder b(4);
  b.AddRejection(0, 1);
  b.AddRejection(2, 3);
  b.AddRejection(3, 0);
  const RejectionGraph r = b.BuildRejection();
  EXPECT_EQ(r.Arcs().size(), r.NumArcs());
}

#ifndef NDEBUG
TEST(RejectionGraphTest, OutOfRangeThrows) {
  GraphBuilder b(2);
  b.AddRejection(0, 1);
  const RejectionGraph r = b.BuildRejection();
  EXPECT_THROW(r.Rejectors(5), std::out_of_range);
  EXPECT_THROW(r.InDegree(2), std::out_of_range);
}
#endif  // NDEBUG

// ---------- AugmentedGraph ----------

AugmentedGraph MakeSmallAugmented() {
  // Legit: 0-1-2 triangle. Fakes: 3-4 linked. Attack edge 2-3.
  // Rejections: 0->3, 1->3, 1->4 (legit rejecting fakes), 4->0 (fake
  // rejecting a legit request).
  GraphBuilder b(5);
  b.AddFriendship(0, 1);
  b.AddFriendship(1, 2);
  b.AddFriendship(0, 2);
  b.AddFriendship(3, 4);
  b.AddFriendship(2, 3);
  b.AddRejection(0, 3);
  b.AddRejection(1, 3);
  b.AddRejection(1, 4);
  b.AddRejection(4, 0);
  return b.BuildAugmented();
}

TEST(AugmentedGraphTest, MismatchedNodeCountsThrow) {
  GraphBuilder bf(3);
  bf.AddFriendship(0, 1);
  GraphBuilder br(2);
  br.AddRejection(0, 1);
  EXPECT_THROW(AugmentedGraph(bf.BuildSocial(), br.BuildRejection()),
               std::invalid_argument);
}

TEST(AugmentedGraphTest, ComputeCutOnFakeRegion) {
  const AugmentedGraph g = MakeSmallAugmented();
  std::vector<char> in_u = {0, 0, 0, 1, 1};  // U = fakes {3,4}
  const CutQuantities q = g.ComputeCut(in_u);
  EXPECT_EQ(q.cross_friendships, 1u);    // attack edge 2-3
  EXPECT_EQ(q.rejections_into_u, 3u);    // 0->3, 1->3, 1->4
  EXPECT_EQ(q.rejections_from_u, 1u);    // 4->0
  EXPECT_NEAR(q.AcceptanceRate(), 1.0 / 4.0, 1e-12);
  EXPECT_NEAR(q.FriendsToRejectionsRatio(), 1.0 / 3.0, 1e-12);
}

TEST(AugmentedGraphTest, ComputeCutEmptyU) {
  const AugmentedGraph g = MakeSmallAugmented();
  std::vector<char> in_u(5, 0);
  const CutQuantities q = g.ComputeCut(in_u);
  EXPECT_EQ(q.cross_friendships, 0u);
  EXPECT_EQ(q.rejections_into_u, 0u);
  EXPECT_EQ(q.AcceptanceRate(), 1.0);  // degenerate 0/0 convention
  EXPECT_TRUE(std::isinf(q.FriendsToRejectionsRatio()));
}

TEST(AugmentedGraphTest, ComputeCutFullU) {
  const AugmentedGraph g = MakeSmallAugmented();
  std::vector<char> in_u(5, 1);
  const CutQuantities q = g.ComputeCut(in_u);
  EXPECT_EQ(q.cross_friendships, 0u);
  EXPECT_EQ(q.rejections_into_u, 0u);
  EXPECT_EQ(q.rejections_from_u, 0u);
}

TEST(AugmentedGraphTest, ComputeCutWrongMaskSizeThrows) {
  const AugmentedGraph g = MakeSmallAugmented();
  EXPECT_THROW(g.ComputeCut(std::vector<char>(3, 0)), std::invalid_argument);
}

TEST(CutQuantitiesTest, AcceptanceRateFormula) {
  CutQuantities q;
  q.cross_friendships = 30;
  q.rejections_into_u = 70;
  EXPECT_NEAR(q.AcceptanceRate(), 0.3, 1e-12);
  EXPECT_NEAR(q.FriendsToRejectionsRatio(), 30.0 / 70.0, 1e-12);
}

// ---------- InducedSubgraph ----------

TEST(SubgraphTest, KeepsOnlyMaskedNodesAndInternalEdges) {
  const AugmentedGraph g = MakeSmallAugmented();
  std::vector<char> keep = {1, 1, 1, 0, 0};  // drop the fakes
  const CompactedGraph c = InducedSubgraph(g, keep);
  EXPECT_EQ(c.graph.NumNodes(), 3u);
  EXPECT_EQ(c.graph.Friendships().NumEdges(), 3u);  // legit triangle only
  EXPECT_EQ(c.graph.Rejections().NumArcs(), 0u);    // all arcs touched fakes
  EXPECT_EQ(c.parent_id, (std::vector<NodeId>{0, 1, 2}));
}

TEST(SubgraphTest, KeepsInternalRejections) {
  GraphBuilder b(4);
  b.AddFriendship(0, 1);
  b.AddRejection(0, 1);
  b.AddRejection(2, 1);
  const AugmentedGraph g = b.BuildAugmented();
  std::vector<char> keep = {1, 1, 0, 1};
  const CompactedGraph c = InducedSubgraph(g, keep);
  EXPECT_EQ(c.graph.NumNodes(), 3u);
  EXPECT_EQ(c.graph.Rejections().NumArcs(), 1u);  // 0->1 survives, 2->1 gone
  EXPECT_TRUE(c.graph.Rejections().HasArc(0, 1));
}

TEST(SubgraphTest, EmptyKeepProducesEmptyGraph) {
  const AugmentedGraph g = MakeSmallAugmented();
  const CompactedGraph c = InducedSubgraph(g, std::vector<char>(5, 0));
  EXPECT_EQ(c.graph.NumNodes(), 0u);
  EXPECT_TRUE(c.parent_id.empty());
}

TEST(SubgraphTest, WrongMaskSizeThrows) {
  const AugmentedGraph g = MakeSmallAugmented();
  EXPECT_THROW(InducedSubgraph(g, std::vector<char>(2, 1)),
               std::invalid_argument);
}

TEST(SubgraphTest, ParentIdsMapBack) {
  const AugmentedGraph g = MakeSmallAugmented();
  std::vector<char> keep = {0, 1, 0, 1, 1};
  const CompactedGraph c = InducedSubgraph(g, keep);
  EXPECT_EQ(c.parent_id, (std::vector<NodeId>{1, 3, 4}));
  // Edge 3-4 in the parent is 1-2 in the child.
  EXPECT_TRUE(c.graph.Friendships().HasEdge(1, 2));
}

// Reference compaction through GraphBuilder — the implementation the CSR
// filter replaced. The builder path re-sorts and re-deduplicates, so
// agreement here proves the filter preserves the full CSR contract.
CompactedGraph BuilderInducedSubgraph(const AugmentedGraph& g,
                                      const std::vector<char>& keep) {
  std::vector<NodeId> new_id(g.NumNodes(), kInvalidNode);
  CompactedGraph out;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (keep[u]) {
      new_id[u] = static_cast<NodeId>(out.parent_id.size());
      out.parent_id.push_back(u);
    }
  }
  GraphBuilder builder(static_cast<NodeId>(out.parent_id.size()));
  const auto& fr = g.Friendships();
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (!keep[u]) continue;
    for (NodeId v : fr.Neighbors(u)) {
      if (u < v && keep[v]) builder.AddFriendship(new_id[u], new_id[v]);
    }
  }
  const auto& rej = g.Rejections();
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (!keep[u]) continue;
    for (NodeId v : rej.Rejectees(u)) {
      if (keep[v]) builder.AddRejection(new_id[u], new_id[v]);
    }
  }
  out.graph = builder.BuildAugmented();
  return out;
}

// Full structural equality, not just counts: per-node adjacency in both
// graphs and both rejection directions, plus the cached degree maxima the
// KL gain bound depends on.
void ExpectSameCompaction(const CompactedGraph& a, const CompactedGraph& b) {
  ASSERT_EQ(a.parent_id, b.parent_id);
  ASSERT_EQ(a.graph.NumNodes(), b.graph.NumNodes());
  const auto& fa = a.graph.Friendships();
  const auto& fb = b.graph.Friendships();
  ASSERT_EQ(fa.NumEdges(), fb.NumEdges());
  EXPECT_EQ(fa.MaxDegree(), fb.MaxDegree());
  EXPECT_EQ(a.graph.MaxFriendshipDegree(), b.graph.MaxFriendshipDegree());
  EXPECT_EQ(a.graph.MaxRejectionDegree(), b.graph.MaxRejectionDegree());
  const auto& ra = a.graph.Rejections();
  const auto& rb = b.graph.Rejections();
  ASSERT_EQ(ra.NumArcs(), rb.NumArcs());
  for (NodeId v = 0; v < a.graph.NumNodes(); ++v) {
    ASSERT_TRUE(std::equal(fa.Neighbors(v).begin(), fa.Neighbors(v).end(),
                           fb.Neighbors(v).begin(), fb.Neighbors(v).end()))
        << "friend row " << v;
    ASSERT_TRUE(std::equal(ra.Rejectees(v).begin(), ra.Rejectees(v).end(),
                           rb.Rejectees(v).begin(), rb.Rejectees(v).end()))
        << "rejectee row " << v;
    ASSERT_TRUE(std::equal(ra.Rejectors(v).begin(), ra.Rejectors(v).end(),
                           rb.Rejectors(v).begin(), rb.Rejectors(v).end()))
        << "rejector row " << v;
  }
}

AugmentedGraph RandomAugmentedForSubgraph(NodeId n, EdgeId edges,
                                          std::size_t arcs, util::Rng& rng) {
  GraphBuilder b(n);
  for (EdgeId e = 0; e < edges; ++e) {
    const auto u = static_cast<NodeId>(rng.NextUInt(n));
    auto v = static_cast<NodeId>(rng.NextUInt(n));
    if (u == v) v = (v + 1) % n;
    b.AddFriendship(u, v);
  }
  for (std::size_t i = 0; i < arcs; ++i) {
    const auto u = static_cast<NodeId>(rng.NextUInt(n));
    auto v = static_cast<NodeId>(rng.NextUInt(n));
    if (u == v) v = (v + 1) % n;
    b.AddRejection(u, v);
  }
  return b.BuildAugmented();
}

TEST(SubgraphTest, CsrFilterMatchesBuilderOnRandomMasks) {
  util::Rng rng(99);
  const AugmentedGraph g = RandomAugmentedForSubgraph(60, 200, 150, rng);
  for (int trial = 0; trial < 110; ++trial) {
    std::vector<char> keep(g.NumNodes(), 0);
    const double p = rng.NextDouble();  // densities from ~empty to ~full
    for (auto& c : keep) c = rng.NextBool(p) ? 1 : 0;
    const CompactedGraph csr = InducedSubgraph(g, keep);
    const CompactedGraph ref = BuilderInducedSubgraph(g, keep);
    ExpectSameCompaction(csr, ref);
  }
}

TEST(SubgraphTest, FullMaskIsAnExactIdentityCompaction) {
  util::Rng rng(77);
  const AugmentedGraph g = RandomAugmentedForSubgraph(40, 120, 90, rng);
  const CompactedGraph c = InducedSubgraph(g, std::vector<char>(40, 1));
  ASSERT_EQ(c.graph.NumNodes(), g.NumNodes());
  EXPECT_EQ(c.graph, g);  // all three CSRs byte-equal, degree caches too
  std::vector<NodeId> iota(g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); ++v) iota[v] = v;
  EXPECT_EQ(c.parent_id, iota);
}

TEST(SubgraphTest, IsolatedNodeOnlyMaskKeepsNodesAndNoEdges) {
  // Nodes 0/2/5 have no friendships AND no rejection arcs; a mask selecting
  // only them must produce an edgeless graph in all three CSRs while still
  // materializing every kept node.
  GraphBuilder b(6);
  b.AddFriendship(1, 3);
  b.AddFriendship(3, 4);
  b.AddRejection(4, 1);
  const AugmentedGraph g = b.BuildAugmented();
  const std::vector<char> keep = {1, 0, 1, 0, 0, 1};
  const CompactedGraph c = InducedSubgraph(g, keep);
  ASSERT_EQ(c.graph.NumNodes(), 3u);
  EXPECT_EQ(c.parent_id, (std::vector<NodeId>{0, 2, 5}));
  EXPECT_EQ(c.graph.Friendships().NumEdges(), 0u);
  EXPECT_EQ(c.graph.Rejections().NumArcs(), 0u);
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(c.graph.Friendships().Degree(v), 0u);
    EXPECT_EQ(c.graph.Rejections().OutDegree(v), 0u);
    EXPECT_EQ(c.graph.Rejections().InDegree(v), 0u);
  }
  EXPECT_EQ(c.graph.MaxFriendshipDegree(), 0u);
  EXPECT_EQ(c.graph.MaxRejectionDegree(), 0u);
}

TEST(SubgraphTest, RejectionMirrorStaysConsistentUnderCompaction) {
  // The out-CSR and in-CSR are filtered independently; they must remain
  // exact mirrors of each other for every mask.
  util::Rng rng(88);
  const AugmentedGraph g = RandomAugmentedForSubgraph(50, 150, 200, rng);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<char> keep(g.NumNodes(), 0);
    for (auto& c : keep) c = rng.NextBool(rng.NextDouble()) ? 1 : 0;
    const CompactedGraph c = InducedSubgraph(g, keep);
    const auto& rej = c.graph.Rejections();
    std::size_t out_total = 0;
    std::size_t in_total = 0;
    for (NodeId u = 0; u < c.graph.NumNodes(); ++u) {
      out_total += rej.Rejectees(u).size();
      in_total += rej.Rejectors(u).size();
      for (NodeId v : rej.Rejectees(u)) {
        const auto in_row = rej.Rejectors(v);
        EXPECT_TRUE(std::find(in_row.begin(), in_row.end(), u) !=
                    in_row.end())
            << "arc " << u << "->" << v << " missing from the in-CSR";
      }
    }
    EXPECT_EQ(out_total, in_total);
    EXPECT_EQ(out_total, rej.NumArcs());
  }
}

TEST(SubgraphTest, PoolParityOnRandomMasks) {
  util::Rng rng(123);
  const AugmentedGraph g = RandomAugmentedForSubgraph(120, 500, 400, rng);
  util::ThreadPool pool(4);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<char> keep(g.NumNodes(), 0);
    for (auto& c : keep) c = rng.NextBool(0.6) ? 1 : 0;
    const CompactedGraph serial = InducedSubgraph(g, keep, nullptr);
    const CompactedGraph parallel = InducedSubgraph(g, keep, &pool);
    ExpectSameCompaction(serial, parallel);
  }
}

}  // namespace
}  // namespace rejecto::graph
