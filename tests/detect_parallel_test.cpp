// Parallel MAAR sweep: thread count is an execution detail, never an
// algorithmic one — any num_threads must produce bit-identical cuts.
#include <gtest/gtest.h>

#include <memory>

#include "detect/iterative.h"
#include "detect/maar.h"
#include "gen/planted_partition.h"
#include "sim/scenario.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace rejecto::detect {
namespace {

// A planted-partition legit graph with an overlaid friend-spam attack:
// enough structure that the sweep's KL runs do real work across many k.
sim::Scenario PlantedScenario() {
  util::Rng rng(31);
  const auto legit = gen::PlantedPartition({.num_nodes = 600,
                                           .num_communities = 3,
                                           .p_in = 0.05,
                                           .p_out = 0.005},
                                          rng)
                         .graph;
  sim::ScenarioConfig cfg;
  cfg.seed = 23;
  cfg.num_fakes = 120;
  cfg.requests_per_spammer = 15;
  return sim::BuildScenario(legit, cfg);
}

MaarConfig GridConfig() {
  MaarConfig cfg;
  cfg.num_random_inits = 3;  // 4 inits x 11 k values: a real grid
  cfg.seed = 9;
  return cfg;
}

TEST(ParallelMaarTest, ThreadCountNeverChangesTheCut) {
  const auto scenario = PlantedScenario();
  MaarCut reference;
  for (const int threads : {1, 2, 8}) {
    MaarConfig cfg = GridConfig();
    cfg.num_threads = threads;
    MaarSolver solver(scenario.graph, {}, cfg);
    const MaarCut cut = solver.Solve();
    ASSERT_TRUE(cut.valid) << threads << " threads";
    EXPECT_EQ(cut.threads_used, threads);
    if (threads == 1) {
      reference = cut;
      continue;
    }
    EXPECT_EQ(cut.in_u, reference.in_u) << threads << " threads";
    EXPECT_EQ(cut.ratio, reference.ratio) << threads << " threads";
    EXPECT_EQ(cut.k, reference.k) << threads << " threads";
    EXPECT_EQ(cut.kl_runs, reference.kl_runs) << threads << " threads";
    EXPECT_EQ(cut.switches, reference.switches) << threads << " threads";
  }
}

TEST(ParallelMaarTest, ExternalPoolMatchesOwnedPool) {
  const auto scenario = PlantedScenario();
  MaarConfig cfg = GridConfig();
  cfg.num_threads = 3;
  MaarSolver own(scenario.graph, {}, cfg);
  const MaarCut a = own.Solve();

  util::ThreadPool pool(3);
  MaarSolver ext(scenario.graph, {}, cfg);
  const MaarCut b = ext.Solve(&pool);
  EXPECT_EQ(a.in_u, b.in_u);
  EXPECT_EQ(a.ratio, b.ratio);
  EXPECT_EQ(b.threads_used, 3);
}

TEST(ParallelMaarTest, PipelineDeterministicAcrossThreadCounts) {
  const auto scenario = PlantedScenario();
  util::Rng seed_rng(7);
  const auto seeds = scenario.SampleSeeds(20, 6, seed_rng);

  DetectionResult reference;
  for (const int threads : {1, 4}) {
    IterativeConfig cfg;
    cfg.maar = GridConfig();
    cfg.maar.num_threads = threads;
    cfg.target_detections = scenario.num_fakes;
    const auto result =
        DetectFriendSpammers(scenario.graph, seeds, cfg);
    if (threads == 1) {
      reference = result;
      continue;
    }
    EXPECT_EQ(result.detected, reference.detected);
    EXPECT_EQ(result.rounds.size(), reference.rounds.size());
    EXPECT_EQ(result.total_kl_runs, reference.total_kl_runs);
    EXPECT_EQ(result.total_switches, reference.total_switches);
    EXPECT_EQ(result.threads_used, 4);
  }
  EXPECT_GT(reference.total_kl_runs, 0u);
  EXPECT_GE(reference.total_seconds, 0.0);
}

TEST(ParallelMaarTest, WarmStartNeverWorsensTheRatio) {
  const auto scenario = PlantedScenario();
  MaarConfig cold = GridConfig();
  cold.warm_start = false;
  MaarConfig warm = GridConfig();
  warm.warm_start = true;
  const MaarCut a = MaarSolver(scenario.graph, {}, cold).Solve();
  const MaarCut b = MaarSolver(scenario.graph, {}, warm).Solve();
  ASSERT_TRUE(a.valid);
  ASSERT_TRUE(b.valid);
  EXPECT_LE(b.ratio, a.ratio + 1e-12);
  EXPECT_EQ(a.warm_start_runs, 0);
  EXPECT_GT(b.warm_start_runs, 0);
  EXPECT_EQ(b.kl_runs, a.kl_runs + b.warm_start_runs);
}

TEST(ParallelMaarTest, InstrumentationIsCoherent) {
  const auto scenario = PlantedScenario();
  MaarConfig cfg = GridConfig();
  cfg.num_threads = 2;
  const MaarCut cut = MaarSolver(scenario.graph, {}, cfg).Solve();
  ASSERT_TRUE(cut.valid);
  EXPECT_GT(cut.kl_runs, 0);
  EXPECT_GE(cut.kl_runs, cut.warm_start_runs);
  EXPECT_GT(cut.switches, 0u);
  EXPECT_GE(cut.sweep_seconds, 0.0);
  EXPECT_GE(cut.refine_seconds, 0.0);
  EXPECT_GE(cut.total_seconds, cut.sweep_seconds + cut.refine_seconds);
}

TEST(ParallelMaarTest, EffectiveThreadsResolvesAndClamps) {
  EXPECT_GE(EffectiveThreads(0), 1);  // 0 = hardware concurrency
  EXPECT_EQ(EffectiveThreads(1), 1);
  EXPECT_EQ(EffectiveThreads(6), 6);
  EXPECT_EQ(EffectiveThreads(-3), 1);
}

TEST(ParallelMaarTest, GainBoundMaximaMatchBruteForce) {
  // The cached degree maxima GainBound relies on (computed at graph build /
  // compaction) must agree with a direct scan.
  const auto scenario = PlantedScenario();
  const auto& g = scenario.graph;
  std::uint64_t max_f = 0, max_r = 0;
  for (graph::NodeId v = 0; v < g.NumNodes(); ++v) {
    max_f = std::max<std::uint64_t>(max_f, g.Friendships().Degree(v));
    max_r = std::max<std::uint64_t>(
        max_r, static_cast<std::uint64_t>(g.Rejections().InDegree(v) +
                                          g.Rejections().OutDegree(v)));
  }
  EXPECT_EQ(g.MaxFriendshipDegree(), max_f);
  EXPECT_EQ(g.MaxRejectionDegree(), max_r);
  EXPECT_GT(max_r, 0u);  // the scenario actually planted rejections
}

}  // namespace
}  // namespace rejecto::detect
