// RJNET001 codec hardening, mirroring wal_test's corruption model: a saved
// multi-frame message stream is truncated at EVERY byte boundary and
// corrupted at EVERY single byte position, and decode must never crash,
// never hand back a frame that was not encoded, and always report the
// stream offset plus a human-readable reason for the first bad frame.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/frame.h"
#include "util/crc32c.h"

namespace rejecto::net {
namespace {

Message MakeMessage(MsgType type, std::uint64_t id, std::size_t body_bytes) {
  Message m;
  m.type = type;
  m.request_id = id;
  m.body.resize(body_bytes);
  for (std::size_t i = 0; i < body_bytes; ++i) {
    m.body[i] = static_cast<unsigned char>((id * 131 + i * 7) & 0xff);
  }
  return m;
}

// A representative stream: control, fetch, bulk, and empty-body frames.
std::vector<Message> SampleMessages() {
  return {
      MakeMessage(MsgType::kHello, 1, 4),
      MakeMessage(MsgType::kFetchRequest, 2, 57),
      MakeMessage(MsgType::kFetchResponse, 2, 300),
      MakeMessage(MsgType::kBuildShard, 3, 1024),
      MakeMessage(MsgType::kBuildAck, 3, 16),
      MakeMessage(MsgType::kError, 4, 33),
      MakeMessage(MsgType::kShutdown, 5, 0),
  };
}

std::vector<unsigned char> EncodeStream(const std::vector<Message>& msgs) {
  std::vector<unsigned char> bytes;
  for (const Message& m : msgs) EncodeFrame(m, bytes);
  return bytes;
}

void ExpectSameMessage(const Message& got, const Message& want) {
  EXPECT_EQ(got.type, want.type);
  EXPECT_EQ(got.request_id, want.request_id);
  ASSERT_EQ(got.body.size(), want.body.size());
  EXPECT_EQ(got.body, want.body);
}

TEST(FrameCodecTest, RoundTripsAStream) {
  const auto msgs = SampleMessages();
  const auto bytes = EncodeStream(msgs);
  const StreamDecodeResult r = DecodeAll(bytes);
  EXPECT_TRUE(r.clean);
  EXPECT_TRUE(r.reason.empty());
  ASSERT_EQ(r.frames.size(), msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    ExpectSameMessage(r.frames[i], msgs[i]);
  }
}

TEST(FrameCodecTest, EncodeRejectsOversizedBody) {
  Message m;
  m.type = MsgType::kFetchResponse;
  // Don't actually allocate 256 MiB: resize without touching is enough for
  // the size check, which runs before any copying.
  m.body.resize(static_cast<std::size_t>(kMaxFramePayload) + 1);
  std::vector<unsigned char> out;
  EXPECT_THROW(EncodeFrame(m, out), std::invalid_argument);
}

// ISSUE satellite: truncate the saved stream at every byte offset. The
// decoder must return exactly the intact frame prefix, flag the stream
// unclean (unless the cut lands on a frame boundary), and point at the
// offset where the torn frame starts.
TEST(FrameCodecTest, EveryByteTruncationSweep) {
  const auto msgs = SampleMessages();
  const auto bytes = EncodeStream(msgs);

  // Frame start offsets, for checking reported intact prefixes.
  std::vector<std::size_t> starts;
  {
    std::size_t off = 0;
    for (const Message& m : msgs) {
      starts.push_back(off);
      std::vector<unsigned char> one;
      off += EncodeFrame(m, one);
    }
    starts.push_back(off);
    ASSERT_EQ(off, bytes.size());
  }

  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const unsigned char> prefix(bytes.data(), cut);
    StreamDecodeResult r;
    ASSERT_NO_THROW(r = DecodeAll(prefix)) << "cut at " << cut;

    // How many whole frames fit in the prefix?
    std::size_t whole = 0;
    while (whole + 1 < starts.size() && starts[whole + 1] <= cut) ++whole;
    ASSERT_EQ(r.frames.size(), whole) << "cut at " << cut;
    for (std::size_t i = 0; i < whole; ++i) {
      ExpectSameMessage(r.frames[i], msgs[i]);
    }

    if (cut == starts[whole]) {
      // The cut fell exactly between frames: a clean (shorter) stream.
      EXPECT_TRUE(r.clean) << "cut at " << cut;
    } else {
      EXPECT_FALSE(r.clean) << "cut at " << cut;
      EXPECT_FALSE(r.reason.empty()) << "cut at " << cut;
      EXPECT_EQ(r.error_offset, starts[whole])
          << "cut at " << cut << ": must report the torn frame's start";
    }
  }
}

// ISSUE satellite: flip every single byte of the stream (one at a time).
// The magic check, length bound, and payload CRC must close every hole: no
// flip may yield a clean decode of all frames, none may crash, and the
// reported error offset always lands on a frame boundary at or before the
// flipped byte.
TEST(FrameCodecTest, SingleByteCorruptionSweep) {
  const auto msgs = SampleMessages();
  const auto bytes = EncodeStream(msgs);

  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    for (const unsigned char flip : {0x01, 0x80}) {
      std::vector<unsigned char> mutated = bytes;
      mutated[pos] ^= flip;
      StreamDecodeResult r;
      ASSERT_NO_THROW(r = DecodeAll(mutated)) << "flip at " << pos;

      EXPECT_FALSE(r.clean) << "flip " << int(flip) << " at " << pos
                            << " decoded as a fully clean stream";
      EXPECT_FALSE(r.reason.empty()) << "flip at " << pos;
      EXPECT_LE(r.error_offset, pos) << "flip at " << pos;
      // Every intact frame handed back must be one that was encoded, at
      // its own position — corruption can only shorten the prefix.
      ASSERT_LT(r.frames.size(), msgs.size() + 1);
      for (std::size_t i = 0; i < r.frames.size(); ++i) {
        EXPECT_EQ(r.frames[i].request_id, msgs[i].request_id)
            << "flip at " << pos;
      }
    }
  }
}

TEST(FrameDecoderTest, ByteAtATimeFeedMatchesOneShot) {
  const auto msgs = SampleMessages();
  const auto bytes = EncodeStream(msgs);
  FrameDecoder dec;
  std::vector<Message> got;
  for (unsigned char b : bytes) {
    dec.Feed(&b, 1);
    for (;;) {
      DecodeResult r = dec.Next();
      if (r.status != DecodeStatus::kFrame) {
        EXPECT_EQ(r.status, DecodeStatus::kNeedMore);
        break;
      }
      got.push_back(std::move(r.message));
    }
  }
  ASSERT_EQ(got.size(), msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    ExpectSameMessage(got[i], msgs[i]);
  }
  EXPECT_EQ(dec.BufferedBytes(), 0u);
  EXPECT_EQ(dec.StreamOffset(), bytes.size());
}

TEST(FrameDecoderTest, PoisonIsStickyUntilReset) {
  const auto msgs = SampleMessages();
  auto bytes = EncodeStream(msgs);
  bytes[kFrameHeaderBytes + 3] ^= 0xff;  // corrupt the first payload

  FrameDecoder dec;
  dec.Feed(bytes.data(), bytes.size());
  DecodeResult r = dec.Next();
  EXPECT_EQ(r.status, DecodeStatus::kCorrupt);
  EXPECT_EQ(r.offset, 0u);
  EXPECT_FALSE(r.reason.empty());
  EXPECT_TRUE(dec.Poisoned());

  // Still poisoned on the next call, and feeding good bytes doesn't help:
  // a framed stream can't resync after a bad frame.
  r = dec.Next();
  EXPECT_EQ(r.status, DecodeStatus::kCorrupt);
  std::vector<unsigned char> good;
  EncodeFrame(msgs[0], good);
  dec.Feed(good.data(), good.size());
  EXPECT_EQ(dec.Next().status, DecodeStatus::kCorrupt);

  // Reset models the reconnect: the decoder accepts frames again.
  dec.Reset();
  EXPECT_FALSE(dec.Poisoned());
  dec.Feed(good.data(), good.size());
  r = dec.Next();
  ASSERT_EQ(r.status, DecodeStatus::kFrame);
  ExpectSameMessage(r.message, msgs[0]);
}

TEST(FrameDecoderTest, ReportsReasonsByCorruptionSite) {
  const auto probe = [](auto mutate) {
    std::vector<unsigned char> bytes;
    EncodeFrame(MakeMessage(MsgType::kFetchRequest, 9, 32), bytes);
    mutate(bytes);
    return DecodeAll(bytes);
  };

  const auto bad_magic =
      probe([](std::vector<unsigned char>& b) { b[0] = 'X'; });
  EXPECT_FALSE(bad_magic.clean);
  EXPECT_NE(bad_magic.reason.find("magic"), std::string::npos)
      << bad_magic.reason;

  const auto oversized = probe([](std::vector<unsigned char>& b) {
    b[8] = 0xff; b[9] = 0xff; b[10] = 0xff; b[11] = 0x7f;  // len field
  });
  EXPECT_FALSE(oversized.clean);
  EXPECT_NE(oversized.reason.find("limit"), std::string::npos)
      << oversized.reason;

  const auto undersized = probe([](std::vector<unsigned char>& b) {
    b[8] = 0x03; b[9] = 0x00; b[10] = 0x00; b[11] = 0x00;
  });
  EXPECT_FALSE(undersized.clean);
  EXPECT_NE(undersized.reason.find("9-byte"), std::string::npos)
      << undersized.reason;

  const auto bad_crc = probe(
      [](std::vector<unsigned char>& b) { b[kFrameHeaderBytes + 2] ^= 1; });
  EXPECT_FALSE(bad_crc.clean);
  EXPECT_NE(bad_crc.reason.find("CRC"), std::string::npos) << bad_crc.reason;

  // A flipped type byte fails the CRC first (the payload is covered); an
  // unknown type behind a VALID crc needs a hand-built frame.
  std::vector<unsigned char> raw;
  {
    Message m = MakeMessage(MsgType::kHello, 1, 0);
    EncodeFrame(m, raw);
    raw[kFrameHeaderBytes] = 0x99;  // type byte
    // Recompute the CRC so only the type check can object.
    const std::uint32_t crc = util::Crc32c(raw.data() + kFrameHeaderBytes,
                                           raw.size() - kFrameHeaderBytes);
    for (int i = 0; i < 4; ++i) {
      raw[12 + i] = static_cast<unsigned char>((crc >> (8 * i)) & 0xff);
    }
  }
  const auto unknown_type = DecodeAll(raw);
  EXPECT_FALSE(unknown_type.clean);
  EXPECT_NE(unknown_type.reason.find("message type"), std::string::npos)
      << unknown_type.reason;
}

TEST(WireReaderTest, BoundsCheckedReads) {
  WireWriter w;
  w.PutU8(7);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutString("rejections");

  WireReader r(w.buf.data(), w.buf.size());
  EXPECT_EQ(r.GetU8(), 7);
  EXPECT_EQ(r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.GetString(), "rejections");
  EXPECT_EQ(r.Remaining(), 0u);
  EXPECT_THROW(r.GetU8(), std::runtime_error);

  // A string length pointing past the end must throw, not read garbage.
  WireWriter bad;
  bad.PutU32(1000);
  bad.PutU8('x');
  WireReader r2(bad.buf.data(), bad.buf.size());
  EXPECT_THROW(r2.GetString(), std::runtime_error);
}

}  // namespace
}  // namespace rejecto::net
