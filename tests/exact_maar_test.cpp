#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "detect/exact_maar.h"
#include "detect/maar.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "util/rng.h"

namespace rejecto::detect {
namespace {

// Reference: plain exhaustive enumeration without pruning.
double BruteForceBestRatio(const graph::AugmentedGraph& g,
                           graph::NodeId min_region, double max_fraction) {
  const graph::NodeId n = g.NumNodes();
  double best = std::numeric_limits<double>::infinity();
  const auto max_u =
      static_cast<graph::NodeId>(max_fraction * static_cast<double>(n));
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<char> in_u(n, 0);
    graph::NodeId size_u = 0;
    for (graph::NodeId v = 0; v < n; ++v) {
      in_u[v] = (mask >> v) & 1;
      size_u += in_u[v];
    }
    if (size_u < min_region || n - size_u < min_region || size_u > max_u) {
      continue;
    }
    const auto q = g.ComputeCut(in_u);
    if (q.rejections_into_u == 0) continue;
    best = std::min(best, q.FriendsToRejectionsRatio());
  }
  return best;
}

graph::AugmentedGraph RandomAugmented(graph::NodeId n, util::Rng& rng) {
  graph::GraphBuilder b(n);
  const auto social = gen::ErdosRenyi(
      {.num_nodes = n, .num_edges = static_cast<graph::EdgeId>(n) * 2}, rng);
  for (const auto& e : social.Edges()) b.AddFriendship(e.u, e.v);
  for (graph::NodeId i = 0; i < n + n / 2; ++i) {
    const auto u = static_cast<graph::NodeId>(rng.NextUInt(n));
    const auto v = static_cast<graph::NodeId>(rng.NextUInt(n));
    if (u != v) b.AddRejection(u, v);
  }
  return b.BuildAugmented();
}

TEST(ExactMaarTest, OversizedGraphThrows) {
  util::Rng rng(1);
  const auto g = RandomAugmented(16, rng);
  ExactMaarConfig cfg;
  cfg.max_nodes = 10;
  EXPECT_THROW(SolveMaarExact(g, cfg), std::invalid_argument);
}

TEST(ExactMaarTest, NoRejectionsInvalid) {
  graph::GraphBuilder b(6);
  for (graph::NodeId u = 0; u < 6; ++u) {
    for (graph::NodeId v = u + 1; v < 6; ++v) b.AddFriendship(u, v);
  }
  EXPECT_FALSE(SolveMaarExact(b.BuildAugmented(), {}).valid);
}

TEST(ExactMaarTest, PlantedCutFoundExactly) {
  // Two cliques, 1 attack edge, 4 rejections into the planted side.
  graph::GraphBuilder b(12);
  for (graph::NodeId u = 0; u < 7; ++u) {
    for (graph::NodeId v = u + 1; v < 7; ++v) b.AddFriendship(u, v);
  }
  for (graph::NodeId u = 7; u < 12; ++u) {
    for (graph::NodeId v = u + 1; v < 12; ++v) b.AddFriendship(u, v);
  }
  b.AddFriendship(0, 7);
  for (graph::NodeId f = 7; f < 11; ++f) b.AddRejection(1, f);
  const auto cut = SolveMaarExact(b.BuildAugmented(), {});
  ASSERT_TRUE(cut.valid);
  EXPECT_NEAR(cut.ratio, 0.25, 1e-12);
  for (graph::NodeId v = 0; v < 7; ++v) EXPECT_EQ(cut.in_u[v], 0);
  for (graph::NodeId v = 7; v < 12; ++v) EXPECT_EQ(cut.in_u[v], 1);
}

class ExactVsBruteForceTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ExactVsBruteForceTest, PrunedSearchMatchesExhaustive) {
  util::Rng rng(GetParam() * 31 + 7);
  const graph::NodeId n = 11 + static_cast<graph::NodeId>(rng.NextUInt(4));
  const auto g = RandomAugmented(n, rng);
  ExactMaarConfig cfg;
  cfg.min_region_size = 2;
  cfg.max_region_fraction = 0.75;
  const auto cut = SolveMaarExact(g, cfg);
  const double reference = BruteForceBestRatio(g, 2, 0.75);
  if (std::isinf(reference)) {
    EXPECT_FALSE(cut.valid);
  } else {
    ASSERT_TRUE(cut.valid);
    EXPECT_NEAR(cut.ratio, reference, 1e-12);
    // The reported mask must reproduce the reported ratio.
    EXPECT_NEAR(cut.cut.FriendsToRejectionsRatio(), cut.ratio, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, ExactVsBruteForceTest,
                         ::testing::Range<std::uint64_t>(0, 10));

class HeuristicQualityTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(HeuristicQualityTest, KlSweepWithinSmallFactorOfExact) {
  // The quality claim behind §IV: the extended-KL sweep lands close to the
  // exact MAAR optimum (here within 1.5x on random 14-node graphs; it is
  // usually exact).
  util::Rng rng(GetParam() * 97 + 11);
  const auto g = RandomAugmented(14, rng);
  ExactMaarConfig ecfg;
  ecfg.min_region_size = 2;
  ecfg.max_region_fraction = 0.75;
  const auto exact = SolveMaarExact(g, ecfg);
  if (!exact.valid) return;

  MaarConfig mcfg;
  mcfg.min_region_size = 2;
  mcfg.max_region_fraction = 0.75;
  mcfg.num_random_inits = 3;
  mcfg.seed = GetParam();
  MaarSolver solver(g, {}, mcfg);
  const auto heuristic = solver.Solve();
  ASSERT_TRUE(heuristic.valid);
  EXPECT_GE(heuristic.ratio, exact.ratio - 1e-12);  // exact is a lower bound
  EXPECT_LE(heuristic.ratio, exact.ratio * 1.5 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, HeuristicQualityTest,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(ExactMaarTest, PruningExploresFewerNodesThanExhaustive) {
  util::Rng rng(123);
  const auto g = RandomAugmented(14, rng);
  const auto cut = SolveMaarExact(g, {});
  // Full binary tree over 14 nodes has 2^15 - 1 nodes; pruning should do
  // noticeably better on a graph with rejections concentrated up front.
  EXPECT_LT(cut.nodes_explored, (1ull << 15) - 1);
}

}  // namespace
}  // namespace rejecto::detect
