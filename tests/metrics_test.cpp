#include <gtest/gtest.h>

#include <vector>

#include "metrics/classification.h"
#include "metrics/ranking.h"

namespace rejecto::metrics {
namespace {

// ---------- classification ----------

TEST(ConfusionTest, PerfectDetection) {
  std::vector<char> truth = {0, 0, 1, 1};
  std::vector<graph::NodeId> declared = {2, 3};
  const auto c = EvaluateDetection(truth, declared);
  EXPECT_EQ(c.true_positives, 2u);
  EXPECT_EQ(c.false_positives, 0u);
  EXPECT_EQ(c.true_negatives, 2u);
  EXPECT_EQ(c.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(c.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(c.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(c.F1(), 1.0);
  EXPECT_DOUBLE_EQ(c.Accuracy(), 1.0);
}

TEST(ConfusionTest, PrecisionEqualsRecallWhenDeclaredEqualsFakes) {
  // The paper's metric setup (§VI-A): declare exactly as many as injected.
  std::vector<char> truth = {1, 1, 1, 0, 0, 0};
  std::vector<graph::NodeId> declared = {0, 1, 3};  // one mistake
  const auto c = EvaluateDetection(truth, declared);
  EXPECT_DOUBLE_EQ(c.Precision(), c.Recall());
  EXPECT_NEAR(c.Precision(), 2.0 / 3.0, 1e-12);
}

TEST(ConfusionTest, EmptyDeclaredZeroPrecision) {
  std::vector<char> truth = {1, 0};
  const auto c = EvaluateDetection(truth, {});
  EXPECT_DOUBLE_EQ(c.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.F1(), 0.0);
}

TEST(ConfusionTest, DuplicatesCountOnce) {
  std::vector<char> truth = {1, 0};
  std::vector<graph::NodeId> declared = {0, 0, 0};
  const auto c = EvaluateDetection(truth, declared);
  EXPECT_EQ(c.true_positives, 1u);
  EXPECT_EQ(c.false_positives, 0u);
}

TEST(ConfusionTest, OutOfRangeThrows) {
  std::vector<char> truth = {1, 0};
  std::vector<graph::NodeId> declared = {5};
  EXPECT_THROW(EvaluateDetection(truth, declared), std::out_of_range);
}

// ---------- AUC ----------

TEST(AucTest, PerfectSeparation) {
  // Fakes score 0.1/0.2, legit 0.8/0.9 -> fakes at bottom -> AUC 1.
  std::vector<double> scores = {0.1, 0.9, 0.2, 0.8};
  std::vector<char> fake = {1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(AreaUnderRoc(scores, fake), 1.0);
}

TEST(AucTest, InvertedSeparationIsZero) {
  std::vector<double> scores = {0.9, 0.1, 0.8, 0.2};
  std::vector<char> fake = {1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(AreaUnderRoc(scores, fake), 0.0);
}

TEST(AucTest, AllTiedIsHalf) {
  std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  std::vector<char> fake = {1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(AreaUnderRoc(scores, fake), 0.5);
}

TEST(AucTest, PartialOverlapHandValue) {
  // fakes: 0.1, 0.6 ; legit: 0.4, 0.8
  // pairs (fake < legit): (0.1,0.4) yes, (0.1,0.8) yes, (0.6,0.8) yes,
  // (0.6,0.4) no -> AUC = 3/4.
  std::vector<double> scores = {0.1, 0.4, 0.6, 0.8};
  std::vector<char> fake = {1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(AreaUnderRoc(scores, fake), 0.75);
}

TEST(AucTest, TieBetweenClassesCountsHalf) {
  std::vector<double> scores = {0.5, 0.5};
  std::vector<char> fake = {1, 0};
  EXPECT_DOUBLE_EQ(AreaUnderRoc(scores, fake), 0.5);
}

TEST(AucTest, MaskExcludesNodes) {
  // Node 0 (a terribly-ranked legit) is masked out; remaining is perfect.
  std::vector<double> scores = {0.0, 0.2, 0.9};
  std::vector<char> fake = {0, 1, 0};
  std::vector<char> mask = {0, 1, 1};
  EXPECT_DOUBLE_EQ(AreaUnderRoc(scores, fake, mask), 1.0);
  EXPECT_LT(AreaUnderRoc(scores, fake), 1.0);
}

TEST(AucTest, SizeMismatchThrows) {
  std::vector<double> scores = {0.1};
  std::vector<char> fake = {1, 0};
  EXPECT_THROW(AreaUnderRoc(scores, fake), std::invalid_argument);
}

TEST(AucTest, DegenerateSingleClassIsOne) {
  std::vector<double> scores = {0.1, 0.2};
  std::vector<char> fake = {1, 1};
  EXPECT_DOUBLE_EQ(AreaUnderRoc(scores, fake), 1.0);
}

// ---------- ROC curve ----------

TEST(RocCurveTest, EndpointsAndMonotonicity) {
  std::vector<double> scores = {0.1, 0.9, 0.4, 0.3, 0.7};
  std::vector<char> fake = {1, 0, 1, 0, 0};
  const auto curve = RocCurve(scores, fake);
  ASSERT_GE(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.front().false_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().true_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().false_positive_rate, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().true_positive_rate, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].false_positive_rate, curve[i - 1].false_positive_rate);
    EXPECT_GE(curve[i].true_positive_rate, curve[i - 1].true_positive_rate);
  }
}

TEST(RocCurveTest, PerfectClassifierHitsCorner) {
  std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  std::vector<char> fake = {1, 1, 0, 0};
  const auto curve = RocCurve(scores, fake);
  bool corner = false;
  for (const auto& p : curve) {
    if (p.false_positive_rate == 0.0 && p.true_positive_rate == 1.0) {
      corner = true;
    }
  }
  EXPECT_TRUE(corner);
}

// ---------- LowestScored ----------

TEST(LowestScoredTest, ReturnsKSmallest) {
  std::vector<double> scores = {0.5, 0.1, 0.9, 0.3};
  const auto low = LowestScored(scores, 2);
  ASSERT_EQ(low.size(), 2u);
  EXPECT_EQ(low[0], 1u);
  EXPECT_EQ(low[1], 3u);
}

TEST(LowestScoredTest, TiesBrokenById) {
  std::vector<double> scores = {0.5, 0.5, 0.5};
  const auto low = LowestScored(scores, 2);
  EXPECT_EQ(low[0], 0u);
  EXPECT_EQ(low[1], 1u);
}

TEST(LowestScoredTest, KLargerThanSizeClamps) {
  std::vector<double> scores = {0.2, 0.1};
  EXPECT_EQ(LowestScored(scores, 10).size(), 2u);
}

TEST(LowestScoredTest, ZeroKEmpty) {
  std::vector<double> scores = {0.2};
  EXPECT_TRUE(LowestScored(scores, 0).empty());
}

}  // namespace
}  // namespace rejecto::metrics
