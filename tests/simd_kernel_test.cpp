// Property suite pinning scalar-vs-AVX2 bit-identity for every vectorized
// detection kernel (util/simd.h and its call sites):
//
//   * the raw primitives (CountZeroAt, FilterMapRow, CopyU32),
//   * AugmentedGraph::ComputeCut (cut counting),
//   * Partition::InitAggregates + SwitchFused (the fused switch kernel),
//   * graph::InducedSubgraph (mask filter / compaction),
//   * stream::DeltaGraph::Compact (two-pointer merge fast paths),
//
// each across >= 200 random graphs/masks and at 1, 2, and 8 threads for the
// pool-parallel kernels. On hosts without AVX2 SetModeForTest(kAvx2) keeps
// scalar, so the suite degenerates to scalar==scalar and still runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "detect/bucket_list.h"
#include "detect/extended_kl.h"
#include "detect/partition.h"
#include "graph/augmented_graph.h"
#include "graph/builder.h"
#include "graph/subgraph.h"
#include "stream/delta_graph.h"
#include "stream/mutation_log.h"
#include "util/buffer.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace rejecto {
namespace {

namespace simd = util::simd;
using simd::SimdMode;

constexpr int kTrials = 220;

// Runs `body` under the given mode, restoring the ambient mode afterwards.
template <typename Fn>
auto WithMode(SimdMode mode, Fn&& body) {
  const SimdMode prev = simd::ActiveMode();
  simd::SetModeForTest(mode);
  auto result = body();
  simd::SetModeForTest(prev);
  return result;
}

graph::AugmentedGraph RandomGraph(util::Rng& rng, graph::NodeId max_nodes) {
  const graph::NodeId n = 1 + rng.NextUInt(max_nodes);
  graph::GraphBuilder builder(n);
  const std::size_t edges = rng.NextUInt(4 * n + 1);
  for (std::size_t i = 0; i < edges; ++i) {
    const auto u = static_cast<graph::NodeId>(rng.NextUInt(n));
    const auto v = static_cast<graph::NodeId>(rng.NextUInt(n));
    if (u != v) builder.AddFriendship(u, v);
  }
  const std::size_t arcs = rng.NextUInt(3 * n + 1);
  for (std::size_t i = 0; i < arcs; ++i) {
    const auto u = static_cast<graph::NodeId>(rng.NextUInt(n));
    const auto v = static_cast<graph::NodeId>(rng.NextUInt(n));
    if (u != v) builder.AddRejection(u, v);
  }
  return builder.BuildAugmented();
}

std::vector<char> RandomMask(util::Rng& rng, graph::NodeId n) {
  std::vector<char> mask(n, 0);
  const double p = rng.NextDouble(0.0, 1.0);
  for (auto& c : mask) {
    // Arbitrary non-zero bytes, not just 1: the kernels promise the
    // documented "non-zero means in U" semantics for any caller mask.
    c = rng.NextBool(p) ? static_cast<char>(1 + rng.NextUInt(127)) : 0;
  }
  return mask;
}

TEST(SimdPrimitiveTest, CountZeroAtMatchesScalar) {
  util::Rng rng(401);
  for (int trial = 0; trial < kTrials; ++trial) {
    const std::size_t universe = 1 + rng.NextUInt(500);
    util::AlignedVector<unsigned char> mask(universe);
    for (auto& b : mask) b = rng.NextBool(0.5) ? 1 : 0;
    util::AlignedVector<std::uint32_t> idx(rng.NextUInt(300));
    for (auto& i : idx) i = rng.NextUInt(static_cast<std::uint32_t>(universe));

    const auto scalar = WithMode(SimdMode::kScalar, [&] {
      return simd::CountZeroAt(mask.data(), idx.data(), idx.size());
    });
    const auto vec = WithMode(SimdMode::kAvx2, [&] {
      return simd::CountZeroAt(mask.data(), idx.data(), idx.size());
    });
    ASSERT_EQ(scalar, vec) << "trial " << trial;
  }
}

TEST(SimdPrimitiveTest, FilterMapRowMatchesScalar) {
  util::Rng rng(402);
  for (int trial = 0; trial < kTrials; ++trial) {
    const std::size_t universe = 1 + rng.NextUInt(500);
    util::AlignedVector<unsigned char> keep(universe);
    for (auto& b : keep) b = rng.NextBool(0.6) ? 1 : 0;
    std::vector<std::uint32_t> map(universe);
    for (auto& m : map) m = rng.NextUInt(1u << 20);
    util::AlignedVector<std::uint32_t> row(rng.NextUInt(300));
    for (auto& v : row) v = rng.NextUInt(static_cast<std::uint32_t>(universe));

    std::vector<std::uint32_t> out_s(row.size() + 8, 0xDEADBEEF);
    std::vector<std::uint32_t> out_v(row.size() + 8, 0xDEADBEEF);
    const auto n_s = WithMode(SimdMode::kScalar, [&] {
      return simd::FilterMapRow(keep.data(), map.data(), row.data(),
                                row.size(), out_s.data());
    });
    const auto n_v = WithMode(SimdMode::kAvx2, [&] {
      return simd::FilterMapRow(keep.data(), map.data(), row.data(),
                                row.size(), out_v.data());
    });
    ASSERT_EQ(n_s, n_v) << "trial " << trial;
    for (std::size_t i = 0; i < n_s; ++i) {
      ASSERT_EQ(out_s[i], out_v[i]) << "trial " << trial << " slot " << i;
    }
    // Nothing written past the returned count (masked stores): the
    // sentinel bytes after n survive in both modes.
    for (std::size_t i = n_s; i < out_v.size(); ++i) {
      ASSERT_EQ(out_v[i], 0xDEADBEEF) << "trial " << trial << " slot " << i;
    }
  }
}

TEST(SimdPrimitiveTest, CopyU32MatchesScalar) {
  util::Rng rng(403);
  for (int trial = 0; trial < kTrials; ++trial) {
    util::AlignedVector<std::uint32_t> src(rng.NextUInt(400));
    for (auto& v : src) v = rng.NextUInt(~0u);
    std::vector<std::uint32_t> dst_s(src.size(), 0);
    std::vector<std::uint32_t> dst_v(src.size(), 0);
    WithMode(SimdMode::kScalar, [&] {
      simd::CopyU32(src.data(), src.size(), dst_s.data());
      return 0;
    });
    WithMode(SimdMode::kAvx2, [&] {
      simd::CopyU32(src.data(), src.size(), dst_v.data());
      return 0;
    });
    ASSERT_EQ(dst_s, dst_v) << "trial " << trial;
  }
}

TEST(SimdKernelTest, ComputeCutBitIdentical) {
  util::Rng rng(404);
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto g = RandomGraph(rng, 120);
    const auto mask = RandomMask(rng, g.NumNodes());
    const auto cut_s =
        WithMode(SimdMode::kScalar, [&] { return g.ComputeCut(mask); });
    const auto cut_v =
        WithMode(SimdMode::kAvx2, [&] { return g.ComputeCut(mask); });
    ASSERT_EQ(cut_s.cross_friendships, cut_v.cross_friendships) << trial;
    ASSERT_EQ(cut_s.rejections_into_u, cut_v.rejections_into_u) << trial;
    ASSERT_EQ(cut_s.rejections_from_u, cut_v.rejections_from_u) << trial;
  }
}

// One fused switch sequence; returns the final mask plus exact totals so
// runs under different modes can be compared bit-for-bit.
struct SwitchOutcome {
  std::vector<char> mask;
  graph::CutQuantities cut;
  double objective = 0.0;

  bool operator==(const SwitchOutcome& o) const {
    return mask == o.mask &&
           cut.cross_friendships == o.cut.cross_friendships &&
           cut.rejections_into_u == o.cut.rejections_into_u &&
           cut.rejections_from_u == o.cut.rejections_from_u &&
           objective == o.objective;  // bit-exact: integers through doubles
  }
};

SwitchOutcome RunFusedSequence(const graph::AugmentedGraph& g,
                               const std::vector<char>& init,
                               const std::vector<graph::NodeId>& seq,
                               double k) {
  const graph::NodeId n = g.NumNodes();
  const double gain_bound =
      std::max(1.0, static_cast<double>(g.MaxFriendshipDegree()) +
                        k * static_cast<double>(g.MaxRejectionDegree()));
  detect::Partition p(g, init);
  detect::BucketList bl(n, gain_bound, 64.0);
  for (graph::NodeId v = 0; v < n; ++v) {
    bl.Insert(v, -p.DeltaObjective(v, k));
  }
  util::AlignedVector<graph::NodeId> touched;
  for (graph::NodeId v : seq) p.SwitchFused(v, k, bl, touched);
  SwitchOutcome out;
  out.mask = p.Mask();
  out.cut = p.Quantities();
  out.objective = p.Objective(k);
  return out;
}

TEST(SimdKernelTest, FusedSwitchBitIdentical) {
  util::Rng rng(405);
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto g = RandomGraph(rng, 100);
    const auto init = RandomMask(rng, g.NumNodes());
    const double k = rng.NextDouble(0.1, 3.0);
    std::vector<graph::NodeId> seq(rng.NextUInt(120));
    for (auto& v : seq) {
      v = static_cast<graph::NodeId>(rng.NextUInt(g.NumNodes()));
    }
    const auto out_s = WithMode(
        SimdMode::kScalar, [&] { return RunFusedSequence(g, init, seq, k); });
    const auto out_v = WithMode(
        SimdMode::kAvx2, [&] { return RunFusedSequence(g, init, seq, k); });
    ASSERT_TRUE(out_s == out_v) << "trial " << trial;
    // Both must agree with the exact O(E+R) oracle on the final mask.
    const auto oracle = WithMode(
        SimdMode::kScalar, [&] { return g.ComputeCut(out_s.mask); });
    ASSERT_EQ(out_s.cut.cross_friendships, oracle.cross_friendships) << trial;
    ASSERT_EQ(out_s.cut.rejections_into_u, oracle.rejections_into_u) << trial;
  }
}

TEST(SimdKernelTest, ExtendedKlBitIdenticalAcrossModes) {
  util::Rng rng(406);
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto g = RandomGraph(rng, 80);
    const auto init = RandomMask(rng, g.NumNodes());
    detect::KlConfig cfg;
    cfg.k = rng.NextDouble(0.25, 2.0);
    const auto r_s = WithMode(SimdMode::kScalar, [&] {
      return detect::ExtendedKl(g, init, {}, cfg);
    });
    const auto r_v = WithMode(SimdMode::kAvx2, [&] {
      return detect::ExtendedKl(g, init, {}, cfg);
    });
    ASSERT_EQ(r_s.in_u, r_v.in_u) << "trial " << trial;
    ASSERT_EQ(r_s.stats.passes, r_v.stats.passes) << "trial " << trial;
    ASSERT_EQ(r_s.stats.final_objective, r_v.stats.final_objective) << trial;
  }
}

TEST(SimdKernelTest, InducedSubgraphBitIdenticalAcrossModesAndThreads) {
  util::Rng rng(407);
  util::ThreadPool pool2(2);
  util::ThreadPool pool8(8);
  std::vector<util::ThreadPool*> pools = {nullptr, &pool2, &pool8};
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto g = RandomGraph(rng, 120);
    std::vector<char> keep = RandomMask(rng, g.NumNodes());
    const auto ref = WithMode(SimdMode::kScalar, [&] {
      return graph::InducedSubgraph(g, keep, nullptr);
    });
    for (util::ThreadPool* pool : pools) {
      for (SimdMode mode : {SimdMode::kScalar, SimdMode::kAvx2}) {
        const auto got = WithMode(
            mode, [&] { return graph::InducedSubgraph(g, keep, pool); });
        ASSERT_EQ(got.parent_id, ref.parent_id) << "trial " << trial;
        ASSERT_TRUE(got.graph == ref.graph)
            << "trial " << trial << " mode=" << simd::ModeName(mode);
      }
    }
  }
}

TEST(SimdKernelTest, DeltaCompactBitIdenticalAcrossModesAndThreads) {
  util::Rng rng(408);
  util::ThreadPool pool2(2);
  util::ThreadPool pool8(8);
  std::vector<util::ThreadPool*> pools = {nullptr, &pool2, &pool8};
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto g = RandomGraph(rng, 100);
    const graph::NodeId n = g.NumNodes();
    // Random event tape: adds, rejections, and node removals, so compaction
    // exercises copy-through rows, added-only rows, and true merges.
    std::vector<stream::Event> events(rng.NextUInt(120));
    for (auto& e : events) {
      const auto kind = rng.NextUInt(4);
      e.u = static_cast<graph::NodeId>(rng.NextUInt(n));
      e.v = static_cast<graph::NodeId>(rng.NextUInt(n));
      if (kind == 3) {
        e.type = stream::EventType::kRemoveNode;
      } else if (kind == 2) {
        e.type = stream::EventType::kReject;
      } else {
        e.type = stream::EventType::kAddFriend;
      }
      if (e.u == e.v) e.type = stream::EventType::kRemoveNode;
    }
    stream::DeltaConfig dcfg;
    dcfg.compact_fraction = -1.0;

    std::optional<graph::AugmentedGraph> ref;
    for (util::ThreadPool* pool : pools) {
      for (SimdMode mode : {SimdMode::kScalar, SimdMode::kAvx2}) {
        auto compacted = WithMode(mode, [&] {
          stream::DeltaGraph d(g, dcfg);
          d.SetPool(pool);
          d.ApplyAll(events);
          d.Compact();
          return d.Graph();
        });
        if (!ref) {
          ref = std::move(compacted);
        } else {
          ASSERT_TRUE(compacted == *ref)
              << "trial " << trial << " mode=" << simd::ModeName(mode);
        }
      }
    }
  }
}

}  // namespace
}  // namespace rejecto
