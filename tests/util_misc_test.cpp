#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "util/flags.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace rejecto::util {
namespace {

// ---------- ThreadPool ----------

TEST(ThreadPoolTest, ZeroThreadsThrows) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPoolTest, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 42; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ManyTasksAllExecute) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i) {
    futs.push_back(pool.Submit([&count] { ++count; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(10,
                                [](std::size_t i) {
                                  if (i == 5) throw std::runtime_error("x");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.ParallelFor(3, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 1; });
  EXPECT_EQ(f.get(), 1);
  pool.Shutdown();
  pool.Shutdown();  // idempotent
  EXPECT_THROW(pool.Submit([] { return 2; }), std::runtime_error);
  EXPECT_THROW(pool.ParallelFor(4, [](std::size_t) {}), std::runtime_error);
  pool.ParallelFor(0, [](std::size_t) {});  // n == 0 stays a no-op
}

TEST(ThreadPoolTest, ParallelForPropagatesLowestBlockException) {
  // With 2 workers and 10 indices, blocks are [0,5) and [5,10); both throw,
  // and the block-0 exception must win regardless of worker scheduling.
  ThreadPool pool(2);
  for (int attempt = 0; attempt < 20; ++attempt) {
    try {
      pool.ParallelFor(10, [](std::size_t i) {
        if (i == 0) throw std::runtime_error("first-block");
        if (i == 5) throw std::runtime_error("second-block");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "first-block");
    }
  }
}

TEST(ThreadPoolTest, HardwareThreadsAtLeastOne) {
  EXPECT_GE(HardwareThreads(), 1u);
}

// ---------- WallTimer ----------

TEST(WallTimerTest, MonotoneNonNegative) {
  WallTimer t;
  EXPECT_GE(t.Seconds(), 0.0);
  const double a = t.Seconds();
  const double b = t.Seconds();
  EXPECT_GE(b, a);
}

TEST(WallTimerTest, ResetRestarts) {
  WallTimer t;
  (void)t.Micros();
  t.Reset();
  EXPECT_LT(t.Seconds(), 1.0);
}

// ---------- Table ----------

TEST(TableTest, EmptyHeadersThrow) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, WrongArityRowThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.AddRow({std::string("x")}), std::invalid_argument);
}

TEST(TableTest, PrintAlignsColumns) {
  Table t({"name", "value"});
  t.AddRow({std::string("x"), std::int64_t{42}});
  t.AddRow({std::string("longer"), 3.5});
  std::ostringstream os;
  t.set_precision(2);
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("3.50"), std::string::npos);
  EXPECT_NE(out.find("------"), std::string::npos);
}

TEST(TableTest, CsvEscapesSpecialCharacters) {
  Table t({"a"});
  t.AddRow({std::string("has,comma")});
  t.AddRow({std::string("has\"quote")});
  std::ostringstream os;
  t.WriteCsv(os);
  EXPECT_NE(os.str().find("\"has,comma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"has\"\"quote\""), std::string::npos);
}

TEST(TableTest, CsvPlainValuesUnquoted) {
  Table t({"a", "b"});
  t.AddRow({std::int64_t{1}, std::string("plain")});
  std::ostringstream os;
  t.WriteCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,plain\n");
}

TEST(TableTest, CountsRowsAndCols) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({std::int64_t{1}, std::int64_t{2}, std::int64_t{3}});
  EXPECT_EQ(t.num_rows(), 1u);
}

// ---------- Flags ----------

TEST(FlagsTest, MissingEnvReturnsFallback) {
  ::unsetenv("REJECTO_TEST_FLAG");
  EXPECT_EQ(GetEnvInt("REJECTO_TEST_FLAG", 7), 7);
  EXPECT_EQ(GetEnvDouble("REJECTO_TEST_FLAG", 2.5), 2.5);
  EXPECT_TRUE(GetEnvBool("REJECTO_TEST_FLAG", true));
  EXPECT_FALSE(GetEnvString("REJECTO_TEST_FLAG").has_value());
}

TEST(FlagsTest, ParsesValues) {
  ::setenv("REJECTO_TEST_FLAG", "123", 1);
  EXPECT_EQ(GetEnvInt("REJECTO_TEST_FLAG", 0), 123);
  ::setenv("REJECTO_TEST_FLAG", "1.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("REJECTO_TEST_FLAG", 0), 1.5);
  ::setenv("REJECTO_TEST_FLAG", "true", 1);
  EXPECT_TRUE(GetEnvBool("REJECTO_TEST_FLAG", false));
  ::setenv("REJECTO_TEST_FLAG", "0", 1);
  EXPECT_FALSE(GetEnvBool("REJECTO_TEST_FLAG", true));
  ::unsetenv("REJECTO_TEST_FLAG");
}

TEST(FlagsTest, MalformedIntFallsBack) {
  ::setenv("REJECTO_TEST_FLAG", "not-a-number", 1);
  EXPECT_EQ(GetEnvInt("REJECTO_TEST_FLAG", -9), -9);
  ::unsetenv("REJECTO_TEST_FLAG");
}

TEST(FlagsTest, ExperimentSeedDefaultsTo42) {
  ::unsetenv("REJECTO_SEED");
  EXPECT_EQ(ExperimentSeed(), 42u);
  ::setenv("REJECTO_SEED", "99", 1);
  EXPECT_EQ(ExperimentSeed(), 99u);
  ::unsetenv("REJECTO_SEED");
}

}  // namespace
}  // namespace rejecto::util
