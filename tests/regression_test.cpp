// Cross-cutting regression tests: behaviours observed while reproducing
// the paper that we want pinned against future refactors.
#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/votetrust.h"
#include "detect/iterative.h"
#include "gen/barabasi_albert.h"
#include "gen/datasets.h"
#include "gen/erdos_renyi.h"
#include "gen/forest_fire.h"
#include "gen/holme_kim.h"
#include "gen/planted_partition.h"
#include "gen/watts_strogatz.h"
#include "metrics/classification.h"
#include "metrics/ranking.h"
#include "sim/scenario.h"

namespace rejecto {
namespace {

// ---------- generator determinism sweep ----------

class GeneratorDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorDeterminismTest, SameSeedSameGraph) {
  auto make = [&](std::uint64_t seed) -> graph::SocialGraph {
    util::Rng rng(seed);
    switch (GetParam()) {
      case 0:
        return gen::BarabasiAlbert({.num_nodes = 300, .edges_per_node = 3},
                                   rng);
      case 1:
        return gen::HolmeKim({.num_nodes = 300,
                              .edges_per_node = 3,
                              .triad_probability = 0.5},
                             rng);
      case 2:
        return gen::ForestFire({.num_nodes = 300, .burn_probability = 0.4},
                               rng);
      case 3:
        return gen::WattsStrogatz({.num_nodes = 300,
                                   .lattice_degree = 6,
                                   .rewire_probability = 0.2},
                                  rng);
      case 4:
        return gen::ErdosRenyi({.num_nodes = 300, .num_edges = 900}, rng);
      default:
        return gen::PlantedPartition({.num_nodes = 300,
                                      .num_communities = 3,
                                      .p_in = 0.1,
                                      .p_out = 0.01},
                                     rng)
            .graph;
    }
  };
  const auto a = make(99);
  const auto b = make(99);
  const auto c = make(100);
  EXPECT_EQ(a.Edges(), b.Edges());
  EXPECT_NE(a.Edges(), c.Edges());  // different seed, different graph
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, GeneratorDeterminismTest,
                         ::testing::Range(0, 6));

// ---------- VoteTrust volume sensitivity (Fig 9's mechanism) ----------

TEST(VoteTrustRegressionTest, AccuracyRisesWithSpamVolume) {
  util::Rng rng(1);
  const auto legit =
      gen::HolmeKim({.num_nodes = 2'000, .edges_per_node = 4,
                     .triad_probability = 0.5},
                    rng);
  auto precision_at = [&](std::uint32_t requests) {
    sim::ScenarioConfig cfg;
    cfg.seed = 5;
    cfg.num_fakes = 400;
    cfg.requests_per_spammer = requests;
    const auto s = sim::BuildScenario(legit, cfg);
    util::Rng seed_rng(7);
    const auto seeds = s.SampleSeeds(30, 10, seed_rng);
    baseline::VoteTrustConfig vt;
    vt.trust_seeds = seeds.legit;
    const auto r = baseline::RunVoteTrust(s.log, vt);
    return metrics::EvaluateDetection(
               s.is_fake, metrics::LowestScored(r.ratings, 400))
        .Precision();
  };
  EXPECT_LT(precision_at(5), precision_at(40) + 0.02);
}

// ---------- iterative detector with seeds across rounds ----------

TEST(IterativeRegressionTest, SpammerSeedsAreDetectedAndPruned) {
  // Spammer seeds sit inside the detected region; after their group is
  // pruned, later rounds run with only the surviving seeds. Exercises the
  // seed-remapping path across compactions.
  util::Rng rng(2);
  const auto legit =
      gen::ErdosRenyi({.num_nodes = 600, .num_edges = 2400}, rng);
  sim::ScenarioConfig cfg;
  cfg.seed = 11;
  cfg.num_fakes = 120;
  cfg.whitewashed_fakes = 60;
  cfg.self_rejection_rate = 0.9;  // forces >= 2 rounds
  const auto s = sim::BuildScenario(legit, cfg);
  util::Rng seed_rng(13);
  const auto seeds = s.SampleSeeds(20, 10, seed_rng);

  detect::IterativeConfig dcfg;
  dcfg.target_detections = 120;
  dcfg.maar.seed = 17;
  const auto result = detect::DetectFriendSpammers(s.graph, seeds, dcfg);
  const auto cm = metrics::EvaluateDetection(s.is_fake, result.detected);
  EXPECT_GE(cm.Precision(), 0.9);
  // Every spammer seed must end up detected (they are pinned into U).
  for (graph::NodeId sp : seeds.spammer) {
    EXPECT_NE(std::find(result.detected.begin(), result.detected.end(), sp),
              result.detected.end())
        << "spammer seed " << sp << " missed";
  }
}

// ---------- dataset cache coherence ----------

TEST(DatasetRegressionTest, AllNamesInstantiableAtReducedScale) {
  // Spec lookup + generator dispatch for every registry entry; scale kept
  // small by overriding node counts.
  for (const auto& spec : gen::TableOneDatasets()) {
    gen::DatasetSpec small = spec;
    small.nodes = 2'000;
    const auto g = gen::MakeDataset(small, 3);
    EXPECT_EQ(g.NumNodes(), 2'000u) << spec.name;
    EXPECT_GT(g.NumEdges(), 1'000u) << spec.name;
  }
}

// ---------- scenario config cross-interactions ----------

TEST(ScenarioRegressionTest, AllAttackKnobsComposable) {
  // Every attack primitive enabled at once must still produce a coherent
  // scenario (the fuzz test covers random subsets; this pins the all-on
  // corner).
  util::Rng rng(3);
  const auto legit =
      gen::ErdosRenyi({.num_nodes = 500, .num_edges = 2000}, rng);
  sim::ScenarioConfig cfg;
  cfg.seed = 19;
  cfg.num_fakes = 100;
  cfg.intra_fake_links_per_account = 20;
  cfg.spamming_fraction = 0.7;
  cfg.requests_per_spammer = 30;
  cfg.spam_rejection_rate = 0.8;
  cfg.legit_rejection_rate = 0.3;
  cfg.careless_fraction = 0.2;
  cfg.whitewashed_fakes = 40;
  cfg.self_rejection_rate = 0.6;
  cfg.legit_requests_rejected_by_fakes = 2'000;
  const auto s = sim::BuildScenario(legit, cfg);
  EXPECT_EQ(s.NumNodes(), 600u);
  EXPECT_GT(s.graph.Rejections().NumArcs(), 3'000u);
  const auto cut = s.graph.ComputeCut(s.is_fake);
  EXPECT_GT(cut.rejections_into_u, 0u);
  EXPECT_GT(cut.rejections_from_u, 1'500u);  // the Fig 15 channel
}

}  // namespace
}  // namespace rejecto
