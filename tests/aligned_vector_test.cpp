// Unit suite for the memory tier: util::memory block allocator and the
// AlignedVector container every hot array now lives on. Pins the two
// contracts the SIMD kernels build on (64-byte base alignment, 64 readable
// slack bytes past end at any size), plus std::vector-mirrored growth
// semantics, move/copy behavior, and the hugepage fallback path (driven
// deterministically through the "memory/hugepage_map" failpoint).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include "util/buffer.h"
#include "util/failpoint.h"
#include "util/memory.h"
#include "util/rng.h"

namespace rejecto {
namespace {

using util::AlignedVector;
namespace memory = util::memory;

bool IsAligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % memory::kAlignment == 0;
}

// Reads the slack region past the last element; must not fault and — for a
// freshly grown block — must be readable as plain bytes. The return value
// defeats dead-code elimination.
template <typename T>
unsigned SlackChecksum(const AlignedVector<T>& v) {
  if (v.data() == nullptr) return 0;
  const auto* bytes =
      reinterpret_cast<const unsigned char*>(v.data() + v.size());
  unsigned sum = 0;
  for (std::size_t i = 0; i < memory::kSimdSlackBytes; ++i) sum += bytes[i];
  return sum;
}

TEST(MemoryTest, AllocateAlignsZeroesAndPadsSlack) {
  memory::Block b = memory::Allocate(100);
  ASSERT_NE(b.ptr, nullptr);
  EXPECT_TRUE(IsAligned(b.ptr));
  EXPECT_GE(b.bytes, 100 + memory::kSimdSlackBytes);
  EXPECT_EQ(b.bytes % memory::kAlignment, 0u);
  const auto* p = static_cast<const unsigned char*>(b.ptr);
  for (std::size_t i = 0; i < b.bytes; ++i) {
    ASSERT_EQ(p[i], 0u) << "byte " << i << " not zero-initialised";
  }
  memory::Deallocate(b);
  EXPECT_EQ(b.ptr, nullptr);
  memory::Deallocate(b);  // double-release of the empty block is safe
}

TEST(MemoryTest, ZeroByteRequestYieldsEmptyBlock) {
  memory::Block b = memory::Allocate(0);
  EXPECT_EQ(b.ptr, nullptr);
  EXPECT_EQ(b.bytes, 0u);
  memory::Deallocate(b);
}

TEST(AlignedVectorTest, DataStaysAlignedThroughGrowth) {
  AlignedVector<std::uint32_t> v;
  EXPECT_EQ(v.data(), nullptr);
  for (std::uint32_t i = 0; i < 5'000; ++i) {
    v.push_back(i);
    ASSERT_TRUE(IsAligned(v.data())) << "misaligned at size " << v.size();
  }
  // Slack stays readable at every capacity the growth path produced.
  EXPECT_GE(SlackChecksum(v), 0u);
  for (std::uint32_t i = 0; i < 5'000; ++i) ASSERT_EQ(v[i], i);
}

TEST(AlignedVectorTest, MirrorsStdVectorUnderRandomOps) {
  util::Rng rng(11);
  AlignedVector<std::uint32_t> v;
  std::vector<std::uint32_t> ref;
  for (int step = 0; step < 20'000; ++step) {
    switch (rng.NextUInt(6)) {
      case 0:
      case 1:
      case 2: {
        const auto x = rng.NextUInt(1u << 30);
        v.push_back(x);
        ref.push_back(x);
        break;
      }
      case 3:
        if (!ref.empty()) {
          v.pop_back();
          ref.pop_back();
        }
        break;
      case 4: {
        const std::size_t n = rng.NextUInt(64);
        std::vector<std::uint32_t> chunk(n);
        for (auto& x : chunk) x = rng.NextUInt(1u << 30);
        v.Append(chunk.data(), chunk.size());
        ref.insert(ref.end(), chunk.begin(), chunk.end());
        break;
      }
      default: {
        const std::size_t n = rng.NextUInt(200);
        v.resize(n);  // value-initialises growth, like std::vector
        ref.resize(n);
        break;
      }
    }
    ASSERT_EQ(v.size(), ref.size());
  }
  EXPECT_EQ(v.ToStdVector(), ref);
  EXPECT_TRUE(IsAligned(v.data()));
}

TEST(AlignedVectorTest, ConstructorsAndAssignment) {
  const AlignedVector<int> from_list = {1, 2, 3};
  EXPECT_EQ(from_list.ToStdVector(), (std::vector<int>{1, 2, 3}));

  const AlignedVector<int> sized(4);
  EXPECT_EQ(sized.ToStdVector(), (std::vector<int>{0, 0, 0, 0}));

  const AlignedVector<int> filled(3, 7);
  EXPECT_EQ(filled.ToStdVector(), (std::vector<int>{7, 7, 7}));

  const std::vector<int> src = {5, 6};
  const AlignedVector<int> from_std(src);
  EXPECT_EQ(from_std.ToStdVector(), src);

  AlignedVector<int> copy(from_list);
  EXPECT_EQ(copy, from_list);
  EXPECT_NE(copy.data(), from_list.data());

  copy = filled;
  EXPECT_EQ(copy, filled);
  copy = {9, 9};
  EXPECT_EQ(copy.ToStdVector(), (std::vector<int>{9, 9}));
  EXPECT_NE(copy, filled);
}

TEST(AlignedVectorTest, MoveStealsStorageAndLeavesEmpty) {
  AlignedVector<std::uint64_t> a;
  for (std::uint64_t i = 0; i < 100; ++i) a.push_back(i);
  const auto* stolen = a.data();

  AlignedVector<std::uint64_t> b(std::move(a));
  EXPECT_EQ(b.data(), stolen);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);
  a.push_back(3);  // the moved-from container is reusable
  EXPECT_EQ(a.size(), 1u);

  AlignedVector<std::uint64_t> c;
  c.push_back(42);
  c = std::move(b);
  EXPECT_EQ(c.data(), stolen);
  EXPECT_EQ(c.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) ASSERT_EQ(c[i], i);

  AlignedVector<std::uint64_t> d;
  d.push_back(1);
  AlignedVector<std::uint64_t> e;
  e.push_back(2);
  swap(d, e);
  EXPECT_EQ(d[0], 2u);
  EXPECT_EQ(e[0], 1u);
}

TEST(AlignedVectorTest, ReserveKeepsContentsAndClearKeepsCapacity) {
  AlignedVector<int> v = {1, 2, 3};
  v.reserve(1000);
  EXPECT_GE(v.capacity(), 1000u);
  EXPECT_EQ(v.ToStdVector(), (std::vector<int>{1, 2, 3}));
  const auto* before = v.data();
  const auto cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.data(), before);
  EXPECT_EQ(v.capacity(), cap);
}

TEST(AlignedVectorTest, SixteenByteRecordsNeverSplitCacheLines) {
  struct Record {
    std::uint32_t a, b, c, d;
  };
  static_assert(sizeof(Record) == 16);
  AlignedVector<Record> v(1000);
  ASSERT_TRUE(IsAligned(v.data()));
  // 64 % 16 == 0 and the base is line-aligned, so no record straddles.
  for (std::size_t i = 0; i < v.size(); ++i) {
    const auto addr = reinterpret_cast<std::uintptr_t>(&v[i]);
    ASSERT_EQ(addr / 64, (addr + sizeof(Record) - 1) / 64);
  }
}

TEST(MemoryTest, HugepagePathMapsLargeBlocks) {
  const bool was_enabled = memory::HugepagesEnabled();
  memory::SetHugepagesForTest(true);
  const auto before = memory::Stats();
  memory::Block big = memory::Allocate(memory::kHugepageThreshold);
  const auto after = memory::Stats();
  EXPECT_NE(big.ptr, nullptr);
  EXPECT_TRUE(IsAligned(big.ptr));
  // Either the mmap succeeded (mapped block) or the allocator fell back to
  // the heap — both are valid outcomes of the best-effort contract, and
  // exactly one of the two counters moved.
  if (big.mapped) {
    EXPECT_EQ(after.mapped_allocs, before.mapped_allocs + 1);
  } else {
    EXPECT_EQ(after.hugepage_fallbacks, before.hugepage_fallbacks + 1);
  }
  std::memset(big.ptr, 0xAB, big.bytes);  // the mapping must be writable
  memory::Deallocate(big);

  // Small blocks never take the mmap path even with the knob on.
  memory::Block small = memory::Allocate(256);
  EXPECT_FALSE(small.mapped);
  memory::Deallocate(small);
  memory::SetHugepagesForTest(was_enabled);
}

TEST(MemoryTest, HugepageMapFailureFallsBackToHeap) {
  const bool was_enabled = memory::HugepagesEnabled();
  memory::SetHugepagesForTest(true);
  util::ScopedFailpoint fp("memory/hugepage_map",
                           util::FailpointPolicy::EveryNth(1));
  const auto before = memory::Stats();
  memory::Block b = memory::Allocate(memory::kHugepageThreshold);
  const auto after = memory::Stats();
  ASSERT_NE(b.ptr, nullptr);
  EXPECT_FALSE(b.mapped);
  EXPECT_TRUE(IsAligned(b.ptr));
  EXPECT_EQ(after.hugepage_fallbacks, before.hugepage_fallbacks + 1);
  EXPECT_EQ(after.mapped_allocs, before.mapped_allocs);
  // The fallback block honors the same zero-init + slack contract.
  const auto* p = static_cast<const unsigned char*>(b.ptr);
  for (std::size_t i = 0; i < b.bytes; ++i) ASSERT_EQ(p[i], 0u);
  memory::Deallocate(b);
  memory::SetHugepagesForTest(was_enabled);
}

TEST(MemoryTest, AlignedVectorSurvivesHugepageFallback) {
  const bool was_enabled = memory::HugepagesEnabled();
  memory::SetHugepagesForTest(true);
  util::ScopedFailpoint fp("memory/hugepage_map",
                           util::FailpointPolicy::EveryNth(1));
  // Grow a container through the hugepage threshold: every block comes from
  // the heap fallback and the contents survive each migration.
  AlignedVector<std::uint64_t> v;
  const std::size_t n = (memory::kHugepageThreshold / sizeof(std::uint64_t)) + 1'000;
  for (std::size_t i = 0; i < n; ++i) v.push_back(i);
  ASSERT_TRUE(IsAligned(v.data()));
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) sum += v[i] - i;
  EXPECT_EQ(sum, 0u);
  memory::SetHugepagesForTest(was_enabled);
}

}  // namespace
}  // namespace rejecto
