// util::LatencyHistogram vs a sorted-vector oracle: the bucketed quantile
// must bound the exact quantile from above within the documented relative
// error (1/kSubBuckets), and merging per-thread histograms must be exactly
// equivalent to recording the whole trace into one.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/latency.h"
#include "util/rng.h"

namespace rejecto {
namespace {

using util::LatencyHistogram;

std::uint64_t OracleQuantile(std::vector<std::uint64_t> sorted, double q) {
  // The ceil(q*N)-th smallest sample, the same rank the histogram targets.
  const double exact = q * static_cast<double>(sorted.size());
  std::uint64_t rank = static_cast<std::uint64_t>(exact);
  if (static_cast<double>(rank) < exact) ++rank;
  rank = std::clamp<std::uint64_t>(rank, 1, sorted.size());
  return sorted[rank - 1];
}

// A latency-shaped trace: a tight mode plus a heavy tail plus outliers.
std::vector<std::uint64_t> LatencyTrace(std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed);
  std::vector<std::uint64_t> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double roll = rng.NextDouble();
    if (roll < 0.80) {
      v.push_back(50 + rng.NextUInt(200));            // the fast path
    } else if (roll < 0.97) {
      v.push_back(1000 + rng.NextUInt(20'000));       // contention tail
    } else if (roll < 0.999) {
      v.push_back(100'000 + rng.NextUInt(5'000'000));  // epoch stalls
    } else {
      v.push_back(rng.NextUInt(1) + (std::uint64_t{1} << 40));  // outlier
    }
  }
  return v;
}

class LatencyHistogramTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(LatencyHistogramTest, QuantilesBoundOracleWithinBucketError) {
  const auto trace = LatencyTrace(GetParam() * 31 + 7, 20'000);
  LatencyHistogram h;
  for (std::uint64_t v : trace) h.Record(v);
  ASSERT_EQ(h.Count(), trace.size());

  std::vector<std::uint64_t> sorted = trace;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.0, 0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99,
                   0.999, 1.0}) {
    const std::uint64_t oracle = OracleQuantile(sorted, q);
    const std::uint64_t est = h.Quantile(q);
    // The estimate is the inclusive upper bound of the oracle sample's
    // bucket: never below the oracle, and at most one sub-bucket above.
    EXPECT_GE(est, oracle) << "q=" << q;
    const double bound =
        static_cast<double>(oracle) *
            (1.0 + 1.0 / LatencyHistogram::kSubBuckets) +
        1.0;
    EXPECT_LE(static_cast<double>(est), bound) << "q=" << q;
  }
}

TEST_P(LatencyHistogramTest, MergeEqualsWholeTrace) {
  const auto trace = LatencyTrace(GetParam() * 101 + 3, 10'000);
  LatencyHistogram whole;
  LatencyHistogram shards[4];
  for (std::size_t i = 0; i < trace.size(); ++i) {
    whole.Record(trace[i]);
    shards[i % 4].Record(trace[i]);
  }
  LatencyHistogram merged;
  for (const LatencyHistogram& s : shards) merged.Merge(s);
  ASSERT_EQ(merged.Count(), whole.Count());
  for (double q : {0.01, 0.50, 0.95, 0.99, 0.999}) {
    EXPECT_EQ(merged.Quantile(q), whole.Quantile(q)) << "q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Traces, LatencyHistogramTest,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(LatencyHistogram, BucketGeometry) {
  util::Rng rng(99);
  for (int i = 0; i < 100'000; ++i) {
    std::uint64_t v = rng();
    v >>= rng.NextUInt(64);  // cover every magnitude
    const int b = LatencyHistogram::BucketIndex(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, LatencyHistogram::kNumBuckets);
    // v is at most its bucket's inclusive upper bound, and above the
    // previous bucket's (buckets partition the u64 range in order).
    EXPECT_LE(v, LatencyHistogram::BucketUpperBound(b));
    if (b > 0) {
      EXPECT_GT(v, LatencyHistogram::BucketUpperBound(b - 1));
    }
  }
  // The top bucket's bound must not wrap.
  EXPECT_EQ(LatencyHistogram::BucketUpperBound(
                LatencyHistogram::kNumBuckets - 1),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketUpperBound(
                  LatencyHistogram::BucketIndex(v)),
              v);
    h.Record(v);
  }
  // With one sample per value, every quantile is exact.
  EXPECT_EQ(h.Quantile(1.0), LatencyHistogram::kSubBuckets - 1);
  EXPECT_EQ(h.Quantile(1.0 / LatencyHistogram::kSubBuckets), 0u);
}

TEST(LatencyHistogram, EmptyAndReset) {
  LatencyHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.P99(), 0u);
  h.Record(1234);
  EXPECT_GT(h.P50(), 0u);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.P50(), 0u);
}

}  // namespace
}  // namespace rejecto
