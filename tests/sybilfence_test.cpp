#include <gtest/gtest.h>

#include "baseline/sybilfence.h"
#include "baseline/sybilrank.h"
#include "graph/builder.h"
#include "metrics/ranking.h"

namespace rejecto::baseline {
namespace {

// Honest clique 0..5, sybil clique 6..11, several attack edges, rejections
// cast on the sybils that hold attack edges.
graph::AugmentedGraph AttackedGraph(int attack_edges, int rejections) {
  graph::GraphBuilder b(12);
  for (graph::NodeId u = 0; u < 6; ++u) {
    for (graph::NodeId v = u + 1; v < 6; ++v) b.AddFriendship(u, v);
  }
  for (graph::NodeId u = 6; u < 12; ++u) {
    for (graph::NodeId v = u + 1; v < 12; ++v) b.AddFriendship(u, v);
  }
  for (int i = 0; i < attack_edges; ++i) {
    b.AddFriendship(static_cast<graph::NodeId>(i % 6),
                    static_cast<graph::NodeId>(6 + (i % 6)));
  }
  for (int i = 0; i < rejections; ++i) {
    b.AddRejection(static_cast<graph::NodeId>((i + 1) % 6),
                   static_cast<graph::NodeId>(6 + (i % 6)));
  }
  return b.BuildAugmented();
}

TEST(SybilFenceTest, EmptySeedsThrow) {
  EXPECT_THROW(RunSybilFence(AttackedGraph(2, 4), {}), std::invalid_argument);
}

TEST(SybilFenceTest, InvalidDiscountThrows) {
  SybilFenceConfig cfg;
  cfg.trust_seeds = {0};
  cfg.discount_per_rejection = -1.0;
  EXPECT_THROW(RunSybilFence(AttackedGraph(2, 4), cfg),
               std::invalid_argument);
  cfg.discount_per_rejection = 0.2;
  cfg.min_edge_weight = 0.0;
  EXPECT_THROW(RunSybilFence(AttackedGraph(2, 4), cfg),
               std::invalid_argument);
}

TEST(SybilFenceTest, SybilsRankLow) {
  SybilFenceConfig cfg;
  cfg.trust_seeds = {0, 1};
  const auto g = AttackedGraph(2, 6);
  const auto trust = RunSybilFence(g, cfg);
  std::vector<char> is_fake(12, 0);
  for (graph::NodeId v = 6; v < 12; ++v) is_fake[v] = 1;
  EXPECT_GT(metrics::AreaUnderRoc(trust, is_fake), 0.9);
}

TEST(SybilFenceTest, NegativeFeedbackReducesSybilTrustVsSybilRank) {
  // With many attack edges, plain SybilRank leaks trust into the Sybil
  // region; SybilFence's rejection discounts should leak less.
  const auto g = AttackedGraph(6, 10);
  std::vector<char> is_fake(12, 0);
  for (graph::NodeId v = 6; v < 12; ++v) is_fake[v] = 1;

  SybilRankConfig sr;
  sr.trust_seeds = {0, 1};
  const auto rank_trust = RunSybilRank(g.Friendships(), sr);
  SybilFenceConfig sf;
  sf.trust_seeds = {0, 1};
  const auto fence_trust = RunSybilFence(g, sf);

  EXPECT_GE(metrics::AreaUnderRoc(fence_trust, is_fake),
            metrics::AreaUnderRoc(rank_trust, is_fake));
}

TEST(SybilFenceTest, ZeroDiscountMatchesSybilRankRanking) {
  const auto g = AttackedGraph(3, 8);
  SybilFenceConfig sf;
  sf.trust_seeds = {0};
  sf.discount_per_rejection = 0.0;  // no feedback: reduces to SybilRank
  const auto fence = RunSybilFence(g, sf);
  SybilRankConfig sr;
  sr.trust_seeds = {0};
  const auto rank = RunSybilRank(g.Friendships(), sr);
  for (graph::NodeId v = 0; v < 12; ++v) {
    EXPECT_NEAR(fence[v], rank[v], 1e-9) << "node " << v;
  }
}

TEST(SybilFenceTest, IsolatedNodeScoresZero) {
  graph::GraphBuilder b(3);
  b.AddFriendship(0, 1);  // node 2 isolated
  SybilFenceConfig cfg;
  cfg.trust_seeds = {0};
  const auto trust = RunSybilFence(b.BuildAugmented(), cfg);
  EXPECT_DOUBLE_EQ(trust[2], 0.0);
}

TEST(SybilFenceTest, PenaltyFloorHolds) {
  // A node with a huge number of rejections still propagates a little
  // trust (min_edge_weight floor), so rankings stay finite/defined.
  graph::GraphBuilder b(8);
  b.AddFriendship(0, 1);
  b.AddFriendship(1, 2);
  for (graph::NodeId v = 3; v < 8; ++v) b.AddRejection(v, 1);
  SybilFenceConfig cfg;
  cfg.trust_seeds = {0};
  cfg.discount_per_rejection = 0.5;
  cfg.min_edge_weight = 0.1;
  cfg.num_iterations = 2;  // even: the 0-1-2 path is bipartite
  const auto trust = RunSybilFence(b.BuildAugmented(), cfg);
  EXPECT_GT(trust[2], 0.0);  // trust still flows through the penalized hub
}

}  // namespace
}  // namespace rejecto::baseline
