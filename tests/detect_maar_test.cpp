#include <gtest/gtest.h>

#include <cmath>

#include "detect/iterative.h"
#include "detect/maar.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "metrics/classification.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace rejecto::detect {
namespace {

// Legit clique 0..11, fake clique 12..19 with 2 attack edges and 10
// rejections from legit onto fakes -> planted MAAR ratio 2/10 = 0.2.
graph::AugmentedGraph PlantedGraph() {
  graph::GraphBuilder b(20);
  auto clique = [&](graph::NodeId lo, graph::NodeId hi) {
    for (graph::NodeId u = lo; u < hi; ++u) {
      for (graph::NodeId v = u + 1; v < hi; ++v) b.AddFriendship(u, v);
    }
  };
  clique(0, 12);
  clique(12, 20);
  b.AddFriendship(0, 12);
  b.AddFriendship(1, 13);
  for (graph::NodeId f = 12; f < 17; ++f) {
    b.AddRejection(2, f);
    b.AddRejection(3, f);
  }
  return b.BuildAugmented();
}

MaarConfig SmallConfig() {
  MaarConfig cfg;
  cfg.min_region_size = 2;
  cfg.seed = 5;
  return cfg;
}

TEST(MaarSolverTest, FindsPlantedCut) {
  const auto g = PlantedGraph();
  MaarSolver solver(g, {}, SmallConfig());
  const MaarCut cut = solver.Solve();
  ASSERT_TRUE(cut.valid);
  EXPECT_NEAR(cut.ratio, 0.2, 1e-9);
  for (graph::NodeId v = 0; v < 12; ++v) EXPECT_EQ(cut.in_u[v], 0) << v;
  for (graph::NodeId v = 12; v < 20; ++v) EXPECT_EQ(cut.in_u[v], 1) << v;
  EXPECT_GT(cut.kl_runs, 0);
}

TEST(MaarSolverTest, RecordsCutQuantitiesConsistently) {
  const auto g = PlantedGraph();
  MaarSolver solver(g, {}, SmallConfig());
  const MaarCut cut = solver.Solve();
  ASSERT_TRUE(cut.valid);
  const auto oracle = g.ComputeCut(cut.in_u);
  EXPECT_EQ(cut.cut.cross_friendships, oracle.cross_friendships);
  EXPECT_EQ(cut.cut.rejections_into_u, oracle.rejections_into_u);
  EXPECT_NEAR(cut.ratio, oracle.FriendsToRejectionsRatio(), 1e-12);
}

TEST(MaarSolverTest, NoRejectionsMeansInvalid) {
  graph::GraphBuilder b(12);
  for (graph::NodeId u = 0; u < 12; ++u) {
    for (graph::NodeId v = u + 1; v < 12; ++v) b.AddFriendship(u, v);
  }
  const auto g = b.BuildAugmented();
  MaarSolver solver(g, {}, SmallConfig());
  EXPECT_FALSE(solver.Solve().valid);
}

TEST(MaarSolverTest, FeasibleMinRegionSizeIsHonored) {
  // min_region_size = 9 is feasible on 20 nodes (9 vs 11), so the size-8
  // planted group is no longer a valid cut; any reported cut must respect
  // the bound (and therefore have a worse ratio than the planted 0.2).
  const auto g = PlantedGraph();
  MaarConfig cfg = SmallConfig();
  cfg.min_region_size = 9;
  MaarSolver solver(g, {}, cfg);
  const MaarCut cut = solver.Solve();
  if (cut.valid) {
    graph::NodeId size_u = 0;
    for (char c : cut.in_u) size_u += (c != 0);
    EXPECT_GE(size_u, 9u);
    EXPECT_GE(g.NumNodes() - size_u, 9u);
    EXPECT_GT(cut.ratio, 0.2);
  }
}

TEST(MaarSolverTest, InfeasibleMinRegionSizeClampsToHalf) {
  // min_region_size = 15 cannot fit both sides of 20 nodes; the clamp caps
  // it at n/2 = 10, keeping the problem solvable.
  const auto g = PlantedGraph();
  MaarConfig cfg = SmallConfig();
  cfg.min_region_size = 15;
  MaarSolver solver(g, {}, cfg);
  const MaarCut cut = solver.Solve();
  if (cut.valid) {
    graph::NodeId size_u = 0;
    for (char c : cut.in_u) size_u += (c != 0);
    EXPECT_GE(size_u, 10u);
  }
}

TEST(MaarSolverTest, MaxRegionFractionRejectsComplementCuts) {
  // A graph where a few heavy rejectors make "everyone else" a spuriously
  // low-ratio region: the fraction cap must refuse it.
  graph::GraphBuilder b(32);
  for (graph::NodeId u = 0; u < 32; ++u) {
    b.AddFriendship(u, (u + 1) % 32);  // sparse ring
  }
  // Nodes 0 and 1 reject nearly everyone.
  for (graph::NodeId v = 2; v < 32; ++v) {
    b.AddRejection(0, v);
    b.AddRejection(1, v);
  }
  const auto g = b.BuildAugmented();
  MaarConfig cfg = SmallConfig();
  cfg.max_region_fraction = 0.6;
  MaarSolver solver(g, {}, cfg);
  const MaarCut cut = solver.Solve();
  if (cut.valid) {
    graph::NodeId size_u = 0;
    for (char c : cut.in_u) size_u += (c != 0);
    EXPECT_LE(static_cast<double>(size_u), 0.6 * 32.0);
  }
}

TEST(MaarSolverTest, SeedsValidatedAtConstruction) {
  const auto g = PlantedGraph();
  Seeds bad;
  bad.legit = {99};
  EXPECT_THROW(MaarSolver(g, bad, SmallConfig()), std::invalid_argument);
  Seeds overlap;
  overlap.legit = {1};
  overlap.spammer = {1};
  EXPECT_THROW(MaarSolver(g, overlap, SmallConfig()), std::invalid_argument);
}

TEST(MaarSolverTest, InvalidSweepThrows) {
  const auto g = PlantedGraph();
  MaarConfig cfg = SmallConfig();
  cfg.k_scale = 1.0;
  EXPECT_THROW(MaarSolver(g, {}, cfg), std::invalid_argument);
  MaarConfig cfg2 = SmallConfig();
  cfg2.k_min = -1;
  EXPECT_THROW(MaarSolver(g, {}, cfg2), std::invalid_argument);
}

TEST(MaarSolverTest, SeedPinningOverridesBadLocalMinima) {
  // Give legit node 2 (a heavy rejector) a spammer-looking position by
  // seeding: a legit seed placed on node 2 must keep it out of U.
  const auto g = PlantedGraph();
  Seeds seeds;
  seeds.legit = {2};
  seeds.spammer = {12};
  MaarSolver solver(g, seeds, SmallConfig());
  const MaarCut cut = solver.Solve();
  ASSERT_TRUE(cut.valid);
  EXPECT_EQ(cut.in_u[2], 0);
  EXPECT_EQ(cut.in_u[12], 1);
}

TEST(MaarSolverTest, DinkelbachRefinementNeverWorsens) {
  const auto g = PlantedGraph();
  MaarConfig no_refine = SmallConfig();
  no_refine.dinkelbach_rounds = 0;
  MaarConfig refine = SmallConfig();
  refine.dinkelbach_rounds = 4;
  const MaarCut a = MaarSolver(g, {}, no_refine).Solve();
  const MaarCut b = MaarSolver(g, {}, refine).Solve();
  ASSERT_TRUE(a.valid);
  ASSERT_TRUE(b.valid);
  EXPECT_LE(b.ratio, a.ratio + 1e-12);
}

// ---------- iterative detection ----------

// Two disjoint fake groups with different acceptance rates plus a legit
// region; iterative detection should find both across rounds.
graph::AugmentedGraph TwoGroupGraph() {
  graph::GraphBuilder b(36);
  auto clique = [&](graph::NodeId lo, graph::NodeId hi) {
    for (graph::NodeId u = lo; u < hi; ++u) {
      for (graph::NodeId v = u + 1; v < hi; ++v) b.AddFriendship(u, v);
    }
  };
  clique(0, 20);   // legit
  clique(20, 28);  // fake group A: ratio 1/10
  clique(28, 36);  // fake group B: ratio 2/8
  b.AddFriendship(0, 20);
  for (graph::NodeId f = 20; f < 25; ++f) {
    b.AddRejection(1, f);
    b.AddRejection(2, f);
  }
  b.AddFriendship(3, 28);
  b.AddFriendship(4, 29);
  for (graph::NodeId f = 28; f < 32; ++f) {
    b.AddRejection(5, f);
    b.AddRejection(6, f);
  }
  return b.BuildAugmented();
}

TEST(IterativeTest, FindsDisjointGroupsAcrossRounds) {
  const auto g = TwoGroupGraph();
  IterativeConfig cfg;
  cfg.maar = SmallConfig();
  cfg.target_detections = 16;
  const auto result = DetectFriendSpammers(g, {}, cfg);
  EXPECT_TRUE(result.hit_target);
  EXPECT_EQ(result.detected.size(), 16u);
  EXPECT_GE(result.rounds.size(), 2u);
  std::vector<char> truth(36, 0);
  for (graph::NodeId v = 20; v < 36; ++v) truth[v] = 1;
  const auto cm = metrics::EvaluateDetection(truth, result.detected);
  EXPECT_EQ(cm.true_positives, 16u);
  EXPECT_EQ(cm.false_positives, 0u);
}

TEST(IterativeTest, RoundsHaveNonDecreasingRatios) {
  const auto g = TwoGroupGraph();
  IterativeConfig cfg;
  cfg.maar = SmallConfig();
  cfg.target_detections = 16;
  const auto result = DetectFriendSpammers(g, {}, cfg);
  for (std::size_t i = 1; i < result.rounds.size(); ++i) {
    EXPECT_GE(result.rounds[i].ratio, result.rounds[i - 1].ratio - 1e-9);
  }
}

TEST(IterativeTest, AcceptanceThresholdStopsEarly) {
  const auto g = TwoGroupGraph();
  IterativeConfig cfg;
  cfg.maar = SmallConfig();
  cfg.target_detections = 16;
  // Group A has acceptance 1/11; group B 2/10. Threshold between them
  // stops after the first group.
  cfg.acceptance_rate_threshold = 0.15;
  const auto result = DetectFriendSpammers(g, {}, cfg);
  EXPECT_EQ(result.rounds.size(), 1u);
  EXPECT_EQ(result.detected.size(), 8u);
  for (graph::NodeId v : result.detected) {
    EXPECT_GE(v, 20u);
    EXPECT_LT(v, 28u);
  }
}

TEST(IterativeTest, TrimToTargetExact) {
  const auto g = TwoGroupGraph();
  IterativeConfig cfg;
  cfg.maar = SmallConfig();
  cfg.target_detections = 5;  // less than the first group's 8
  const auto result = DetectFriendSpammers(g, {}, cfg);
  EXPECT_TRUE(result.hit_target);
  EXPECT_EQ(result.detected.size(), 5u);
}

TEST(IterativeTest, ZeroTargetRunsUntilNoValidCut) {
  const auto g = TwoGroupGraph();
  IterativeConfig cfg;
  cfg.maar = SmallConfig();
  cfg.target_detections = 0;
  cfg.max_rounds = 10;
  const auto result = DetectFriendSpammers(g, {}, cfg);
  // Both fake groups (and possibly more) get cut before cuts become invalid.
  EXPECT_GE(result.detected.size(), 16u);
}

TEST(IterativeTest, DetectedIdsAreOriginalIds) {
  const auto g = TwoGroupGraph();
  IterativeConfig cfg;
  cfg.maar = SmallConfig();
  cfg.target_detections = 16;
  const auto result = DetectFriendSpammers(g, {}, cfg);
  for (graph::NodeId v : result.detected) EXPECT_LT(v, 36u);
  // No duplicates.
  auto sorted = result.detected;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(IterativeTest, SelfRejectionWhitewashCaughtInLaterRound) {
  // Fakes split into senders (20..27) and whitewashed (28..35). Senders get
  // legit rejections AND heavy whitewash rejections; whitewashed get only
  // legit rejections. The crafted inner cut surfaces first; pruning it must
  // expose the whitewashed group next.
  graph::GraphBuilder b(36);
  auto clique = [&](graph::NodeId lo, graph::NodeId hi) {
    for (graph::NodeId u = lo; u < hi; ++u) {
      for (graph::NodeId v = u + 1; v < hi; ++v) b.AddFriendship(u, v);
    }
  };
  clique(0, 20);
  clique(20, 28);
  clique(28, 36);
  b.AddFriendship(0, 20);  // attack edges of senders
  b.AddFriendship(1, 28);  // attack edge of whitewashed
  // Legit rejections on both groups (spam campaign).
  for (graph::NodeId f = 20; f < 28; ++f) b.AddRejection(2, f);
  for (graph::NodeId f = 28; f < 36; ++f) b.AddRejection(3, f);
  // Whitewash: heavy rejections from whitewashed onto senders, few accepted
  // links between the halves.
  b.AddFriendship(20, 28);
  for (graph::NodeId s = 20; s < 28; ++s) {
    for (graph::NodeId w = 28; w < 36; w += 2) b.AddRejection(w, s);
  }
  const auto g = b.BuildAugmented();

  IterativeConfig cfg;
  cfg.maar = SmallConfig();
  cfg.target_detections = 16;
  const auto result = DetectFriendSpammers(g, {}, cfg);
  EXPECT_TRUE(result.hit_target);
  std::vector<char> truth(36, 0);
  for (graph::NodeId v = 20; v < 36; ++v) truth[v] = 1;
  const auto cm = metrics::EvaluateDetection(truth, result.detected);
  EXPECT_EQ(cm.true_positives, 16u);
  // First round must be the whitewash-crafted inner cut (the senders).
  ASSERT_GE(result.rounds.size(), 2u);
  for (graph::NodeId v : result.rounds[0].detected) {
    EXPECT_GE(v, 20u);
    EXPECT_LT(v, 28u);
  }
}

}  // namespace
}  // namespace rejecto::detect
