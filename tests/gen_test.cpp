#include <gtest/gtest.h>

#include <cmath>

#include "gen/barabasi_albert.h"
#include "gen/datasets.h"
#include "gen/erdos_renyi.h"
#include "gen/forest_fire.h"
#include "gen/holme_kim.h"
#include "gen/planted_partition.h"
#include "gen/watts_strogatz.h"
#include "graph/stats.h"

namespace rejecto::gen {
namespace {

// ---------- Barabási–Albert ----------

TEST(BarabasiAlbertTest, EdgeCountMatchesFormula) {
  util::Rng rng(1);
  const auto g = BarabasiAlbert({.num_nodes = 500, .edges_per_node = 3}, rng);
  EXPECT_EQ(g.NumNodes(), 500u);
  // seed clique K4 (6 edges) + 3 per remaining node.
  EXPECT_EQ(g.NumEdges(), 6u + 3u * (500u - 4u));
}

TEST(BarabasiAlbertTest, ConnectedByConstruction) {
  util::Rng rng(2);
  const auto g = BarabasiAlbert({.num_nodes = 300, .edges_per_node = 2}, rng);
  EXPECT_EQ(graph::ConnectedComponents(g).count, 1u);
}

TEST(BarabasiAlbertTest, FractionalMLandsBetween) {
  util::Rng rng(3);
  const auto g =
      BarabasiAlbert({.num_nodes = 2000, .edges_per_node = 2.5}, rng);
  const double epn = static_cast<double>(g.NumEdges()) / 2000.0;
  EXPECT_GT(epn, 2.3);
  EXPECT_LT(epn, 2.7);
}

TEST(BarabasiAlbertTest, HasHubs) {
  util::Rng rng(4);
  const auto g =
      BarabasiAlbert({.num_nodes = 3000, .edges_per_node = 2}, rng);
  // Scale-free: the max degree should far exceed the mean (4).
  EXPECT_GT(g.MaxDegree(), 40u);
}

TEST(BarabasiAlbertTest, InvalidParamsThrow) {
  util::Rng rng(5);
  EXPECT_THROW(
      BarabasiAlbert({.num_nodes = 100, .edges_per_node = 0.5}, rng),
      std::invalid_argument);
  EXPECT_THROW(BarabasiAlbert({.num_nodes = 3, .edges_per_node = 3}, rng),
               std::invalid_argument);
}

TEST(BarabasiAlbertTest, DeterministicForSeed) {
  util::Rng a(9), b(9);
  const auto g1 = BarabasiAlbert({.num_nodes = 200, .edges_per_node = 2}, a);
  const auto g2 = BarabasiAlbert({.num_nodes = 200, .edges_per_node = 2}, b);
  EXPECT_EQ(g1.Edges(), g2.Edges());
}

// ---------- Holme–Kim ----------

TEST(HolmeKimTest, TriadProbabilityRaisesClustering) {
  util::Rng a(1), b(1);
  const auto low = HolmeKim(
      {.num_nodes = 2000, .edges_per_node = 3, .triad_probability = 0.0}, a);
  const auto high = HolmeKim(
      {.num_nodes = 2000, .edges_per_node = 3, .triad_probability = 0.9}, b);
  EXPECT_GT(graph::AverageClusteringCoefficient(high),
            graph::AverageClusteringCoefficient(low) + 0.05);
}

TEST(HolmeKimTest, ZeroTriadMatchesBaEdgeCount) {
  util::Rng rng(2);
  const auto g = HolmeKim(
      {.num_nodes = 400, .edges_per_node = 2, .triad_probability = 0.0}, rng);
  EXPECT_EQ(g.NumEdges(), 3u + 2u * (400u - 3u));
}

TEST(HolmeKimTest, InvalidTriadProbabilityThrows) {
  util::Rng rng(3);
  EXPECT_THROW(HolmeKim({.num_nodes = 100,
                         .edges_per_node = 2,
                         .triad_probability = 1.5},
                        rng),
               std::invalid_argument);
  EXPECT_THROW(HolmeKim({.num_nodes = 100,
                         .edges_per_node = 2,
                         .triad_probability = -0.1},
                        rng),
               std::invalid_argument);
}

TEST(HolmeKimTest, ConnectedByConstruction) {
  util::Rng rng(4);
  const auto g = HolmeKim(
      {.num_nodes = 500, .edges_per_node = 2, .triad_probability = 0.7}, rng);
  EXPECT_EQ(graph::ConnectedComponents(g).count, 1u);
}

// ---------- Forest fire ----------

TEST(ForestFireTest, ConnectedAndNonTrivial) {
  util::Rng rng(5);
  const auto g =
      ForestFire({.num_nodes = 1000, .burn_probability = 0.4}, rng);
  EXPECT_EQ(g.NumNodes(), 1000u);
  EXPECT_GE(g.NumEdges(), 999u);  // at least the ambassador links
  EXPECT_EQ(graph::ConnectedComponents(g).count, 1u);
}

TEST(ForestFireTest, HigherBurnProbabilityDensifies) {
  util::Rng a(6), b(6);
  const auto sparse =
      ForestFire({.num_nodes = 2000, .burn_probability = 0.2}, a);
  const auto dense =
      ForestFire({.num_nodes = 2000, .burn_probability = 0.45}, b);
  EXPECT_GT(dense.NumEdges(), sparse.NumEdges());
}

TEST(ForestFireTest, BurnCapLimitsDegreeOfArrivals) {
  util::Rng rng(7);
  const auto g = ForestFire(
      {.num_nodes = 500, .burn_probability = 0.6, .max_burn_per_node = 10},
      rng);
  // Each arrival creates at most 10 links, so |E| <= 10(n-1).
  EXPECT_LE(g.NumEdges(), 10u * 499u);
}

TEST(ForestFireTest, InvalidParamsThrow) {
  util::Rng rng(8);
  EXPECT_THROW(ForestFire({.num_nodes = 0, .burn_probability = 0.5}, rng),
               std::invalid_argument);
  EXPECT_THROW(ForestFire({.num_nodes = 10, .burn_probability = 1.0}, rng),
               std::invalid_argument);
  EXPECT_THROW(ForestFire({.num_nodes = 10, .burn_probability = 0.0}, rng),
               std::invalid_argument);
}

// ---------- Watts–Strogatz ----------

TEST(WattsStrogatzTest, ZeroBetaIsRingLattice) {
  util::Rng rng(9);
  const auto g = WattsStrogatz(
      {.num_nodes = 50, .lattice_degree = 4, .rewire_probability = 0.0}, rng);
  EXPECT_EQ(g.NumEdges(), 100u);  // n*k/2
  for (graph::NodeId v = 0; v < 50; ++v) EXPECT_EQ(g.Degree(v), 4u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(0, 49));
}

TEST(WattsStrogatzTest, RewiringPreservesEdgeCount) {
  util::Rng rng(10);
  const auto g = WattsStrogatz(
      {.num_nodes = 200, .lattice_degree = 6, .rewire_probability = 0.3},
      rng);
  EXPECT_EQ(g.NumEdges(), 600u);
}

TEST(WattsStrogatzTest, RewiringLowersClustering) {
  util::Rng a(11), b(11);
  const auto lattice = WattsStrogatz(
      {.num_nodes = 500, .lattice_degree = 6, .rewire_probability = 0.0}, a);
  const auto rewired = WattsStrogatz(
      {.num_nodes = 500, .lattice_degree = 6, .rewire_probability = 0.8}, b);
  EXPECT_GT(graph::AverageClusteringCoefficient(lattice),
            graph::AverageClusteringCoefficient(rewired) + 0.2);
}

TEST(WattsStrogatzTest, InvalidParamsThrow) {
  util::Rng rng(12);
  EXPECT_THROW(WattsStrogatz({.num_nodes = 10, .lattice_degree = 3}, rng),
               std::invalid_argument);  // odd k
  EXPECT_THROW(WattsStrogatz({.num_nodes = 4, .lattice_degree = 4}, rng),
               std::invalid_argument);  // n <= k
}

// ---------- Erdős–Rényi ----------

TEST(ErdosRenyiTest, ExactEdgeCount) {
  util::Rng rng(13);
  const auto g = ErdosRenyi({.num_nodes = 100, .num_edges = 250}, rng);
  EXPECT_EQ(g.NumEdges(), 250u);
}

TEST(ErdosRenyiTest, CompleteGraphPossible) {
  util::Rng rng(14);
  const auto g = ErdosRenyi({.num_nodes = 10, .num_edges = 45}, rng);
  EXPECT_EQ(g.NumEdges(), 45u);
}

TEST(ErdosRenyiTest, TooManyEdgesThrows) {
  util::Rng rng(15);
  EXPECT_THROW(ErdosRenyi({.num_nodes = 10, .num_edges = 46}, rng),
               std::invalid_argument);
}

// ---------- Planted partition ----------

TEST(PlantedPartitionTest, CommunityLabelsBalanced) {
  util::Rng rng(16);
  const auto r = PlantedPartition(
      {.num_nodes = 90, .num_communities = 3, .p_in = 0.2, .p_out = 0.01},
      rng);
  std::vector<int> sizes(3, 0);
  for (auto c : r.community_of) ++sizes[c];
  EXPECT_EQ(sizes[0], 30);
  EXPECT_EQ(sizes[1], 30);
  EXPECT_EQ(sizes[2], 30);
}

TEST(PlantedPartitionTest, IntraDenserThanInter) {
  util::Rng rng(17);
  const auto r = PlantedPartition(
      {.num_nodes = 600, .num_communities = 2, .p_in = 0.05, .p_out = 0.005},
      rng);
  std::uint64_t intra = 0, inter = 0;
  for (const auto& e : r.graph.Edges()) {
    if (r.community_of[e.u] == r.community_of[e.v]) {
      ++intra;
    } else {
      ++inter;
    }
  }
  EXPECT_GT(intra, inter * 2);
}

TEST(PlantedPartitionTest, EdgeCountNearExpectation) {
  util::Rng rng(18);
  const double p = 0.02;
  const auto r = PlantedPartition(
      {.num_nodes = 1000, .num_communities = 1, .p_in = p, .p_out = 0.0},
      rng);
  const double expected = p * 1000.0 * 999.0 / 2.0;
  EXPECT_NEAR(static_cast<double>(r.graph.NumEdges()), expected,
              expected * 0.1);
}

TEST(PlantedPartitionTest, ZeroProbabilitiesGiveEmptyGraph) {
  util::Rng rng(19);
  const auto r = PlantedPartition(
      {.num_nodes = 50, .num_communities = 2, .p_in = 0.0, .p_out = 0.0},
      rng);
  EXPECT_EQ(r.graph.NumEdges(), 0u);
}

TEST(PlantedPartitionTest, InvalidParamsThrow) {
  util::Rng rng(20);
  EXPECT_THROW(
      PlantedPartition({.num_nodes = 10, .num_communities = 0}, rng),
      std::invalid_argument);
  EXPECT_THROW(PlantedPartition({.num_nodes = 2, .num_communities = 5}, rng),
               std::invalid_argument);
  EXPECT_THROW(PlantedPartition({.num_nodes = 10,
                                 .num_communities = 2,
                                 .p_in = 1.5},
                                rng),
               std::invalid_argument);
}

// ---------- Dataset registry (Table I calibration) ----------

TEST(DatasetsTest, RegistryHasSevenGraphsInPaperOrder) {
  const auto& all = TableOneDatasets();
  ASSERT_EQ(all.size(), 7u);
  EXPECT_EQ(all[0].name, "facebook");
  EXPECT_EQ(all[1].name, "ca-HepTh");
  EXPECT_EQ(all[6].name, "synthetic");
}

TEST(DatasetsTest, LookupByNameAndUnknownThrows) {
  EXPECT_EQ(DatasetByName("soc-Epinions").nodes, 75'877u);
  EXPECT_THROW(DatasetByName("nope"), std::invalid_argument);
}

TEST(DatasetsTest, MakeDatasetDeterministic) {
  const auto g1 = MakeDataset("synthetic", 7);
  const auto g2 = MakeDataset("synthetic", 7);
  EXPECT_EQ(g1.NumEdges(), g2.NumEdges());
  EXPECT_EQ(g1.Edges(), g2.Edges());
}

// Parameterized calibration check: node count exact, edge count within 2%,
// clustering within a regime-appropriate band of the published value.
class DatasetCalibrationTest : public ::testing::TestWithParam<int> {};

TEST_P(DatasetCalibrationTest, MatchesTableOne) {
  const DatasetSpec& spec =
      TableOneDatasets()[static_cast<std::size_t>(GetParam())];
  const auto g = MakeDataset(spec, 42);
  EXPECT_EQ(g.NumNodes(), spec.nodes);
  const double edge_err =
      std::abs(static_cast<double>(g.NumEdges()) -
               static_cast<double>(spec.paper_edges)) /
      static_cast<double>(spec.paper_edges);
  EXPECT_LT(edge_err, 0.02) << spec.name << " edges=" << g.NumEdges();
  const double cc = graph::AverageClusteringCoefficient(g);
  // ca-AstroPh saturates (see datasets.cpp); the rest land within 25%
  // relative or 0.01 absolute (the near-zero regime: BA's intrinsic
  // clustering at n=10K is ~0.0075, same "essentially unclustered" class as
  // the paper's 0.0018) of the published clustering.
  if (spec.name != "ca-AstroPh") {
    EXPECT_LT(std::abs(cc - spec.paper_clustering),
              std::max(0.25 * spec.paper_clustering, 0.01))
        << spec.name << " clustering=" << cc;
  } else {
    EXPECT_GT(cc, 0.2) << "ca-AstroPh should stay in a high-clustering regime";
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetCalibrationTest,
                         ::testing::Range(0, 7));

}  // namespace
}  // namespace rejecto::gen
