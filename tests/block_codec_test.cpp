// graph/block_codec.h: the delta+varint block codec must round-trip every
// sorted duplicate-free input exactly — random and adversarial — be
// byte-deterministic, reject malformed bytes instead of decoding garbage,
// and produce bit-identical rows from the scalar and AVX2 decoders.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "graph/block_codec.h"
#include "graph/types.h"
#include "util/buffer.h"
#include "util/rng.h"
#include "util/simd.h"

namespace rejecto {
namespace {

using graph::DecodeAdjBlock;
using graph::EncodeAdjBlock;
using graph::NodeId;

struct Block {
  NodeId first_row = 0;
  std::vector<std::uint32_t> degrees;
  std::vector<NodeId> adj;
};

std::vector<unsigned char> Encode(const Block& b) {
  std::vector<unsigned char> out;
  EncodeAdjBlock(b.first_row, b.degrees, b.adj.data(), out);
  return out;
}

// Decodes and, on success, re-flattens into (degrees, adj) for comparison.
bool Decode(const std::vector<unsigned char>& bytes, NodeId first_row,
            std::uint32_t rows, std::vector<std::uint32_t>* degrees,
            std::vector<NodeId>* adj, std::string* error = nullptr) {
  util::AlignedVector<std::uint32_t> row_offsets;
  util::AlignedVector<NodeId> decoded;
  if (!DecodeAdjBlock(bytes.data(), bytes.size(), first_row, rows,
                      row_offsets, decoded, error)) {
    return false;
  }
  EXPECT_EQ(row_offsets.size(), rows + 1u);
  degrees->clear();
  for (std::uint32_t r = 0; r < rows; ++r) {
    degrees->push_back(row_offsets[r + 1] - row_offsets[r]);
  }
  adj->assign(decoded.begin(), decoded.end());
  return true;
}

void ExpectRoundTrip(const Block& b) {
  const auto bytes = Encode(b);
  std::vector<std::uint32_t> degrees;
  std::vector<NodeId> adj;
  std::string error;
  ASSERT_TRUE(Decode(bytes, b.first_row,
                     static_cast<std::uint32_t>(b.degrees.size()), &degrees,
                     &adj, &error))
      << error;
  EXPECT_EQ(degrees, b.degrees);
  EXPECT_EQ(adj, b.adj);
}

// A random block of `rows` rows starting at first_row: each row draws a
// degree in [0, max_deg] and sorted duplicate-free neighbors from
// [lo, lo + span).
Block RandomBlock(util::Rng& rng, NodeId first_row, std::uint32_t rows,
                  std::uint32_t max_deg, NodeId lo, NodeId span) {
  Block b;
  b.first_row = first_row;
  for (std::uint32_t r = 0; r < rows; ++r) {
    const std::uint32_t deg =
        static_cast<std::uint32_t>(rng.NextUInt(max_deg + 1));
    std::vector<NodeId> row;
    while (row.size() < deg) {
      const NodeId v = lo + static_cast<NodeId>(rng.NextUInt(span));
      row.push_back(v);
      std::sort(row.begin(), row.end());
      row.erase(std::unique(row.begin(), row.end()), row.end());
    }
    b.degrees.push_back(static_cast<std::uint32_t>(row.size()));
    b.adj.insert(b.adj.end(), row.begin(), row.end());
  }
  return b;
}

// ---------- round trips ----------

TEST(BlockCodecTest, RandomBlocksRoundTripAcrossSpansAndModes) {
  const auto prev = util::simd::ActiveMode();
  for (const auto mode :
       {util::simd::SimdMode::kScalar, util::simd::SimdMode::kAvx2}) {
    util::simd::SetModeForTest(mode);
    util::Rng rng(0xb10cULL + static_cast<std::uint64_t>(mode));
    for (const std::uint32_t rows : {64u, 128u, 199u, 256u}) {
      for (int rep = 0; rep < 8; ++rep) {
        // Mix local (BFS-like, 1-byte gaps) and scattered (multi-byte
        // varint) neighborhoods.
        const NodeId first_row = static_cast<NodeId>(rep) * rows;
        const NodeId span = rep % 2 == 0 ? 300 : 2'000'000;
        ExpectRoundTrip(RandomBlock(rng, first_row, rows, 12, 0, span));
      }
    }
  }
  util::simd::SetModeForTest(prev);
}

TEST(BlockCodecTest, AllEmptyRowsRoundTrip) {
  Block b;
  b.first_row = 512;
  b.degrees.assign(128, 0);
  const auto bytes = Encode(b);
  // 128 zero degrees encode to one varint byte each; nothing else.
  EXPECT_EQ(bytes.size(), 128u);
  ExpectRoundTrip(b);
}

TEST(BlockCodecTest, MaxDegreeRowRoundTrips) {
  // One row carrying tens of thousands of neighbors (a celebrity row) next
  // to empty rows: the degree run needs multi-byte varints.
  Block b;
  b.first_row = 0;
  b.degrees.assign(64, 0);
  b.degrees[1] = 40'000;
  for (NodeId v = 0; v < 40'000; ++v) b.adj.push_back(2 * v + 1);
  ExpectRoundTrip(b);
}

TEST(BlockCodecTest, NegativeFirstDeltasRoundTrip) {
  // Rows whose first neighbor PRECEDES the row id — the reason the first
  // delta is signed. Includes the extreme case: row id near the top of the
  // id space pointing at node 0.
  Block b;
  b.first_row = 1'000'000;
  b.degrees = {3, 1, 2, 0};
  b.adj = {0, 5, 999'999,            // row 1'000'000: all before the row
           1'000'001,                // row 1'000'001: tight forward
           999'000, 2'000'000};      // row 1'000'002: both directions
  ExpectRoundTrip(b);

  Block extreme;
  extreme.first_row = std::numeric_limits<NodeId>::max() - 70;
  extreme.degrees = {1};
  extreme.adj = {0};
  ExpectRoundTrip(extreme);
}

TEST(BlockCodecTest, BlockBoundaryRowsDecodeIndependently) {
  // Self-delimiting blocks: two consecutive blocks encoded separately must
  // decode independently of each other, with rows that straddle the
  // boundary by referencing ids in the other block.
  Block a;
  a.first_row = 0;
  a.degrees = {2, 1};
  a.adj = {1, 130, 131};  // forward refs into block b's row range
  Block b;
  b.first_row = 2;
  b.degrees = {1, 2};
  b.adj = {0, 1, 3};      // back refs into block a's row range
  ExpectRoundTrip(a);
  ExpectRoundTrip(b);
}

TEST(BlockCodecTest, EncodeIsByteDeterministic) {
  util::Rng rng(77);
  const Block b = RandomBlock(rng, 128, 128, 9, 0, 5'000);
  EXPECT_EQ(Encode(b), Encode(b));
}

TEST(BlockCodecTest, EncoderRejectsUnsortedAndDuplicateRows) {
  Block unsorted;
  unsorted.first_row = 0;
  unsorted.degrees = {2};
  unsorted.adj = {5, 3};
  EXPECT_THROW(Encode(unsorted), std::invalid_argument);

  Block dup;
  dup.first_row = 0;
  dup.degrees = {2};
  dup.adj = {4, 4};
  EXPECT_THROW(Encode(dup), std::invalid_argument);
}

// ---------- malformed bytes ----------

TEST(BlockCodecTest, EveryTruncationIsRejectedWithDiagnostic) {
  util::Rng rng(99);
  const Block b = RandomBlock(rng, 0, 64, 6, 0, 100'000);
  const auto bytes = Encode(b);
  std::vector<std::uint32_t> degrees;
  std::vector<NodeId> adj;
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::string error;
    const std::vector<unsigned char> torn(bytes.begin(),
                                          bytes.begin() +
                                              static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(Decode(torn, 0, 64, &degrees, &adj, &error))
        << "cut=" << cut;
    EXPECT_FALSE(error.empty()) << "cut=" << cut;
  }
}

TEST(BlockCodecTest, TrailingGarbageIsRejected) {
  util::Rng rng(101);
  const Block b = RandomBlock(rng, 0, 64, 4, 0, 1'000);
  auto bytes = Encode(b);
  bytes.push_back(0x00);
  std::vector<std::uint32_t> degrees;
  std::vector<NodeId> adj;
  std::string error;
  EXPECT_FALSE(Decode(bytes, 0, 64, &degrees, &adj, &error));
  EXPECT_FALSE(error.empty());
}

TEST(BlockCodecTest, NonIncreasingGapBytesAreRejected) {
  // A hand-built payload whose second gap byte is the varint for gap-1 = 0
  // is LEGAL (gap 1); the malformed case is a row that overflows the id
  // space via a huge gap — the decoder must fail, not wrap.
  Block b;
  b.first_row = 0;
  b.degrees = {2};
  b.adj = {std::numeric_limits<NodeId>::max() - 2,
           std::numeric_limits<NodeId>::max() - 1};
  auto bytes = Encode(b);
  // Inflate the final gap byte stream: replace the last varint with one
  // whose value pushes the second neighbor past the 32-bit id space.
  bytes.back() = 0x7f;          // gap-1 = 127 from the max-2 base overflows
  std::vector<std::uint32_t> degrees;
  std::vector<NodeId> adj;
  std::string error;
  EXPECT_FALSE(Decode(bytes, 0, 1, &degrees, &adj, &error));
  EXPECT_FALSE(error.empty());
}

// ---------- scalar/AVX2 equivalence ----------

TEST(BlockCodecTest, ScalarAndAvx2DecodersAreBitIdentical) {
  util::Rng rng(0x51adULL);
  const auto prev = util::simd::ActiveMode();
  for (int rep = 0; rep < 12; ++rep) {
    // Alternate dense-local and scattered blocks so both the batch
    // single-byte fast path and the continuation-byte fallback run.
    const Block b = RandomBlock(rng, 0, 128, 10, 0,
                                rep % 2 == 0 ? 256 : 3'000'000'000ULL);
    const auto bytes = Encode(b);
    std::vector<std::uint32_t> deg_scalar, deg_avx2;
    std::vector<NodeId> adj_scalar, adj_avx2;
    util::simd::SetModeForTest(util::simd::SimdMode::kScalar);
    ASSERT_TRUE(Decode(bytes, 0, 128, &deg_scalar, &adj_scalar));
    util::simd::SetModeForTest(util::simd::SimdMode::kAvx2);
    ASSERT_TRUE(Decode(bytes, 0, 128, &deg_avx2, &adj_avx2));
    EXPECT_EQ(deg_scalar, deg_avx2);
    EXPECT_EQ(adj_scalar, adj_avx2);
  }
  util::simd::SetModeForTest(prev);
}

}  // namespace
}  // namespace rejecto
