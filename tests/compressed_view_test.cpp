// graph/compressed_view.h: the RJSNAP02 out-of-core reader. Opening must
// never expand the adjacency; Materialize and the DecodeCursor must agree
// exactly with the uncompressed load; corruption is caught per block with a
// section+offset diagnostic that tells a torn file from bit rot; and the
// on-disk format itself is pinned by a golden file.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "gen/holme_kim.h"
#include "gen/synthetic_stream.h"
#include "graph/builder.h"
#include "graph/compressed_view.h"
#include "graph/layout.h"
#include "graph/snapshot.h"
#include "graph/snapshot_format.h"
#include "sim/scenario.h"
#include "util/failpoint.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace rejecto {
namespace {

namespace fs = std::filesystem;

using graph::AugmentedGraph;
using graph::CompressedGraphView;
using graph::DecodeCursor;
using graph::LayoutPolicy;
using graph::LoadSnapshot;
using graph::NodeId;
using graph::Snapshot;
using graph::SnapshotFormat;
using graph::SnapshotOptions;

class CompressedViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("rejecto_cview_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

AugmentedGraph RandomScenarioGraph(std::uint64_t seed, NodeId n = 400) {
  util::Rng rng(seed);
  const auto legit = gen::HolmeKim({.num_nodes = n, .edges_per_node = 3}, rng);
  sim::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.num_fakes = n / 10;
  return sim::BuildScenario(legit, cfg).graph;
}

SnapshotOptions V2Options(std::uint32_t block_rows = 128) {
  SnapshotOptions o;
  o.format = SnapshotFormat::kRjsnap02;
  o.block_rows = block_rows;
  return o;
}

std::vector<unsigned char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::uint32_t GetU32(const std::vector<unsigned char>& b, std::size_t at) {
  return static_cast<std::uint32_t>(b[at]) |
         (static_cast<std::uint32_t>(b[at + 1]) << 8) |
         (static_cast<std::uint32_t>(b[at + 2]) << 16) |
         (static_cast<std::uint32_t>(b[at + 3]) << 24);
}

std::uint64_t GetU64(const std::vector<unsigned char>& b, std::size_t at) {
  return static_cast<std::uint64_t>(GetU32(b, at)) |
         (static_cast<std::uint64_t>(GetU32(b, at + 4)) << 32);
}

// Locates section `kind` in a known-good image (test-side re-parse).
bool FindSection(const std::vector<unsigned char>& b, std::uint32_t kind,
                 std::uint64_t* offset, std::uint64_t* length) {
  const std::uint32_t count = GetU32(b, 8);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t at = 16 + 24 * static_cast<std::size_t>(i);
    if (GetU32(b, at) == kind) {
      *offset = GetU64(b, at + 8);
      *length = GetU64(b, at + 16);
      return true;
    }
  }
  return false;
}

// ---------- exactness ----------

TEST_F(CompressedViewTest, V2LoadMatchesV1LoadExactly) {
  const AugmentedGraph g = RandomScenarioGraph(31);
  const std::string v1 = Path("g.snap");
  const std::string v2 = Path("g.snap2");
  graph::SaveSnapshotWithPolicy(v1, g, LayoutPolicy::kBfs);
  graph::SaveSnapshotWithPolicy(v2, g, LayoutPolicy::kBfs, V2Options());
  const Snapshot s1 = LoadSnapshot(v1);
  const Snapshot s2 = LoadSnapshot(v2);
  EXPECT_EQ(s1.graph, s2.graph);
  EXPECT_EQ(s1.layout, s2.layout);
}

TEST_F(CompressedViewTest, ViewMetadataAndMaterializeMatchTheGraph) {
  const AugmentedGraph g = RandomScenarioGraph(37, 600);
  const std::string path = Path("g.snap2");
  graph::SaveSnapshot(path, g, graph::Layout{}, V2Options());

  const auto view = CompressedGraphView::Open(path);
  EXPECT_EQ(view.NumNodes(), g.NumNodes());
  EXPECT_EQ(view.NumEdges(), g.Friendships().NumEdges());
  EXPECT_EQ(view.NumArcs(), g.Rejections().NumArcs());
  // The meta maxima must be EXACT (ExtendedKl's gain bound derives from
  // them; a looser bound would change bucket geometry and break
  // bit-identity with the in-RAM path).
  EXPECT_EQ(view.MaxFriendshipDegree(), g.MaxFriendshipDegree());
  EXPECT_EQ(view.MaxRejectionDegree(), g.MaxRejectionDegree());
  EXPECT_TRUE(view.StoredLayout().IsIdentity());

  const Snapshot serial = view.Materialize();
  EXPECT_EQ(serial.graph, g);
  util::ThreadPool pool(4);
  EXPECT_EQ(view.Materialize(&pool).graph, g);
}

TEST_F(CompressedViewTest, AllSupportedBlockSpansRoundTrip) {
  const AugmentedGraph g = RandomScenarioGraph(41, 500);
  for (const std::uint32_t rows : {64u, 100u, 128u, 256u}) {
    const std::string path = Path("g" + std::to_string(rows) + ".snap2");
    graph::SaveSnapshot(path, g, graph::Layout{}, V2Options(rows));
    const auto view = CompressedGraphView::Open(path);
    EXPECT_EQ(view.BlockRows(), rows);
    EXPECT_EQ(view.Materialize().graph, g);
  }
}

TEST_F(CompressedViewTest, EmptyAndIsolatedGraphsSurvive) {
  graph::GraphBuilder b(5);
  b.AddFriendship(1, 3);  // 0, 2, 4 isolated
  const AugmentedGraph g = b.BuildAugmented();
  graph::SaveSnapshot(Path("iso.snap2"), g, graph::Layout{}, V2Options());
  EXPECT_EQ(LoadSnapshot(Path("iso.snap2")).graph, g);

  const AugmentedGraph empty = graph::GraphBuilder(0).BuildAugmented();
  graph::SaveSnapshot(Path("empty.snap2"), empty, graph::Layout{},
                      V2Options());
  EXPECT_EQ(LoadSnapshot(Path("empty.snap2")).graph, empty);
}

TEST_F(CompressedViewTest, WritesAreByteDeterministic) {
  const AugmentedGraph g = RandomScenarioGraph(43);
  graph::SaveSnapshot(Path("a.snap2"), g, graph::Layout{}, V2Options());
  graph::SaveSnapshot(Path("b.snap2"), g, graph::Layout{}, V2Options());
  EXPECT_EQ(ReadFileBytes(Path("a.snap2")), ReadFileBytes(Path("b.snap2")));
}

// ---------- the decode cursor ----------

TEST_F(CompressedViewTest, CursorRowsMatchTheGraphEverywhere) {
  const AugmentedGraph g = RandomScenarioGraph(47, 700);
  const std::string path = Path("g.snap2");
  graph::SaveSnapshot(path, g, graph::Layout{}, V2Options());
  const auto view = CompressedGraphView::Open(path);
  DecodeCursor cursor(view);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const auto fr = cursor.Friends(v);
    ASSERT_TRUE(std::equal(fr.begin(), fr.end(),
                           g.Friendships().Neighbors(v).begin(),
                           g.Friendships().Neighbors(v).end()))
        << "friend row " << v;
    const auto out = cursor.Rejectees(v);
    ASSERT_TRUE(std::equal(out.begin(), out.end(),
                           g.Rejections().Rejectees(v).begin(),
                           g.Rejections().Rejectees(v).end()))
        << "out row " << v;
    const auto in = cursor.Rejectors(v);
    ASSERT_TRUE(std::equal(in.begin(), in.end(),
                           g.Rejections().Rejectors(v).begin(),
                           g.Rejections().Rejectors(v).end()))
        << "in row " << v;
    EXPECT_EQ(cursor.FriendDegree(v), fr.size());
    EXPECT_EQ(cursor.OutDegree(v), out.size());
    EXPECT_EQ(cursor.InDegree(v), in.size());
  }
}

TEST_F(CompressedViewTest, TinyCacheStaysCorrectUnderThrashing) {
  const AugmentedGraph g = RandomScenarioGraph(53, 900);
  const std::string path = Path("g.snap2");
  graph::SaveSnapshot(path, g, graph::Layout{}, V2Options(64));
  const auto view = CompressedGraphView::Open(path);
  // cache_rows = 1 clamps to the 4-block floor: far fewer blocks than the
  // graph has, so the LRU evicts constantly. Random access must still be
  // exact.
  DecodeCursor cursor(view, /*cache_rows=*/1);
  util::Rng rng(5);
  for (int i = 0; i < 5'000; ++i) {
    const NodeId v = static_cast<NodeId>(rng.NextUInt(g.NumNodes()));
    const auto fr = cursor.Friends(v);
    ASSERT_TRUE(std::equal(fr.begin(), fr.end(),
                           g.Friendships().Neighbors(v).begin(),
                           g.Friendships().Neighbors(v).end()))
        << "friend row " << v << " after " << i << " random accesses";
  }
  EXPECT_GT(cursor.BlocksDecoded(), 0u);
}

TEST_F(CompressedViewTest, SequentialScanHitsTheCache) {
  const AugmentedGraph g = RandomScenarioGraph(59, 600);
  const std::string path = Path("g.snap2");
  graph::SaveSnapshot(path, g, graph::Layout{}, V2Options(128));
  const auto view = CompressedGraphView::Open(path);
  DecodeCursor cursor(view);
  for (NodeId v = 0; v < g.NumNodes(); ++v) cursor.Friends(v);
  // A sequential scan decodes each friendship block exactly once.
  EXPECT_EQ(cursor.BlocksDecoded(), view.NumBlocks());
  EXPECT_EQ(cursor.CacheHits(),
            static_cast<std::uint64_t>(g.NumNodes()) - view.NumBlocks());
}

// ---------- streamed writer vs in-RAM writer ----------

TEST_F(CompressedViewTest, StreamedGeneratorMatchesInRamEncoderByteForByte) {
  // The generator streams rows straight into the writer; saving its
  // materialized graph through the in-RAM v2 path must produce the exact
  // same file — one encoder, two feeders.
  gen::StreamSnapshotConfig cfg;
  cfg.num_nodes = 3'000;
  cfg.friendship_stubs = 5;
  cfg.rejection_stubs = 2;
  cfg.locality_window = 32;
  cfg.seed = 17;
  cfg.block_rows = 64;
  const std::string streamed = Path("streamed.snap2");
  const auto stats = gen::WriteSyntheticCompressedSnapshot(streamed, cfg);
  EXPECT_GT(stats.num_edges, 0u);
  EXPECT_GT(stats.num_arcs, 0u);

  const Snapshot snap = LoadSnapshot(streamed);
  EXPECT_EQ(snap.graph.Friendships().NumEdges(), stats.num_edges);
  EXPECT_EQ(snap.graph.Rejections().NumArcs(), stats.num_arcs);

  const std::string resaved = Path("resaved.snap2");
  graph::SaveSnapshot(resaved, snap.graph, graph::Layout{}, V2Options(64));
  EXPECT_EQ(ReadFileBytes(streamed), ReadFileBytes(resaved));

  // Determinism: the same config streams the same bytes again.
  const std::string again = Path("again.snap2");
  gen::WriteSyntheticCompressedSnapshot(again, cfg);
  EXPECT_EQ(ReadFileBytes(streamed), ReadFileBytes(again));
}

// ---------- golden pin ----------

// The deterministic graph behind tests/golden/graph.snap2. Touch only
// together with a regenerated golden (REJECTO_REGEN_GOLDEN=1).
AugmentedGraph GoldenGraph() {
  graph::GraphBuilder b(9);
  b.AddFriendship(0, 1);
  b.AddFriendship(0, 2);
  b.AddFriendship(1, 2);
  b.AddFriendship(3, 4);
  b.AddFriendship(4, 5);
  b.AddFriendship(6, 0);
  b.AddRejection(7, 0);
  b.AddRejection(7, 3);
  b.AddRejection(5, 7);
  b.AddRejection(8, 7);
  return b.BuildAugmented();
}

TEST_F(CompressedViewTest, GoldenV2PinReloadsEqualAndByteIdentical) {
  const std::string golden =
      std::string(REJECTO_GOLDEN_DIR) + "/graph.snap2";
  if (util::GetEnvBool("REJECTO_REGEN_GOLDEN", false)) {
    graph::SaveSnapshot(golden, GoldenGraph(), graph::Layout{}, V2Options());
    GTEST_SKIP() << "golden v2 snapshot regenerated at " << golden;
  }
  const Snapshot snap = LoadSnapshot(golden);
  EXPECT_EQ(snap.graph, GoldenGraph())
      << "golden v2 snapshot no longer decodes to the pinned graph";
  EXPECT_TRUE(snap.layout.IsIdentity());

  // Byte-identity both ways pins the FORMAT (container + block codec), not
  // just the decode. If the wire format legitimately evolves, bump the
  // magic and regenerate with REJECTO_REGEN_GOLDEN=1.
  graph::SaveSnapshot(Path("regen.snap2"), GoldenGraph(), graph::Layout{},
                      V2Options());
  EXPECT_EQ(ReadFileBytes(Path("regen.snap2")), ReadFileBytes(golden));
}

// ---------- corruption model: torn file vs bit rot ----------

TEST_F(CompressedViewTest, TruncationAndCorruptionAreDistinctErrors) {
  const AugmentedGraph g = RandomScenarioGraph(61, 300);
  const std::string path = Path("g.snap2");
  graph::SaveSnapshot(path, g, graph::Layout{}, V2Options());
  const auto bytes = ReadFileBytes(path);

  std::uint64_t blob_off = 0, blob_len = 0;
  ASSERT_TRUE(FindSection(bytes, graph::snapfmt::kFrBlocks, &blob_off,
                          &blob_len));
  ASSERT_GT(blob_len, 0u);

  // A file cut inside the adjacency blob is reported as TRUNCATION, naming
  // the section and where it should have ended.
  const std::string torn = Path("torn.snap2");
  WriteFileBytes(torn, std::vector<unsigned char>(
                           bytes.begin(),
                           bytes.begin() + static_cast<std::ptrdiff_t>(
                                               blob_off + blob_len / 2)));
  try {
    LoadSnapshot(torn);
    FAIL() << "torn blob accepted";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
    EXPECT_NE(what.find("offset"), std::string::npos) << what;
    EXPECT_EQ(what.find("CRC mismatch"), std::string::npos) << what;
  }

  // The same bytes present but damaged is reported as CORRUPTION (a block
  // CRC mismatch), again naming section + block + offset.
  auto flipped = bytes;
  flipped[blob_off + blob_len / 2] ^= 0x20;
  const std::string evil = Path("flipped.snap2");
  WriteFileBytes(evil, flipped);
  try {
    LoadSnapshot(evil);
    FAIL() << "corrupt blob accepted";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("CRC mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("block"), std::string::npos) << what;
    EXPECT_NE(what.find("offset"), std::string::npos) << what;
    EXPECT_EQ(what.find("truncated"), std::string::npos) << what;
  }
}

TEST_F(CompressedViewTest, BlobCorruptionIsLazyCaughtOnFirstDecode) {
  const AugmentedGraph g = RandomScenarioGraph(67, 300);
  const std::string path = Path("g.snap2");
  graph::SaveSnapshot(path, g, graph::Layout{}, V2Options());
  auto bytes = ReadFileBytes(path);
  std::uint64_t blob_off = 0, blob_len = 0;
  ASSERT_TRUE(FindSection(bytes, graph::snapfmt::kInBlocks, &blob_off,
                          &blob_len));
  bytes[blob_off + blob_len - 1] ^= 0x01;
  WriteFileBytes(path, bytes);

  // Opening succeeds: blob sections carry no whole-section CRC, so nothing
  // pages them in. The damage surfaces at the first decode of the affected
  // block — and only that block.
  const auto view = CompressedGraphView::Open(path);
  DecodeCursor cursor(view);
  EXPECT_NO_THROW(cursor.Friends(0));  // different CSR, untouched bytes
  const NodeId last = g.NumNodes() - 1;
  EXPECT_THROW(cursor.Rejectors(last), std::runtime_error);
}

TEST_F(CompressedViewTest, IndexBitFlipsAreRejectedAtOpen) {
  const AugmentedGraph g = RandomScenarioGraph(71, 300);
  const std::string path = Path("g.snap2");
  graph::SaveSnapshot(path, g, graph::Layout{}, V2Options());
  auto bytes = ReadFileBytes(path);
  std::uint64_t idx_off = 0, idx_len = 0;
  ASSERT_TRUE(FindSection(bytes, graph::snapfmt::kFrIndex, &idx_off,
                          &idx_len));
  bytes[idx_off + idx_len / 2] ^= 0x10;
  WriteFileBytes(path, bytes);
  // Index sections ARE in the open-time CRC sweep (they are tiny).
  EXPECT_THROW(CompressedGraphView::Open(path), std::runtime_error);
}

// ---------- failpoints ----------

TEST_F(CompressedViewTest, V2WriteAndRenameFailpointsLeaveNoPartialFile) {
  const AugmentedGraph g = GoldenGraph();
  const std::string path = Path("g.snap2");
  {
    util::ScopedFailpoint fp("snapshot/write",
                             util::FailpointPolicy::OnNth(1));
    EXPECT_THROW(
        graph::SaveSnapshot(path, g, graph::Layout{}, V2Options()),
        std::runtime_error);
  }
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  {
    util::ScopedFailpoint fp("snapshot/rename",
                             util::FailpointPolicy::OnNth(1));
    EXPECT_THROW(
        graph::SaveSnapshot(path, g, graph::Layout{}, V2Options()),
        std::runtime_error);
  }
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  graph::SaveSnapshot(path, g, graph::Layout{}, V2Options());
  EXPECT_EQ(LoadSnapshot(path).graph, g);
}

TEST_F(CompressedViewTest, V2OpenFailpointThrowsAndMapFailpointFallsBack) {
  const AugmentedGraph g = RandomScenarioGraph(73, 200);
  const std::string path = Path("g.snap2");
  graph::SaveSnapshot(path, g, graph::Layout{}, V2Options());
  {
    util::ScopedFailpoint fp("snapshot/open",
                             util::FailpointPolicy::OnNth(1));
    EXPECT_THROW(LoadSnapshot(path), std::runtime_error);
  }
  {
    // mmap "fails": the read() fallback must still decode the identical
    // snapshot.
    util::ScopedFailpoint fp("snapshot/map", util::FailpointPolicy::OnNth(1));
    EXPECT_EQ(LoadSnapshot(path).graph, g);
  }
}

}  // namespace
}  // namespace rejecto
