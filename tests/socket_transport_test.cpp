// Multiprocess socket-backend tests: real forked worker processes serving
// RJNET001 frames over UNIX-domain sockets, with the master running the
// full distributed detection against them. Proves the ISSUE acceptance for
// the real backend: detection over sockets is bit-identical to loopback,
// a worker killed mid-run (hard _Exit, indistinguishable from SIGKILL)
// triggers reconnect-then-failover, and a corrupted stream is torn down
// and resent on a fresh connection. Fork-based — excluded from the TSan
// lane (fork + threads don't mix under sanitizers).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "detect/iterative.h"
#include "engine/cluster.h"
#include "engine/dist_detector.h"
#include "engine/net_worker.h"
#include "gen/erdos_renyi.h"
#include "net/socket_transport.h"
#include "sim/scenario.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace rejecto::engine {
namespace {

std::string SockPath(const std::string& tag, int i) {
  return "/tmp/rejecto_sock_" + std::to_string(::getpid()) + "_" + tag +
         "_" + std::to_string(i) + ".sock";
}

// Forks a real worker process running the shard service on `endpoint`.
pid_t SpawnWorker(const std::string& endpoint,
                  const net::WorkerOptions& options = {}) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    int rc = 3;
    try {
      rc = RunShardWorker(endpoint, options);
    } catch (...) {
      rc = 2;
    }
    std::_Exit(rc);
  }
  return pid;
}

int WaitForExit(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
}

struct World {
  sim::Scenario scenario;
  detect::Seeds seeds;
  detect::IterativeConfig cfg;
};

World MakeWorld() {
  util::Rng rng(55);
  const auto legit =
      gen::ErdosRenyi({.num_nodes = 300, .num_edges = 1200}, rng);
  sim::ScenarioConfig scfg;
  scfg.seed = 5;
  scfg.num_fakes = 60;
  World w{sim::BuildScenario(legit, scfg), {}, {}};
  util::Rng seed_rng(6);
  w.seeds = w.scenario.SampleSeeds(8, 4, seed_rng);
  w.cfg.target_detections = 60;
  w.cfg.maar.seed = 3;
  return w;
}

ClusterConfig SocketConfigFor(const std::vector<std::string>& endpoints) {
  ClusterConfig cfg{.num_workers =
                        static_cast<std::uint32_t>(endpoints.size()),
                    .prefetch_batch = 32,
                    .buffer_capacity = 512};
  cfg.transport = net::TransportKind::kSocket;
  cfg.socket.endpoints = endpoints;
  // Generous real-time deadlines: CI machines stall; retries cover it.
  cfg.fetch.attempt_timeout_us = 2'000'000.0;
  cfg.fetch.publish_timeout_us = 5'000'000.0;
  cfg.fetch.backoff_us = 1'000.0;
  return cfg;
}

void ExpectSameDetection(const DistDetectionResult& got,
                         const DistDetectionResult& want) {
  EXPECT_EQ(got.detection.detected, want.detection.detected);
  EXPECT_EQ(got.detection.hit_target, want.detection.hit_target);
  ASSERT_EQ(got.detection.rounds.size(), want.detection.rounds.size());
  for (std::size_t r = 0; r < want.detection.rounds.size(); ++r) {
    EXPECT_EQ(got.detection.rounds[r].detected,
              want.detection.rounds[r].detected)
        << "round " << r;
    EXPECT_EQ(got.detection.rounds[r].ratio, want.detection.rounds[r].ratio)
        << "round " << r;
  }
}

TEST(SocketTransportTest, HelloRoundTripAndCleanShutdown) {
  const std::string path = SockPath("hello", 0);
  const pid_t worker = SpawnWorker("unix:" + path);
  ASSERT_GT(worker, 0);
  {
    net::SocketConfig cfg;
    cfg.endpoints = {"unix:" + path};
    net::SocketTransport transport(cfg);
    ASSERT_TRUE(transport.PeerConnected(0));

    net::Message req;
    req.type = net::MsgType::kHello;
    req.request_id = transport.NextRequestId();
    net::Message resp;
    double elapsed = 0.0;
    ASSERT_EQ(transport.Call(0, req, &resp, 2'000'000.0, &elapsed),
              net::CallStatus::kOk);
    EXPECT_EQ(resp.type, net::MsgType::kHello);
    EXPECT_EQ(resp.request_id, req.request_id);
    EXPECT_GT(elapsed, 0.0);
    EXPECT_EQ(transport.Stats().frames_sent, 1u);
    EXPECT_EQ(transport.Stats().frames_received, 1u);

    transport.ShutdownPeers();
  }
  EXPECT_EQ(WaitForExit(worker), 0) << "worker exits 0 on kShutdown";
}

TEST(SocketTransportTest, DetectionBitIdenticalOverRealSockets) {
  const World w = MakeWorld();
  Cluster loop({.num_workers = 3, .prefetch_batch = 32,
                .buffer_capacity = 512});
  const auto baseline =
      DetectFriendSpammersDistributed(w.scenario.graph, w.seeds, w.cfg, loop);

  std::vector<std::string> endpoints;
  std::vector<pid_t> workers;
  for (int i = 0; i < 3; ++i) {
    endpoints.push_back("unix:" + SockPath("detect", i));
    workers.push_back(SpawnWorker(endpoints.back()));
    ASSERT_GT(workers.back(), 0);
  }

  {
    Cluster wired(SocketConfigFor(endpoints));
    const auto over_wire = DetectFriendSpammersDistributed(
        w.scenario.graph, w.seeds, w.cfg, wired);
    ExpectSameDetection(over_wire, baseline);
    EXPECT_GT(over_wire.io.wire.frames_sent, 0u);
    EXPECT_GT(over_wire.io.wire.bytes_received, 0u);
    EXPECT_EQ(over_wire.io.shard_failovers, 0u);
    EXPECT_EQ(wired.NumDeadWorkers(), 0u);
    wired.ShutdownTransport();
  }
  for (pid_t pid : workers) EXPECT_EQ(WaitForExit(pid), 0);
}

// ISSUE acceptance: kill one worker process mid-run; the master must
// reconnect-or-failover and produce the bit-identical detection.
TEST(SocketTransportTest, WorkerKilledMidRunFailsOverBitIdentical) {
  const World w = MakeWorld();
  Cluster loop({.num_workers = 3, .prefetch_batch = 32,
                .buffer_capacity = 512});
  const auto baseline =
      DetectFriendSpammersDistributed(w.scenario.graph, w.seeds, w.cfg, loop);

  std::vector<std::string> endpoints;
  std::vector<pid_t> workers;
  for (int i = 0; i < 3; ++i) {
    endpoints.push_back("unix:" + SockPath("crash", i));
    net::WorkerOptions options;
    // Worker 1 hard-exits mid-run: after its first-round partition push
    // plus a few fetches, _Exit(137) — as abrupt as SIGKILL.
    if (i == 1) options.die_after_frames = 5;
    workers.push_back(SpawnWorker(endpoints.back(), options));
    ASSERT_GT(workers.back(), 0);
  }

  {
    Cluster wired(SocketConfigFor(endpoints));
    const auto faulted = DetectFriendSpammersDistributed(
        w.scenario.graph, w.seeds, w.cfg, wired);
    ExpectSameDetection(faulted, baseline);
    EXPECT_TRUE(wired.WorkerDead(1));
    EXPECT_EQ(wired.NumDeadWorkers(), 1u);
    EXPECT_GE(faulted.io.shard_failovers + faulted.io.wire.reconnects, 1u);
    EXPECT_GT(faulted.io.wire.reconnects, 0u)
        << "the master must have tried to reconnect before failing over";
    wired.ShutdownTransport();
  }
  EXPECT_EQ(WaitForExit(workers[0]), 0);
  EXPECT_EQ(WaitForExit(workers[1]), 137) << "the crash injection fired";
  EXPECT_EQ(WaitForExit(workers[2]), 0);
}

// A corrupted byte on the master's receive path poisons the stream; the
// master must tear the connection down, reconnect, resend, and succeed —
// all inside one engine-level attempt.
TEST(SocketTransportTest, CorruptStreamReconnectsAndResends) {
  const std::string path = SockPath("corrupt", 0);
  const pid_t worker = SpawnWorker("unix:" + path);
  ASSERT_GT(worker, 0);
  {
    net::SocketConfig cfg;
    cfg.endpoints = {"unix:" + path};
    net::SocketTransport transport(cfg);

    util::ScopedFailpoint flip("net/corrupt_frame",
                               util::FailpointPolicy::OnNth(1));
    net::Message req;
    req.type = net::MsgType::kHello;
    req.request_id = transport.NextRequestId();
    net::Message resp;
    ASSERT_EQ(transport.Call(0, req, &resp, 2'000'000.0, nullptr),
              net::CallStatus::kOk)
        << "reconnect-and-resend must recover from one corrupt frame";
    EXPECT_EQ(resp.request_id, req.request_id);
    EXPECT_EQ(transport.Stats().corrupt_frames, 1u);
    EXPECT_EQ(transport.Stats().reconnects, 1u);

    transport.ShutdownPeers();
  }
  EXPECT_EQ(WaitForExit(worker), 0);
}

TEST(SocketTransportTest, UnreachableWorkerFailsConstructionLoudly) {
  net::SocketConfig cfg;
  cfg.endpoints = {"unix:/tmp/rejecto_nobody_listens_here.sock"};
  cfg.connect_attempts = 2;
  cfg.connect_retry_delay_us = 1'000.0;
  EXPECT_THROW(net::SocketTransport{cfg}, std::runtime_error);
}

TEST(SocketTransportTest, EndpointParsing) {
  const auto unix_ep = net::ParseEndpoint("unix:/tmp/w0.sock");
  EXPECT_EQ(unix_ep.kind, net::Endpoint::Kind::kUnix);
  EXPECT_EQ(unix_ep.path, "/tmp/w0.sock");
  const auto bare = net::ParseEndpoint("/tmp/w1.sock");
  EXPECT_EQ(bare.kind, net::Endpoint::Kind::kUnix);
  const auto tcp = net::ParseEndpoint("tcp:127.0.0.1:7001");
  EXPECT_EQ(tcp.kind, net::Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 7001);
  EXPECT_THROW(net::ParseEndpoint(""), std::invalid_argument);
  EXPECT_THROW(net::ParseEndpoint("tcp:localhost"), std::invalid_argument);
  EXPECT_THROW(net::ParseEndpoint("tcp:h:99999"), std::invalid_argument);
  EXPECT_THROW(net::ParseEndpoint("unix:"), std::invalid_argument);
}

}  // namespace
}  // namespace rejecto::engine
