// Tests for the bench experiment harness (bench/harness.*): environment
// handling, paper-default configurations, sweep thinning, CSV emission.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "harness.h"

namespace rejecto::bench {
namespace {

class HarnessEnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("REJECTO_BENCH_FAST");
    ::unsetenv("REJECTO_SEED");
    ::unsetenv("REJECTO_CSV_DIR");
  }
};

TEST_F(HarnessEnvTest, DefaultsFromCleanEnv) {
  TearDown();
  const auto ctx = ExperimentContext::FromEnv();
  EXPECT_FALSE(ctx.fast);
  EXPECT_EQ(ctx.seed, 42u);
  EXPECT_FALSE(ctx.csv_dir.has_value());
}

TEST_F(HarnessEnvTest, EnvOverridesApply) {
  ::setenv("REJECTO_BENCH_FAST", "1", 1);
  ::setenv("REJECTO_SEED", "7", 1);
  ::setenv("REJECTO_CSV_DIR", "/tmp/rejecto_csvs", 1);
  const auto ctx = ExperimentContext::FromEnv();
  EXPECT_TRUE(ctx.fast);
  EXPECT_EQ(ctx.seed, 7u);
  ASSERT_TRUE(ctx.csv_dir.has_value());
  EXPECT_EQ(*ctx.csv_dir, "/tmp/rejecto_csvs");
}

TEST_F(HarnessEnvTest, PaperAttackConfigMatchesSectionSixA) {
  TearDown();
  const auto cfg = PaperAttackConfig(ExperimentContext::FromEnv());
  EXPECT_EQ(cfg.num_fakes, 10'000u);
  EXPECT_EQ(cfg.intra_fake_links_per_account, 6u);
  EXPECT_EQ(cfg.requests_per_spammer, 20u);
  EXPECT_DOUBLE_EQ(cfg.spam_rejection_rate, 0.7);
  EXPECT_DOUBLE_EQ(cfg.legit_rejection_rate, 0.2);
  EXPECT_DOUBLE_EQ(cfg.careless_fraction, 0.15);
}

TEST_F(HarnessEnvTest, FastModeShrinksAttack) {
  ::setenv("REJECTO_BENCH_FAST", "1", 1);
  const auto cfg = PaperAttackConfig(ExperimentContext::FromEnv());
  EXPECT_EQ(cfg.num_fakes, 2'000u);
}

TEST_F(HarnessEnvTest, SweepThinsOnlyInFastMode) {
  TearDown();
  ExperimentContext full = ExperimentContext::FromEnv();
  const std::vector<double> values = {1, 2, 3, 4, 5};
  EXPECT_EQ(Sweep(values, full).size(), 5u);
  full.fast = true;
  const auto thin = Sweep(values, full);
  ASSERT_EQ(thin.size(), 3u);
  EXPECT_EQ(thin.front(), 1);
  EXPECT_EQ(thin[1], 3);
  EXPECT_EQ(thin.back(), 5);
}

TEST_F(HarnessEnvTest, ShortSweepsPassThrough) {
  ExperimentContext ctx;
  ctx.fast = true;
  const std::vector<double> values = {1, 2, 3};
  EXPECT_EQ(Sweep(values, ctx).size(), 3u);
}

TEST_F(HarnessEnvTest, AppendixDatasetsSelection) {
  ExperimentContext ctx;
  EXPECT_EQ(AppendixDatasets(ctx).size(), 6u);
  ctx.fast = true;
  const auto fast_list = AppendixDatasets(ctx);
  ASSERT_EQ(fast_list.size(), 1u);
  EXPECT_EQ(fast_list[0], "ca-HepTh");
}

TEST_F(HarnessEnvTest, EmitWritesCsvWhenConfigured) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("rejecto_harness_" + std::to_string(::getpid()));
  ExperimentContext ctx;
  ctx.csv_dir = dir.string();
  util::Table t({"a", "b"});
  t.AddRow({std::int64_t{1}, std::int64_t{2}});
  ctx.Emit("unit", "unit table", t);
  std::ifstream in(dir / "unit.csv");
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "a,b");
  std::filesystem::remove_all(dir);
}

TEST_F(HarnessEnvTest, PaperDetectorConfigTargets) {
  TearDown();
  const auto cfg = PaperDetectorConfig(ExperimentContext::FromEnv(), 1234);
  EXPECT_EQ(cfg.target_detections, 1234u);
  EXPECT_TRUE(cfg.trim_to_target);
}

}  // namespace
}  // namespace rejecto::bench
