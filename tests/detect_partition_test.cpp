#include <gtest/gtest.h>

#include "detect/partition.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "util/rng.h"

namespace rejecto::detect {
namespace {

// Random augmented graph: ER friendships plus random rejection arcs.
graph::AugmentedGraph RandomAugmented(graph::NodeId n, graph::EdgeId edges,
                                      std::size_t arcs, util::Rng& rng) {
  graph::GraphBuilder b(n);
  const auto social = gen::ErdosRenyi({.num_nodes = n, .num_edges = edges},
                                      rng);
  for (const auto& e : social.Edges()) b.AddFriendship(e.u, e.v);
  for (std::size_t i = 0; i < arcs; ++i) {
    const auto u = static_cast<graph::NodeId>(rng.NextUInt(n));
    auto v = static_cast<graph::NodeId>(rng.NextUInt(n));
    if (u == v) v = (v + 1) % n;
    b.AddRejection(u, v);
  }
  return b.BuildAugmented();
}

std::vector<char> RandomMask(graph::NodeId n, double p, util::Rng& rng) {
  std::vector<char> m(n, 0);
  for (auto& c : m) c = rng.NextBool(p) ? 1 : 0;
  return m;
}

TEST(PartitionTest, InitialQuantitiesMatchOracle) {
  util::Rng rng(1);
  const auto g = RandomAugmented(40, 120, 80, rng);
  const auto mask = RandomMask(40, 0.4, rng);
  Partition p(g, mask);
  const auto oracle = g.ComputeCut(mask);
  const auto q = p.Quantities();
  EXPECT_EQ(q.cross_friendships, oracle.cross_friendships);
  EXPECT_EQ(q.rejections_into_u, oracle.rejections_into_u);
  EXPECT_EQ(q.rejections_from_u, oracle.rejections_from_u);
}

TEST(PartitionTest, SizeUTracked) {
  util::Rng rng(2);
  const auto g = RandomAugmented(20, 40, 20, rng);
  std::vector<char> mask(20, 0);
  mask[3] = mask[7] = 1;
  Partition p(g, mask);
  EXPECT_EQ(p.SizeU(), 2u);
  p.Switch(3);
  EXPECT_EQ(p.SizeU(), 1u);
  p.Switch(0);
  EXPECT_EQ(p.SizeU(), 2u);
  EXPECT_FALSE(p.InU(3));
  EXPECT_TRUE(p.InU(0));
}

TEST(PartitionTest, MaskSizeMismatchThrows) {
  util::Rng rng(3);
  const auto g = RandomAugmented(10, 20, 10, rng);
  EXPECT_THROW(Partition(g, std::vector<char>(5, 0)), std::invalid_argument);
}

TEST(PartitionTest, SwitchOutOfRangeThrows) {
  util::Rng rng(4);
  const auto g = RandomAugmented(10, 20, 10, rng);
  Partition p(g, std::vector<char>(10, 0));
  EXPECT_THROW(p.Switch(10), std::out_of_range);
}

TEST(PartitionTest, DoubleSwitchIsIdentity) {
  util::Rng rng(5);
  const auto g = RandomAugmented(30, 80, 50, rng);
  const auto mask = RandomMask(30, 0.5, rng);
  Partition p(g, mask);
  const auto before = p.Quantities();
  p.Switch(11);
  p.Switch(11);
  const auto after = p.Quantities();
  EXPECT_EQ(before.cross_friendships, after.cross_friendships);
  EXPECT_EQ(before.rejections_into_u, after.rejections_into_u);
  EXPECT_EQ(p.Mask(), mask);
}

// Property: after any random switch sequence, the incrementally-maintained
// totals equal the O(E) oracle recomputation.
class PartitionPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PartitionPropertyTest, IncrementalTotalsMatchOracleAfterSwitches) {
  util::Rng rng(GetParam());
  const graph::NodeId n = 20 + static_cast<graph::NodeId>(rng.NextUInt(40));
  const auto g =
      RandomAugmented(n, static_cast<graph::EdgeId>(n) * 3, n * 2, rng);
  const auto mask = RandomMask(n, 0.3, rng);
  Partition p(g, mask);
  for (int step = 0; step < 200; ++step) {
    p.Switch(static_cast<graph::NodeId>(rng.NextUInt(n)));
    if (step % 20 == 0) {
      const auto oracle = g.ComputeCut(p.Mask());
      const auto q = p.Quantities();
      ASSERT_EQ(q.cross_friendships, oracle.cross_friendships) << "step " << step;
      ASSERT_EQ(q.rejections_into_u, oracle.rejections_into_u) << "step " << step;
      ASSERT_EQ(q.rejections_from_u, oracle.rejections_from_u) << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, PartitionPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 12));

// Property: DeltaObjective(v) equals the objective difference measured by
// actually switching v and recomputing from scratch.
class DeltaObjectivePropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeltaObjectivePropertyTest, DeltaMatchesRecomputedDifference) {
  util::Rng rng(GetParam() + 100);
  const graph::NodeId n = 15 + static_cast<graph::NodeId>(rng.NextUInt(25));
  const auto g =
      RandomAugmented(n, static_cast<graph::EdgeId>(n) * 2, n * 2, rng);
  const auto mask = RandomMask(n, 0.5, rng);
  const double k = 0.25 + rng.NextDouble() * 4.0;

  Partition p(g, mask);
  for (graph::NodeId v = 0; v < n; ++v) {
    const double before = p.Objective(k);
    const double predicted = p.DeltaObjective(v, k);
    p.Switch(v);
    const double after = p.Objective(k);
    ASSERT_NEAR(after - before, predicted, 1e-9) << "node " << v;
    p.Switch(v);  // restore
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, DeltaObjectivePropertyTest,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace rejecto::detect
