// Streaming differential harness — the subsystem's load-bearing invariant:
// replaying ANY event log through stream::DeltaGraph (with compactions
// interleaved at arbitrary points, on 1/2/8 threads) and compacting yields
// a graph byte-identical to batch-building the final edge set, and epoch
// detection with warm starts disabled yields cuts bit-identical to the
// batch pipeline on that graph. Warm-started epochs may legitimately
// differ from a cold batch solve (they see the previous epoch's cut), but
// must still be bit-identical across thread counts.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "detect/iterative.h"
#include "engine/epoch_detector.h"
#include "gen/erdos_renyi.h"
#include "sim/scenario.h"
#include "sim/stream_feed.h"
#include "stream/delta_graph.h"
#include "stream/mutation_log.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace rejecto {
namespace {

using stream::DeltaConfig;
using stream::DeltaGraph;
using stream::Event;
using stream::EventType;
using stream::MutationLog;

// One shared pool per tested width; building 8 threads per test-case
// iteration would dominate the suite's runtime.
util::ThreadPool* PoolFor(int threads) {
  static util::ThreadPool pool2(2);
  static util::ThreadPool pool8(8);
  switch (threads) {
    case 2:
      return &pool2;
    case 8:
      return &pool8;
    default:
      return nullptr;  // threads == 1: serial path
  }
}

constexpr int kThreadWidths[] = {1, 2, 8};

MutationLog RandomLog(util::Rng& rng, graph::NodeId n, std::size_t events) {
  MutationLog log(n);
  for (std::size_t i = 0; i < events; ++i) {
    const double roll = rng.NextDouble();
    if (roll < 0.15 && log.NumEvents() > 0) {
      log.Append(log.Events()[rng.NextUInt(log.NumEvents())]);
      continue;
    }
    const auto u = static_cast<graph::NodeId>(rng.NextUInt(n));
    if (roll < 0.22) {
      log.RemoveNode(u);
      continue;
    }
    auto v = static_cast<graph::NodeId>(rng.NextUInt(n - 1));
    if (v >= u) ++v;
    if (roll < 0.5) {
      log.Reject(u, v);
    } else {
      log.Accept(u, v);
    }
  }
  return log;
}

class StreamDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamDifferentialTest, ReplayCompactEqualsBatchAtAllWidths) {
  util::Rng rng(GetParam() * 0x2545f491ULL + 1);
  const graph::NodeId n =
      16 + static_cast<graph::NodeId>(rng.NextUInt(64));
  const MutationLog log = RandomLog(rng, n, 100 + rng.NextUInt(200));
  const graph::AugmentedGraph batch = log.BuildAugmentedGraph();

  // Split points force mid-stream explicit compactions on top of whatever
  // the auto-policy triggers.
  const std::size_t cut_a = rng.NextUInt(log.NumEvents() + 1);
  const std::size_t cut_b =
      cut_a + rng.NextUInt(log.NumEvents() - cut_a + 1);

  for (int threads : kThreadWidths) {
    DeltaConfig cfg;
    cfg.compact_fraction = rng.NextBool(0.5) ? 0.3 : 0.0;
    cfg.min_compact_overlay = 16;
    DeltaGraph d(log.NumNodes(), cfg);
    d.SetPool(PoolFor(threads));
    const auto events = log.Events();
    d.ApplyAll(events.subspan(0, cut_a));
    d.Compact();
    d.ApplyAll(events.subspan(cut_a, cut_b - cut_a));
    d.Compact();
    d.ApplyAll(events.subspan(cut_b));
    d.Compact();
    EXPECT_EQ(d.Graph(), batch) << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLogs, StreamDifferentialTest,
                         ::testing::Range<std::uint64_t>(0, 200));

// ---------- epoch detection differential ----------

struct StreamWorkload {
  MutationLog log;
  detect::Seeds seeds;
  graph::NodeId num_fakes = 0;
};

// A detectable attack scenario translated into a churned event stream
// (duplicates, local reordering, accept-after-reject flips, removals).
StreamWorkload MakeWorkload(std::uint64_t seed) {
  util::Rng rng(seed + 41);
  const auto legit =
      gen::ErdosRenyi({.num_nodes = 400, .num_edges = 1600}, rng);
  sim::ScenarioConfig cfg;
  cfg.seed = seed * 3 + 7;
  cfg.num_fakes = 80;
  const auto scenario = sim::BuildScenario(legit, cfg);
  util::Rng seed_rng(seed + 5);
  sim::ChurnConfig churn;
  churn.seed = seed + 13;
  return {sim::GenerateChurnLog(scenario.log, churn),
          scenario.SampleSeeds(15, 5, seed_rng), cfg.num_fakes};
}

detect::IterativeConfig DetectorConfig(const StreamWorkload& w,
                                       int threads) {
  detect::IterativeConfig cfg;
  cfg.target_detections = w.num_fakes;
  cfg.maar.seed = 23;
  cfg.maar.num_threads = threads;
  return cfg;
}

class EpochDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EpochDifferentialTest, ColdEpochsBitIdenticalToBatchAtAllWidths) {
  const StreamWorkload w = MakeWorkload(GetParam());
  const graph::AugmentedGraph batch_graph = w.log.BuildAugmentedGraph();

  for (int threads : kThreadWidths) {
    const auto batch = detect::DetectFriendSpammers(
        batch_graph, w.seeds, DetectorConfig(w, threads));

    engine::EpochConfig ecfg;
    ecfg.detect = DetectorConfig(w, threads);
    ecfg.warm_start = false;
    // Several intermediate auto-epochs: the final epoch must still agree
    // with batch even though earlier detections ran on partial graphs.
    ecfg.events_per_epoch = w.log.NumEvents() / 3 + 1;
    engine::EpochDetector det(w.log.NumNodes(), w.seeds, ecfg);
    det.IngestAll(w.log.Events());
    const auto& last = det.RunEpoch();

    EXPECT_EQ(det.Graph().Graph(), batch_graph) << "threads=" << threads;
    EXPECT_EQ(det.LastResult().detected, batch.detected)
        << "threads=" << threads;
    ASSERT_EQ(det.LastResult().rounds.size(), batch.rounds.size());
    for (std::size_t r = 0; r < batch.rounds.size(); ++r) {
      EXPECT_EQ(det.LastResult().rounds[r].detected,
                batch.rounds[r].detected);
      EXPECT_EQ(det.LastResult().rounds[r].ratio, batch.rounds[r].ratio);
      EXPECT_EQ(det.LastResult().rounds[r].k, batch.rounds[r].k);
    }
    EXPECT_FALSE(last.warm_started);
    EXPECT_EQ(last.num_detected, batch.detected.size());
  }
}

TEST_P(EpochDifferentialTest, WarmEpochsThreadInvariant) {
  const StreamWorkload w = MakeWorkload(GetParam());

  std::vector<std::vector<graph::NodeId>> detected_by_width;
  std::vector<std::vector<double>> trajectory_by_width;
  for (int threads : kThreadWidths) {
    engine::EpochConfig ecfg;
    ecfg.detect = DetectorConfig(w, threads);
    ecfg.warm_start = true;
    ecfg.events_per_epoch = w.log.NumEvents() / 3 + 1;
    engine::EpochDetector det(w.log.NumNodes(), w.seeds, ecfg);
    det.IngestAll(w.log.Events());
    det.RunEpoch();
    detected_by_width.push_back(det.LastResult().detected);
    ASSERT_GE(det.History().size(), 2u);  // warm state actually exercised
    EXPECT_TRUE(det.History().back().warm_started);
    trajectory_by_width.push_back(det.History().back().round_ratios);
  }
  for (std::size_t i = 1; i < detected_by_width.size(); ++i) {
    EXPECT_EQ(detected_by_width[i], detected_by_width[0])
        << "threads=" << kThreadWidths[i];
    EXPECT_EQ(trajectory_by_width[i], trajectory_by_width[0])
        << "threads=" << kThreadWidths[i];
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, EpochDifferentialTest,
                         ::testing::Range<std::uint64_t>(0, 3));

// ---------- GenerateChurnLog property suite ----------

// 200 seeds, each replayed at 1/2/8 threads with mid-stream compactions.
// Two oracles:
//   * duplicates + local swaps only — semantics-preserving churn (event
//     application is idempotent and, with no removals in the stream,
//     order-independent), so the compacted graph must equal the ORIGINAL
//     request log's batch graph;
//   * full churn (flips + removals) — order matters, so the oracle is the
//     churned stream's own MutationLog::BuildAugmentedGraph().

sim::RequestLog SmallAttackLog(std::uint64_t seed) {
  util::Rng rng(seed + 271);
  const auto legit =
      gen::ErdosRenyi({.num_nodes = 120, .num_edges = 480}, rng);
  sim::ScenarioConfig cfg;
  cfg.seed = seed * 7 + 1;
  cfg.num_fakes = 30;
  return sim::BuildScenario(legit, cfg).log;
}

graph::AugmentedGraph ReplayCompact(const MutationLog& log, int threads,
                                    util::Rng& rng) {
  DeltaConfig cfg;
  cfg.compact_fraction = rng.NextBool(0.5) ? 0.3 : 0.0;
  cfg.min_compact_overlay = 16;
  DeltaGraph d(log.NumNodes(), cfg);
  d.SetPool(PoolFor(threads));
  const auto events = log.Events();
  const std::size_t cut = rng.NextUInt(log.NumEvents() + 1);
  d.ApplyAll(events.subspan(0, cut));
  d.Compact();
  d.ApplyAll(events.subspan(cut));
  d.Compact();
  return d.Graph();
}

class ChurnPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnPropertyTest, SemanticsPreservingChurnEqualsRequestLogBatch) {
  const sim::RequestLog log = SmallAttackLog(GetParam());
  const graph::AugmentedGraph batch = log.BuildAugmentedGraph();
  sim::ChurnConfig churn;
  churn.duplicate_fraction = 0.2;
  churn.swap_fraction = 0.2;
  churn.flip_fraction = 0.0;  // flips add edges the request log never had
  churn.num_removals = 0;     // removals make the stream order-dependent
  churn.seed = GetParam() + 17;
  const MutationLog churned = sim::GenerateChurnLog(log, churn);
  util::Rng rng(GetParam() * 65537 + 3);
  for (int threads : kThreadWidths) {
    EXPECT_EQ(ReplayCompact(churned, threads, rng), batch)
        << "threads=" << threads;
  }
}

TEST_P(ChurnPropertyTest, FullChurnEqualsItsOwnBatchOracle) {
  const sim::RequestLog log = SmallAttackLog(GetParam());
  sim::ChurnConfig churn;
  churn.seed = GetParam() + 29;
  const MutationLog churned = sim::GenerateChurnLog(log, churn);
  const graph::AugmentedGraph oracle = churned.BuildAugmentedGraph();
  util::Rng rng(GetParam() * 40503 + 9);
  for (int threads : kThreadWidths) {
    EXPECT_EQ(ReplayCompact(churned, threads, rng), oracle)
        << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(ChurnSeeds, ChurnPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 200));

}  // namespace
}  // namespace rejecto
