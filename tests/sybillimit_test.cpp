#include <gtest/gtest.h>

#include <unordered_set>

#include "baseline/sybillimit.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "metrics/ranking.h"

namespace rejecto::baseline {
namespace {

// Honest ER region (0..n_honest-1) + sybil clique behind few attack edges.
struct AttackSetup {
  graph::SocialGraph g;
  std::vector<char> is_fake;
};

AttackSetup MakeAttack(graph::NodeId n_honest, graph::NodeId n_sybil,
                       int attack_edges, std::uint64_t seed) {
  util::Rng rng(seed);
  graph::GraphBuilder b(n_honest + n_sybil);
  const auto honest = gen::ErdosRenyi(
      {.num_nodes = n_honest,
       .num_edges = static_cast<graph::EdgeId>(n_honest) * 4},
      rng);
  for (const auto& e : honest.Edges()) b.AddFriendship(e.u, e.v);
  for (graph::NodeId u = n_honest; u < n_honest + n_sybil; ++u) {
    for (graph::NodeId v = u + 1;
         v < n_honest + n_sybil && v < u + 6; ++v) {
      b.AddFriendship(u, v);
    }
  }
  for (int i = 0; i < attack_edges; ++i) {
    b.AddFriendship(static_cast<graph::NodeId>(rng.NextUInt(n_honest)),
                    n_honest + static_cast<graph::NodeId>(
                                   rng.NextUInt(n_sybil)));
  }
  AttackSetup s;
  s.g = b.BuildSocial();
  s.is_fake.assign(n_honest + n_sybil, 0);
  for (graph::NodeId v = n_honest; v < n_honest + n_sybil; ++v) {
    s.is_fake[v] = 1;
  }
  return s;
}

TEST(SybilLimitTest, EmptyVerifiersThrow) {
  const auto s = MakeAttack(100, 20, 2, 1);
  EXPECT_THROW(RunSybilLimit(s.g, {}, {}), std::invalid_argument);
}

TEST(SybilLimitTest, VerifierOutOfRangeThrows) {
  const auto s = MakeAttack(100, 20, 2, 1);
  EXPECT_THROW(RunSybilLimit(s.g, {static_cast<graph::NodeId>(200)}, {}),
               std::invalid_argument);
}

TEST(SybilLimitTest, DefaultParametersDerived) {
  const auto s = MakeAttack(100, 20, 2, 1);
  const auto r = RunSybilLimit(s.g, {0}, {.num_routes = 50, .seed = 3});
  EXPECT_EQ(r.num_routes, 50u);
  EXPECT_GT(r.route_length, 0u);
}

TEST(SybilLimitTest, HonestNodesAcceptedSybilsMostlyRejected) {
  const auto s = MakeAttack(300, 60, 2, 5);
  SybilLimitConfig cfg;
  cfg.seed = 7;
  // r ~ 2*sqrt(2m) suffices for honest-pair tail intersection at this size.
  cfg.num_routes = 160;
  const auto r = RunSybilLimit(s.g, {0, 1, 2}, cfg);
  // Score = acceptance fraction; honest should rank above sybils.
  EXPECT_GT(metrics::AreaUnderRoc(r.accept_fraction, s.is_fake), 0.85);
  // Most honest nodes accepted by most verifiers.
  double honest_acc = 0;
  for (graph::NodeId v = 0; v < 300; ++v) honest_acc += r.accept_fraction[v];
  EXPECT_GT(honest_acc / 300.0, 0.8);
}

TEST(SybilLimitTest, MoreAttackEdgesAdmitMoreSybils) {
  SybilLimitConfig cfg;
  cfg.seed = 9;
  cfg.num_routes = 160;
  auto sybil_acceptance = [&](int attack_edges) {
    const auto s = MakeAttack(300, 60, attack_edges, 11);
    const auto r = RunSybilLimit(s.g, {0, 1, 2}, cfg);
    double acc = 0;
    for (graph::NodeId v = 300; v < 360; ++v) acc += r.accept_fraction[v];
    return acc / 60.0;
  };
  // The SybilLimit bound: admitted sybils scale with attack edges.
  EXPECT_LT(sybil_acceptance(1), sybil_acceptance(40) + 1e-9);
}

TEST(SybilLimitTest, DeterministicForSeed) {
  const auto s = MakeAttack(150, 30, 3, 13);
  SybilLimitConfig cfg;
  cfg.seed = 17;
  cfg.num_routes = 80;
  const auto a = RunSybilLimit(s.g, {0, 1}, cfg);
  const auto b = RunSybilLimit(s.g, {0, 1}, cfg);
  EXPECT_EQ(a.accept_fraction, b.accept_fraction);
}

TEST(SybilLimitTest, IsolatedNodeNeverAccepted) {
  graph::GraphBuilder b(5);
  b.AddFriendship(0, 1);
  b.AddFriendship(1, 2);
  b.AddFriendship(2, 0);  // node 3, 4 isolated... 4 too
  b.AddFriendship(0, 3);  // keep 3 attached; 4 isolated
  SybilLimitConfig cfg;
  cfg.num_routes = 8;
  const auto r = RunSybilLimit(b.BuildSocial(), {0}, cfg);
  EXPECT_DOUBLE_EQ(r.accept_fraction[4], 0.0);
}

}  // namespace
}  // namespace rejecto::baseline
