#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>

#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "sim/request_log.h"
#include "sim/scenario.h"
#include "sim/spam_simulator.h"
#include "sim/temporal.h"

namespace rejecto::sim {
namespace {

// ---------- RequestLog ----------

TEST(RequestLogTest, AddAndCounts) {
  RequestLog log(3);
  log.Add(0, 1, Response::kAccepted);
  log.Add(1, 2, Response::kRejected);
  EXPECT_EQ(log.NumRequests(), 2u);
  EXPECT_EQ(log.NumAccepted(), 1u);
  EXPECT_EQ(log.NumRejected(), 1u);
}

TEST(RequestLogTest, SelfRequestThrows) {
  RequestLog log(2);
  EXPECT_THROW(log.Add(1, 1, Response::kAccepted), std::invalid_argument);
}

TEST(RequestLogTest, OutOfRangeThrows) {
  RequestLog log(2);
  EXPECT_THROW(log.Add(0, 2, Response::kAccepted), std::out_of_range);
}

TEST(RequestLogTest, GrowToCannotShrink) {
  RequestLog log(5);
  log.GrowTo(10);
  EXPECT_EQ(log.NumNodes(), 10u);
  EXPECT_THROW(log.GrowTo(4), std::invalid_argument);
}

TEST(RequestLogTest, BuildAugmentedGraphMapsResponses) {
  RequestLog log(3);
  log.Add(0, 1, Response::kAccepted);   // friendship 0-1
  log.Add(2, 1, Response::kRejected);   // 1 rejected 2 -> arc 1->2
  const auto g = log.BuildAugmentedGraph();
  EXPECT_TRUE(g.Friendships().HasEdge(0, 1));
  EXPECT_FALSE(g.Friendships().HasEdge(1, 2));
  EXPECT_TRUE(g.Rejections().HasArc(1, 2));
  EXPECT_EQ(g.Rejections().NumArcs(), 1u);
}

TEST(RequestLogIoTest, SaveLoadRoundTrip) {
  RequestLog log(10);  // node 9 never appears in a request
  log.Add(0, 1, Response::kAccepted);
  log.Add(2, 1, Response::kRejected);
  log.Add(3, 4, Response::kAccepted);
  const auto path = std::filesystem::temp_directory_path() /
                    ("rejecto_reqlog_" + std::to_string(::getpid()) + ".txt");
  log.Save(path.string());
  const RequestLog loaded = RequestLog::Load(path.string());
  std::filesystem::remove(path);
  EXPECT_EQ(loaded.NumNodes(), 10u);  // header preserves isolated nodes
  ASSERT_EQ(loaded.NumRequests(), 3u);
  EXPECT_TRUE(std::equal(log.Requests().begin(), log.Requests().end(),
                         loaded.Requests().begin()));
  EXPECT_EQ(loaded.NumAccepted(), 2u);
  EXPECT_EQ(loaded.NumRejected(), 1u);
}

TEST(RequestLogIoTest, LoadMalformedThrows) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("rejecto_reqlog_bad_" + std::to_string(::getpid()) +
                     ".txt");
  {
    std::ofstream out(path);
    out << "1 2 X\n";
  }
  EXPECT_THROW(RequestLog::Load(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(RequestLogIoTest, LoadMissingFileThrows) {
  EXPECT_THROW(RequestLog::Load("/nonexistent/log.txt"), std::runtime_error);
}

// Writes `content` to a temp file, expects Load to throw, and checks the
// error names the offending line (the PR-4 file:line hardening idiom).
void ExpectLoadError(const std::string& content,
                     const std::string& needle) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("rejecto_reqlog_err_" + std::to_string(::getpid()) +
                     ".txt");
  {
    std::ofstream out(path);
    out << content;
  }
  try {
    RequestLog::Load(path.string());
    std::filesystem::remove(path);
    FAIL() << "Load accepted corrupt input: " << content;
  } catch (const std::runtime_error& e) {
    std::filesystem::remove(path);
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "error was: " << e.what();
  }
}

TEST(RequestLogIoTest, LoadRejectsDuplicatePair) {
  ExpectLoadError("0 1 A\n2 3 R\n0 1 R\n", "line 3: duplicate request 0 -> 1");
  // Same pair, same response: still corruption (it would silently collapse
  // in the derived graph).
  ExpectLoadError("0 1 A\n0 1 A\n", "line 2: duplicate request");
  // The reverse pair is a DIFFERENT request and stays legal.
  const auto path = std::filesystem::temp_directory_path() /
                    ("rejecto_reqlog_rev_" + std::to_string(::getpid()) +
                     ".txt");
  {
    std::ofstream out(path);
    out << "0 1 A\n1 0 R\n";
  }
  const RequestLog loaded = RequestLog::Load(path.string());
  std::filesystem::remove(path);
  EXPECT_EQ(loaded.NumRequests(), 2u);
}

TEST(RequestLogIoTest, LoadRejectsBadIds) {
  ExpectLoadError("-1 2 A\n", "line 1");
  ExpectLoadError("1 2x A\n", "line 1");
}

TEST(RequestLogIoTest, LoadRejectsSelfRequest) {
  ExpectLoadError("0 1 A\n3 3 A\n", "line 2: self-request");
}

TEST(RequestLogIoTest, LoadRejectsBadTimestamps) {
  // One past INT64_MAX.
  ExpectLoadError("0 1 A 9223372036854775808\n", "line 1: timestamp");
  ExpectLoadError("0 1 A -5\n", "line 1: timestamp");
  ExpectLoadError("0 1 A 12junk\n", "line 1: timestamp");
}

TEST(RequestLogIoTest, LoadRejectsTrailingTokens) {
  ExpectLoadError("0 1 A 5 extra\n", "line 1: trailing tokens");
}

TEST(RequestLogIoTest, TimestampsSurviveRoundTrip) {
  RequestLog log(4);
  log.Add(0, 1, Response::kAccepted, 100);
  log.Add(2, 1, Response::kRejected, 250);
  log.Add(3, 0, Response::kAccepted);  // defaulted timestamp stays 0
  const auto path = std::filesystem::temp_directory_path() /
                    ("rejecto_reqlog_ts_" + std::to_string(::getpid()) +
                     ".txt");
  log.Save(path.string());
  const RequestLog loaded = RequestLog::Load(path.string());
  std::filesystem::remove(path);
  ASSERT_EQ(loaded.NumRequests(), 3u);
  EXPECT_TRUE(std::equal(log.Requests().begin(), log.Requests().end(),
                         loaded.Requests().begin()));
  EXPECT_EQ(loaded.Requests()[1].timestamp, 250);
}

TEST(RequestLogTest, NegativeTimestampThrows) {
  RequestLog log(2);
  EXPECT_THROW(log.Add(0, 1, Response::kAccepted, -1),
               std::invalid_argument);
}

// ---------- workload primitives ----------

graph::SocialGraph SmallLegitGraph(util::Rng& rng, graph::NodeId n = 200,
                                   graph::EdgeId m = 400) {
  return gen::ErdosRenyi({.num_nodes = n, .num_edges = m}, rng);
}

TEST(OrientOrganicTest, PreservesEveryEdgeOnce) {
  util::Rng rng(1);
  const auto g = SmallLegitGraph(rng);
  RequestLog log(g.NumNodes());
  OrientOrganicFriendships(log, g, rng);
  EXPECT_EQ(log.NumRequests(), g.NumEdges());
  EXPECT_EQ(log.NumRejected(), 0u);
  const auto rebuilt = log.BuildAugmentedGraph();
  EXPECT_EQ(rebuilt.Friendships().NumEdges(), g.NumEdges());
  for (const auto& e : g.Edges()) {
    EXPECT_TRUE(rebuilt.Friendships().HasEdge(e.u, e.v));
  }
}

TEST(OrientOrganicTest, DirectionsAreMixed) {
  util::Rng rng(2);
  const auto g = SmallLegitGraph(rng);
  RequestLog log(g.NumNodes());
  OrientOrganicFriendships(log, g, rng);
  std::uint64_t low_to_high = 0;
  for (const auto& r : log.Requests()) low_to_high += (r.sender < r.receiver);
  // Roughly half the organic requests should flow low->high.
  EXPECT_GT(low_to_high, log.NumRequests() / 4);
  EXPECT_LT(low_to_high, log.NumRequests() * 3 / 4);
}

TEST(LegitRejectionsTest, CountMatchesRateFormula) {
  util::Rng rng(3);
  const auto g = SmallLegitGraph(rng);
  RequestLog log(g.NumNodes());
  const double rate = 0.2;
  AddLegitimateRejections(log, g, rate, rng);
  std::uint64_t expected = 0;
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    expected += static_cast<std::uint64_t>(
        std::llround(g.Degree(u) * rate / (1.0 - rate)));
  }
  // A few rejections may be skipped for pathological nodes; allow 2% slack.
  EXPECT_GE(log.NumRejected(), expected * 98 / 100);
  EXPECT_LE(log.NumRejected(), expected);
  EXPECT_EQ(log.NumAccepted(), 0u);
}

TEST(LegitRejectionsTest, RejectorsAreNonFriends) {
  util::Rng rng(4);
  const auto g = SmallLegitGraph(rng);
  RequestLog log(g.NumNodes());
  AddLegitimateRejections(log, g, 0.3, rng);
  for (const auto& r : log.Requests()) {
    EXPECT_FALSE(g.HasEdge(r.sender, r.receiver))
        << r.sender << " and " << r.receiver << " are friends";
  }
}

TEST(LegitRejectionsTest, ZeroRateAddsNothing) {
  util::Rng rng(5);
  const auto g = SmallLegitGraph(rng);
  RequestLog log(g.NumNodes());
  AddLegitimateRejections(log, g, 0.0, rng);
  EXPECT_EQ(log.NumRequests(), 0u);
}

TEST(LegitRejectionsTest, RateOneThrows) {
  util::Rng rng(6);
  const auto g = SmallLegitGraph(rng);
  RequestLog log(g.NumNodes());
  EXPECT_THROW(AddLegitimateRejections(log, g, 1.0, rng),
               std::invalid_argument);
}

TEST(FakeArrivalsTest, EarlyArrivalsConnectToAllPrevious) {
  util::Rng rng(7);
  RequestLog log(110);
  AddFakeArrivals(log, 100, 10, 4, rng);
  // Arrivals 1,2,3 connect to 1,2,3 earlier fakes; arrivals 4..9 to 4 each.
  EXPECT_EQ(log.NumAccepted(), 1u + 2u + 3u + 6u * 4u);
  EXPECT_EQ(log.NumRejected(), 0u);
  for (const auto& r : log.Requests()) {
    EXPECT_GE(r.sender, 100u);
    EXPECT_GE(r.receiver, 100u);
    EXPECT_GT(r.sender, r.receiver);  // arrivals request earlier fakes
  }
}

TEST(SpamCampaignTest, ExactRejectionSplit) {
  util::Rng rng(8);
  RequestLog log(1000 + 10);
  std::vector<graph::NodeId> spammers{1000, 1001, 1002};
  AddSpamCampaign(log, spammers, 1000, 20, 0.7, rng);
  EXPECT_EQ(log.NumRequests(), 60u);
  EXPECT_EQ(log.NumRejected(), 3u * 14u);  // round(0.7*20)=14 each
  EXPECT_EQ(log.NumAccepted(), 3u * 6u);
}

TEST(SpamCampaignTest, TargetsDistinctPerSpammer) {
  util::Rng rng(9);
  RequestLog log(50 + 1);
  std::vector<graph::NodeId> spammers{50};
  AddSpamCampaign(log, spammers, 50, 30, 0.5, rng);
  std::vector<graph::NodeId> targets;
  for (const auto& r : log.Requests()) {
    EXPECT_EQ(r.sender, 50u);
    EXPECT_LT(r.receiver, 50u);
    targets.push_back(r.receiver);
  }
  std::sort(targets.begin(), targets.end());
  EXPECT_EQ(std::adjacent_find(targets.begin(), targets.end()), targets.end());
}

TEST(SpamCampaignTest, MoreRequestsThanLegitThrows) {
  util::Rng rng(10);
  RequestLog log(10);
  std::vector<graph::NodeId> spammers{5};
  EXPECT_THROW(AddSpamCampaign(log, spammers, 5, 6, 0.5, rng),
               std::invalid_argument);
}

TEST(CarelessAcceptsTest, CountAndDirection) {
  util::Rng rng(11);
  RequestLog log(100 + 20);
  AddCarelessAccepts(log, 100, 100, 20, 0.15, rng);
  EXPECT_EQ(log.NumRequests(), 15u);
  EXPECT_EQ(log.NumRejected(), 0u);
  for (const auto& r : log.Requests()) {
    EXPECT_LT(r.sender, 100u);
    EXPECT_GE(r.receiver, 100u);
  }
}

TEST(SelfRejectionTest, SplitAndTargets) {
  util::Rng rng(12);
  RequestLog log(200);
  std::vector<graph::NodeId> senders{0, 1, 2, 3, 4};
  AddSelfRejectionCampaign(log, senders, 100, 100, 20, 0.6, rng);
  EXPECT_EQ(log.NumRejected(), 5u * 12u);
  EXPECT_EQ(log.NumAccepted(), 5u * 8u);
  for (const auto& r : log.Requests()) {
    EXPECT_GE(r.receiver, 100u);
    EXPECT_LT(r.sender, 5u);
  }
}

TEST(LegitRejectedByFakesTest, AllRejectedAndDirected) {
  util::Rng rng(13);
  RequestLog log(100 + 10);
  AddLegitRequestsRejectedByFakes(log, 100, 100, 10, 500, rng);
  EXPECT_EQ(log.NumRequests(), 500u);
  EXPECT_EQ(log.NumRejected(), 500u);
  for (const auto& r : log.Requests()) {
    EXPECT_LT(r.sender, 100u);
    EXPECT_GE(r.receiver, 100u);
  }
}

// ---------- scenario composition ----------

class ScenarioTest : public ::testing::Test {
 protected:
  static Scenario Build(ScenarioConfig cfg) {
    util::Rng rng(99);
    const auto legit =
        gen::ErdosRenyi({.num_nodes = 500, .num_edges = 1500}, rng);
    return BuildScenario(legit, cfg);
  }
};

TEST_F(ScenarioTest, GroundTruthLayout) {
  ScenarioConfig cfg;
  cfg.num_fakes = 100;
  const Scenario s = Build(cfg);
  EXPECT_EQ(s.num_legit, 500u);
  EXPECT_EQ(s.num_fakes, 100u);
  EXPECT_EQ(s.NumNodes(), 600u);
  for (graph::NodeId v = 0; v < 500; ++v) EXPECT_FALSE(s.IsFake(v));
  for (graph::NodeId v = 500; v < 600; ++v) EXPECT_TRUE(s.IsFake(v));
}

TEST_F(ScenarioTest, SpammerCountFollowsFraction) {
  ScenarioConfig cfg;
  cfg.num_fakes = 100;
  cfg.spamming_fraction = 0.5;
  const Scenario s = Build(cfg);
  EXPECT_EQ(s.spamming_fakes.size(), 50u);
  for (graph::NodeId f : s.spamming_fakes) EXPECT_TRUE(s.IsFake(f));
}

TEST_F(ScenarioTest, AggregateAcceptanceRateOfFakesIsLow) {
  ScenarioConfig cfg;
  cfg.num_fakes = 100;
  cfg.spam_rejection_rate = 0.7;
  const Scenario s = Build(cfg);
  const auto cut = s.graph.ComputeCut(s.is_fake);
  // Attack edges: 100 fakes * 6 accepted + careless (75) ~= 675; rejections
  // into the fake region: 100 * 14 = 1400 -> acceptance well below 0.5.
  EXPECT_LT(cut.AcceptanceRate(), 0.45);
  EXPECT_GT(cut.rejections_into_u, 1000u);
}

TEST_F(ScenarioTest, WhitewashedReceiveIntraFakeRejections) {
  ScenarioConfig cfg;
  cfg.num_fakes = 100;
  cfg.whitewashed_fakes = 50;
  cfg.self_rejection_rate = 0.8;
  const Scenario s = Build(cfg);
  // Whitewashed accounts (last 50 fake ids) cast rejections on the senders.
  std::uint64_t rejections_by_whitewashed = 0;
  for (graph::NodeId w = s.NumNodes() - 50; w < s.NumNodes(); ++w) {
    rejections_by_whitewashed += s.graph.Rejections().OutDegree(w);
  }
  EXPECT_GT(rejections_by_whitewashed, 500u);
}

TEST_F(ScenarioTest, DeterministicForSeed) {
  ScenarioConfig cfg;
  cfg.num_fakes = 50;
  cfg.seed = 123;
  const Scenario a = Build(cfg);
  const Scenario b = Build(cfg);
  EXPECT_EQ(a.log.NumRequests(), b.log.NumRequests());
  EXPECT_TRUE(std::equal(a.log.Requests().begin(), a.log.Requests().end(),
                         b.log.Requests().begin()));
}

TEST_F(ScenarioTest, SampleSeedsRespectsLabels) {
  ScenarioConfig cfg;
  cfg.num_fakes = 100;
  const Scenario s = Build(cfg);
  util::Rng rng(5);
  const auto seeds = s.SampleSeeds(20, 10, rng);
  EXPECT_EQ(seeds.legit.size(), 20u);
  EXPECT_EQ(seeds.spammer.size(), 10u);
  for (auto v : seeds.legit) EXPECT_FALSE(s.IsFake(v));
  for (auto v : seeds.spammer) EXPECT_TRUE(s.IsFake(v));
}

TEST_F(ScenarioTest, SampleSeedsTooManyThrows) {
  ScenarioConfig cfg;
  cfg.num_fakes = 10;
  const Scenario s = Build(cfg);
  util::Rng rng(5);
  EXPECT_THROW(s.SampleSeeds(501, 0, rng), std::invalid_argument);
  EXPECT_THROW(s.SampleSeeds(0, 11, rng), std::invalid_argument);
}

TEST_F(ScenarioTest, InvalidConfigThrows) {
  ScenarioConfig cfg;
  cfg.num_fakes = 10;
  cfg.whitewashed_fakes = 11;
  EXPECT_THROW(Build(cfg), std::invalid_argument);
  ScenarioConfig cfg2;
  cfg2.spamming_fraction = 1.5;
  EXPECT_THROW(Build(cfg2), std::invalid_argument);
}

TEST_F(ScenarioTest, Fig15RejectionsLandOnLegitSenders) {
  ScenarioConfig cfg;
  cfg.num_fakes = 50;
  cfg.legit_requests_rejected_by_fakes = 2000;
  const Scenario s = Build(cfg);
  // Fakes now cast >= 2000 rejections onto legitimate users.
  std::uint64_t fake_out = 0;
  for (graph::NodeId f = 500; f < s.NumNodes(); ++f) {
    for (graph::NodeId t : s.graph.Rejections().Rejectees(f)) {
      if (!s.IsFake(t)) ++fake_out;
    }
  }
  // Duplicate (fake, legit) pairs collapse in the graph; most survive.
  EXPECT_GT(fake_out, 1800u);
}

// ---------- temporal scenarios (§VII) ----------

TEST(TemporalScenarioTest, IntervalCountAndGroundTruth) {
  TemporalConfig cfg;
  cfg.num_users = 500;
  cfg.num_intervals = 4;
  cfg.num_compromised = 50;
  cfg.compromise_interval = 2;
  const auto t = BuildTemporalScenario(cfg);
  EXPECT_EQ(t.intervals.size(), 4u);
  EXPECT_EQ(t.compromised.size(), 50u);
  std::uint64_t marked = 0;
  for (char c : t.is_compromised) marked += (c != 0);
  EXPECT_EQ(marked, 50u);
}

TEST(TemporalScenarioTest, SpamOnlyAfterCompromise) {
  TemporalConfig cfg;
  cfg.num_users = 500;
  cfg.num_intervals = 3;
  cfg.num_compromised = 40;
  cfg.compromise_interval = 1;
  cfg.requests_per_compromised = 10;
  const auto t = BuildTemporalScenario(cfg);
  // Pre-compromise interval: no rejected requests beyond the organic rate
  // baseline; post-compromise intervals gain the spam campaign's mass.
  const auto spam_mass = static_cast<std::uint64_t>(40 * 7);  // 10 req * 0.7
  EXPECT_LT(t.intervals[0].NumRejected() + spam_mass / 2,
            t.intervals[1].NumRejected() + spam_mass);
  EXPECT_GT(t.intervals[1].NumRejected(),
            t.intervals[0].NumRejected());
  EXPECT_GT(t.intervals[2].NumRejected(),
            t.intervals[0].NumRejected());
}

TEST(TemporalScenarioTest, CompromisedSendSpamInPostIntervals) {
  TemporalConfig cfg;
  cfg.num_users = 400;
  cfg.num_intervals = 2;
  cfg.num_compromised = 30;
  cfg.compromise_interval = 1;
  const auto t = BuildTemporalScenario(cfg);
  std::uint64_t rejected_sent_by_compromised = 0;
  for (const auto& r : t.intervals[1].Requests()) {
    if (t.is_compromised[r.sender] && r.response == Response::kRejected) {
      ++rejected_sent_by_compromised;
    }
  }
  // 30 accounts x 50 requests x 0.7 rejected (minus self-sample slack).
  EXPECT_GT(rejected_sent_by_compromised, 900u);
}

TEST(TemporalScenarioTest, DeterministicForSeed) {
  TemporalConfig cfg;
  cfg.num_users = 300;
  cfg.num_compromised = 20;
  const auto a = BuildTemporalScenario(cfg);
  const auto b = BuildTemporalScenario(cfg);
  EXPECT_EQ(a.compromised, b.compromised);
  for (int i = 0; i < cfg.num_intervals; ++i) {
    EXPECT_EQ(a.intervals[static_cast<std::size_t>(i)].NumRequests(),
              b.intervals[static_cast<std::size_t>(i)].NumRequests());
  }
}

TEST(TemporalScenarioTest, InvalidConfigThrows) {
  TemporalConfig cfg;
  cfg.num_intervals = 0;
  EXPECT_THROW(BuildTemporalScenario(cfg), std::invalid_argument);
  TemporalConfig cfg2;
  cfg2.num_users = 10;
  cfg2.num_compromised = 11;
  EXPECT_THROW(BuildTemporalScenario(cfg2), std::invalid_argument);
}

}  // namespace
}  // namespace rejecto::sim
