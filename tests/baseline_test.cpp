#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "baseline/acceptance_filter.h"
#include "baseline/sybilrank.h"
#include "baseline/votetrust.h"
#include "graph/builder.h"
#include "sim/request_log.h"

namespace rejecto::baseline {
namespace {

// ---------- VoteTrust ----------

// Legit users 0..3 request each other (accepted); spammer 4 sends to all
// legit users, 3 of 4 rejected.
sim::RequestLog SimpleSpamLog() {
  sim::RequestLog log(5);
  log.Add(0, 1, sim::Response::kAccepted);
  log.Add(1, 2, sim::Response::kAccepted);
  log.Add(2, 3, sim::Response::kAccepted);
  log.Add(3, 0, sim::Response::kAccepted);
  log.Add(4, 0, sim::Response::kRejected);
  log.Add(4, 1, sim::Response::kRejected);
  log.Add(4, 2, sim::Response::kRejected);
  log.Add(4, 3, sim::Response::kAccepted);
  return log;
}

TEST(VoteTrustTest, EmptySeedsThrow) {
  EXPECT_THROW(RunVoteTrust(SimpleSpamLog(), {}), std::invalid_argument);
}

TEST(VoteTrustTest, SeedOutOfRangeThrows) {
  VoteTrustConfig cfg;
  cfg.trust_seeds = {9};
  EXPECT_THROW(RunVoteTrust(SimpleSpamLog(), cfg), std::invalid_argument);
}

TEST(VoteTrustTest, RatingsBounded) {
  VoteTrustConfig cfg;
  cfg.trust_seeds = {0};
  const auto r = RunVoteTrust(SimpleSpamLog(), cfg);
  ASSERT_EQ(r.ratings.size(), 5u);
  for (double x : r.ratings) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(VoteTrustTest, SpammerRatedBelowLegit) {
  VoteTrustConfig cfg;
  cfg.trust_seeds = {0, 1};
  const auto r = RunVoteTrust(SimpleSpamLog(), cfg);
  for (graph::NodeId v = 0; v < 4; ++v) {
    EXPECT_LT(r.ratings[4], r.ratings[v]);
  }
}

TEST(VoteTrustTest, NonSenderKeepsNeutralRating) {
  sim::RequestLog log(3);
  log.Add(0, 1, sim::Response::kAccepted);  // node 2 sends nothing
  VoteTrustConfig cfg;
  cfg.trust_seeds = {0};
  const auto r = RunVoteTrust(log, cfg);
  EXPECT_DOUBLE_EQ(r.ratings[2], cfg.neutral_rating);
}

TEST(VoteTrustTest, VotesConcentrateNearSeeds) {
  const auto log = SimpleSpamLog();
  VoteTrustConfig cfg;
  cfg.trust_seeds = {0};
  const auto r = RunVoteTrust(log, cfg);
  // The spammer receives no requests, so it can only hold teleport leakage.
  for (graph::NodeId v = 0; v < 4; ++v) {
    EXPECT_GT(r.votes[v] + 1e-12, r.votes[4]);
  }
}

TEST(VoteTrustTest, CollusionRaisesSpammerRating) {
  // Vulnerability the paper exploits (Fig 13): fake-fake accepted requests
  // lift the individual acceptance rate.
  sim::RequestLog colluding(8);
  sim::RequestLog honest(8);
  for (auto* log : {&colluding, &honest}) {
    log->Add(0, 1, sim::Response::kAccepted);
    log->Add(1, 2, sim::Response::kAccepted);
    log->Add(2, 0, sim::Response::kAccepted);
    // A careless legitimate user routes some vote mass into node 5 (in the
    // honest log, 5 is just another user), so colluders' responses carry
    // nonzero weight.
    log->Add(2, 5, sim::Response::kAccepted);
    // Spammer 4: 3 rejected requests to legit users.
    log->Add(4, 0, sim::Response::kRejected);
    log->Add(4, 1, sim::Response::kRejected);
    log->Add(4, 2, sim::Response::kRejected);
  }
  // Colluders 5,6,7 accept spammer 4's requests (and each other's).
  for (graph::NodeId c = 5; c < 8; ++c) {
    colluding.Add(4, c, sim::Response::kAccepted);
    colluding.Add(c, 4, sim::Response::kAccepted);
  }
  VoteTrustConfig cfg;
  cfg.trust_seeds = {0};
  const auto with = RunVoteTrust(colluding, cfg);
  const auto without = RunVoteTrust(honest, cfg);
  EXPECT_GT(with.ratings[4], without.ratings[4]);
}

// ---------- SybilRank ----------

graph::SocialGraph TwoCommunityGraph() {
  // Honest clique 0..5, sybil clique 6..11, single attack edge 0-6.
  graph::GraphBuilder b(12);
  for (graph::NodeId u = 0; u < 6; ++u) {
    for (graph::NodeId v = u + 1; v < 6; ++v) b.AddFriendship(u, v);
  }
  for (graph::NodeId u = 6; u < 12; ++u) {
    for (graph::NodeId v = u + 1; v < 12; ++v) b.AddFriendship(u, v);
  }
  b.AddFriendship(0, 6);
  return b.BuildSocial();
}

TEST(SybilRankTest, EmptySeedsThrow) {
  EXPECT_THROW(RunSybilRank(TwoCommunityGraph(), {}), std::invalid_argument);
}

TEST(SybilRankTest, SybilsRankBelowHonest) {
  SybilRankConfig cfg;
  cfg.trust_seeds = {1, 2};
  const auto trust = RunSybilRank(TwoCommunityGraph(), cfg);
  double min_honest = 1e18, max_sybil = -1;
  for (graph::NodeId v = 0; v < 6; ++v) min_honest = std::min(min_honest, trust[v]);
  for (graph::NodeId v = 6; v < 12; ++v) max_sybil = std::max(max_sybil, trust[v]);
  EXPECT_GT(min_honest, max_sybil);
}

TEST(SybilRankTest, IsolatedNodeScoresZero) {
  graph::GraphBuilder b(4);
  b.AddFriendship(0, 1);
  b.AddFriendship(1, 2);  // node 3 isolated
  SybilRankConfig cfg;
  cfg.trust_seeds = {0};
  const auto trust = RunSybilRank(b.BuildSocial(), cfg);
  EXPECT_DOUBLE_EQ(trust[3], 0.0);
}

TEST(SybilRankTest, ExplicitIterationCountHonored) {
  SybilRankConfig one;
  one.trust_seeds = {0};
  one.num_iterations = 1;
  const auto t1 = RunSybilRank(TwoCommunityGraph(), one);
  // After one iteration from seed 0, distant sybils hold no trust yet.
  EXPECT_DOUBLE_EQ(t1[11], 0.0);
  EXPECT_GT(t1[1], 0.0);
}

TEST(SybilRankTest, TrustMassConserved) {
  // Connected graph: power iteration only moves trust around; the degree
  // normalization happens after. Sum of (normalized trust * degree) must
  // equal total_trust.
  SybilRankConfig cfg;
  cfg.trust_seeds = {0};
  cfg.total_trust = 600.0;
  const auto g = TwoCommunityGraph();
  const auto trust = RunSybilRank(g, cfg);
  double mass = 0;
  for (graph::NodeId v = 0; v < g.NumNodes(); ++v) {
    mass += trust[v] * g.Degree(v);
  }
  EXPECT_NEAR(mass, 600.0, 1e-6);
}

// ---------- acceptance filter ----------

TEST(AcceptanceFilterTest, ScoresMatchPerSenderRates) {
  const auto scores = AcceptanceRateScores(SimpleSpamLog(), {});
  EXPECT_DOUBLE_EQ(scores[0], 1.0);
  EXPECT_DOUBLE_EQ(scores[4], 0.25);
}

TEST(AcceptanceFilterTest, NonSenderGetsNeutral) {
  sim::RequestLog log(3);
  log.Add(0, 1, sim::Response::kRejected);
  const auto scores = AcceptanceRateScores(log, {.neutral_score = 0.5});
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
  EXPECT_DOUBLE_EQ(scores[2], 0.5);
}

TEST(AcceptanceFilterTest, CollusionDefeatsFilter) {
  // The §II-B argument: intra-fake accepted requests dilute rejections.
  sim::RequestLog log(10);
  log.Add(0, 1, sim::Response::kRejected);
  log.Add(0, 2, sim::Response::kRejected);
  for (graph::NodeId c = 3; c < 9; ++c) log.Add(0, c, sim::Response::kAccepted);
  const auto scores = AcceptanceRateScores(log, {});
  EXPECT_GT(scores[0], 0.7);  // despite 2 legit rejections
}

}  // namespace
}  // namespace rejecto::baseline
